#include "report/diff.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "support/strings.hpp"

namespace feam::report {

namespace {

using support::Json;

Json evidence_json(const obs::Evidence& e) {
  Json out;
  out.set("stage", e.stage);
  out.set("kind", e.kind);
  out.set("site", e.site);
  out.set("subject", e.subject);
  out.set("detail", e.detail);
  out.set("stamp", e.stamp_hex());
  return out;
}

std::string evidence_line(const obs::Evidence& e) {
  std::string out = "[" + e.stage + "/" + e.kind + "] " + e.subject;
  if (!e.detail.empty()) out += ": " + e.detail;
  return out;
}

// Causal ordering for explain(): the verdicts themselves, then the
// resolver walks they rest on, then the environment scan, then the binary
// description. Within a rank, EvidenceSet order (lexicographic) holds.
int stage_rank(const obs::Evidence& e) {
  if (support::starts_with(e.stage, "tec")) return 0;
  if (e.stage == "resolver") return 1;
  if (e.stage == "edc") return 2;
  if (e.stage == "bdc") return 3;
  return 4;
}

std::string verdict_word(bool ready) { return ready ? "READY" : "NOT READY"; }

std::optional<obs::Evidence> evidence_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  obs::Evidence e;
  e.stage = j.get_string("stage");
  e.kind = j.get_string("kind");
  e.site = j.get_string("site");
  e.subject = j.get_string("subject");
  e.detail = j.get_string("detail");
  if (e.stage.empty() || e.kind.empty()) return std::nullopt;
  e.stamp = std::strtoull(j.get_string("stamp").c_str(), nullptr, 16);
  return e;
}

}  // namespace

std::vector<DriftLogEntry> parse_drift_log(std::string_view jsonl) {
  std::vector<DriftLogEntry> out;
  for (const auto& line : support::split(jsonl, '\n')) {
    if (support::trim(line).empty()) continue;
    const auto parsed = Json::parse(line);
    if (!parsed || !parsed->is_object()) continue;
    if (parsed->get_string("schema") != "feam.drift_log/1") continue;
    DriftLogEntry entry;
    entry.round = static_cast<int>(parsed->get_int("round"));
    entry.site_index = static_cast<int>(parsed->get_int("site_index"));
    entry.site = parsed->get_string("site");
    entry.kind = parsed->get_string("kind");
    entry.detail = parsed->get_string("detail");
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t DiffResult::unattributed_flips() const {
  std::size_t n = 0;
  for (const auto& flip : flips) {
    if (!flip.attributed()) ++n;
  }
  return n;
}

support::Json DiffResult::to_json() const {
  Json out;
  out.set("schema", std::string(kDiffSchema));
  out.set("pairs_compared", static_cast<std::int64_t>(pairs_compared));
  out.set("only_in_a", static_cast<std::int64_t>(only_in_a));
  out.set("only_in_b", static_cast<std::int64_t>(only_in_b));
  out.set("flips", static_cast<std::int64_t>(flips.size()));
  out.set("unattributed_flips",
          static_cast<std::int64_t>(unattributed_flips()));
  Json::Array flip_array;
  for (const auto& flip : flips) {
    Json f;
    f.set("binary", flip.binary);
    f.set("site", flip.target_site);
    f.set("workload_index", flip.workload_index);
    f.set("ready_a", flip.ready_a);
    f.set("ready_b", flip.ready_b);
    f.set("blocking_a", flip.blocking_a);
    f.set("blocking_b", flip.blocking_b);
    f.set("attributed", flip.attributed());
    Json::Array causes;
    for (const auto& cause : flip.causes) {
      Json c;
      c.set("round", cause.round);
      c.set("site", cause.site);
      c.set("kind", cause.kind);
      c.set("detail", cause.detail);
      causes.push_back(std::move(c));
    }
    f.set("causes", Json(std::move(causes)));
    Json::Array gained, lost;
    for (const auto& e : flip.evidence_gained) {
      gained.push_back(evidence_json(e));
    }
    for (const auto& e : flip.evidence_lost) lost.push_back(evidence_json(e));
    f.set("evidence_gained", Json(std::move(gained)));
    f.set("evidence_lost", Json(std::move(lost)));
    flip_array.push_back(std::move(f));
  }
  out.set("flip_details", Json(std::move(flip_array)));
  return out;
}

std::optional<DiffResult> DiffResult::from_json(const support::Json& j) {
  if (!j.is_object() || j.get_string("schema") != kDiffSchema) {
    return std::nullopt;
  }
  DiffResult r;
  r.pairs_compared = static_cast<std::size_t>(j.get_int("pairs_compared"));
  r.only_in_a = static_cast<std::size_t>(j.get_int("only_in_a"));
  r.only_in_b = static_cast<std::size_t>(j.get_int("only_in_b"));
  if (j["flip_details"].is_array()) {
    for (const auto& f : j["flip_details"].as_array()) {
      VerdictFlip flip;
      flip.binary = f.get_string("binary");
      flip.target_site = f.get_string("site");
      flip.workload_index = static_cast<int>(f.get_int("workload_index"));
      flip.ready_a = f.get_bool("ready_a");
      flip.ready_b = f.get_bool("ready_b");
      flip.blocking_a = f.get_string("blocking_a");
      flip.blocking_b = f.get_string("blocking_b");
      if (f["causes"].is_array()) {
        for (const auto& c : f["causes"].as_array()) {
          DriftLogEntry cause;
          cause.round = static_cast<int>(c.get_int("round"));
          cause.site = c.get_string("site");
          cause.kind = c.get_string("kind");
          cause.detail = c.get_string("detail");
          flip.causes.push_back(std::move(cause));
        }
      }
      const std::pair<const char*, std::vector<obs::Evidence>*> deltas[] = {
          {"evidence_gained", &flip.evidence_gained},
          {"evidence_lost", &flip.evidence_lost}};
      for (const auto& [field, target] : deltas) {
        if (!f[field].is_array()) continue;
        for (const auto& e : f[field].as_array()) {
          if (auto parsed = evidence_from_json(e)) {
            target->push_back(std::move(*parsed));
          }
        }
      }
      r.flips.push_back(std::move(flip));
    }
  }
  return r;
}

std::string render_churn_panel(const std::vector<DiffResult>& diffs) {
  std::size_t pairs = 0, flips = 0, unattributed = 0;
  std::size_t went_ready = 0, went_blocked = 0, blocker_changed = 0;
  std::map<std::string, std::size_t> cause_kinds;
  for (const auto& diff : diffs) {
    pairs += diff.pairs_compared;
    flips += diff.flips.size();
    unattributed += diff.unattributed_flips();
    for (const auto& flip : diff.flips) {
      if (!flip.ready_a && flip.ready_b) ++went_ready;
      else if (flip.ready_a && !flip.ready_b) ++went_blocked;
      else ++blocker_changed;
      std::set<std::string> kinds;
      for (const auto& cause : flip.causes) kinds.insert(cause.kind);
      for (const auto& kind : kinds) ++cause_kinds[kind];
    }
  }
  std::string out = "verdict churn (" + std::to_string(diffs.size()) +
                    " diff artifact" + (diffs.size() == 1 ? "" : "s") +
                    ", " + std::to_string(pairs) + " pairs):\n";
  out += "  flips: " + std::to_string(flips) + " (" +
         std::to_string(went_ready) + " went ready, " +
         std::to_string(went_blocked) + " went blocked, " +
         std::to_string(blocker_changed) + " changed blocker)\n";
  out += "  unattributed: " + std::to_string(unattributed) + "\n";
  if (!cause_kinds.empty()) {
    out += "  attributed drift-op kinds:";
    for (const auto& [kind, count] : cause_kinds) {
      out += " " + kind + " x" + std::to_string(count);
    }
    out += "\n";
  }
  return out;
}

std::string DiffResult::render_text() const {
  std::string out = "diff: " + std::to_string(pairs_compared) +
                    " pairs compared";
  if (only_in_a != 0 || only_in_b != 0) {
    out += " (" + std::to_string(only_in_a) + " only in A, " +
           std::to_string(only_in_b) + " only in B)";
  }
  out += "\nverdict flips: " + std::to_string(flips.size()) +
         " (unattributed: " + std::to_string(unattributed_flips()) + ")\n";
  for (const auto& flip : flips) {
    out += "  " + flip.binary + " @ " + flip.target_site + " [workload " +
           std::to_string(flip.workload_index) + "]: " +
           verdict_word(flip.ready_a);
    if (!flip.blocking_a.empty()) out += " (" + flip.blocking_a + ")";
    out += " -> " + verdict_word(flip.ready_b);
    if (!flip.blocking_b.empty()) out += " (" + flip.blocking_b + ")";
    out += "\n";
    for (const auto& cause : flip.causes) {
      out += "      cause: round " + std::to_string(cause.round) + " " +
             cause.kind + " " + cause.detail + "\n";
    }
    if (flip.causes.empty()) out += "      cause: UNATTRIBUTED\n";
    out += "      evidence delta: +" +
           std::to_string(flip.evidence_gained.size()) + " / -" +
           std::to_string(flip.evidence_lost.size()) + " items\n";
  }
  return out;
}

DiffResult diff_records(const std::vector<RunRecord>& a,
                        const std::vector<RunRecord>& b,
                        const std::vector<DriftLogEntry>& drift_log) {
  DiffResult result;

  using PairKey = std::pair<std::string, std::string>;  // binary, site
  std::map<PairKey, const RunRecord*> index_b;
  for (const auto& record : b) {
    index_b.emplace(PairKey{record.binary, record.target_site}, &record);
  }

  // Workload ordinals: first-appearance order of each binary, stream A
  // first (fleet records are workload-major, so this reproduces the
  // generator's workload index), stream B for binaries A never saw.
  std::map<std::string, int> workload_index;
  for (const auto* stream : {&a, &b}) {
    for (const auto& record : *stream) {
      workload_index.emplace(record.binary,
                             static_cast<int>(workload_index.size()));
    }
  }

  std::set<PairKey> seen_a;
  for (const auto& record : a) {
    const PairKey key{record.binary, record.target_site};
    if (!seen_a.insert(key).second) continue;  // first occurrence wins
    const auto it = index_b.find(key);
    if (it == index_b.end()) {
      ++result.only_in_a;
      continue;
    }
    ++result.pairs_compared;
    const RunRecord& other = *it->second;
    const std::string blocking_a = record.blocking_determinant();
    const std::string blocking_b = other.blocking_determinant();
    if (record.ready == other.ready && blocking_a == blocking_b) continue;

    VerdictFlip flip;
    flip.binary = record.binary;
    flip.target_site = record.target_site;
    flip.workload_index = workload_index[record.binary];
    flip.ready_a = record.ready;
    flip.ready_b = other.ready;
    flip.blocking_a = blocking_a;
    flip.blocking_b = blocking_b;

    const std::vector<obs::Evidence> items_a = record.provenance.items();
    const std::vector<obs::Evidence> items_b = other.provenance.items();
    std::set_difference(items_b.begin(), items_b.end(), items_a.begin(),
                        items_a.end(),
                        std::back_inserter(flip.evidence_gained));
    std::set_difference(items_a.begin(), items_a.end(), items_b.begin(),
                        items_b.end(),
                        std::back_inserter(flip.evidence_lost));

    for (const auto& op : drift_log) {
      if (op.site == record.target_site && op.round < flip.workload_index) {
        flip.causes.push_back(op);
      }
    }
    result.flips.push_back(std::move(flip));
  }
  result.only_in_b = b.size() >= result.pairs_compared
                         ? index_b.size() - result.pairs_compared
                         : 0;
  return result;
}

std::string render_explain(const RunRecord& record) {
  std::string out = record.binary + " @ " + record.target_site + ": " +
                    verdict_word(record.ready);
  const std::string blocking = record.blocking_determinant();
  if (!blocking.empty()) out += " — blocked by " + blocking;
  out += "\n\nverdict chain:\n";
  for (const auto& det : record.determinants) {
    out += "  [" + det.key + "] ";
    if (!det.evaluated) {
      out += "skipped (short-circuited)";
    } else {
      out += det.compatible ? "compatible" : "incompatible";
    }
    if (!det.detail.empty()) out += " — " + det.detail;
    out += "\n";
  }

  std::vector<obs::Evidence> items = record.provenance.items();
  if (items.empty()) {
    out += "\nno provenance recorded (record predates feam.provenance/1)\n";
    return out;
  }
  // Causal order: the blocking determinant's own verdicts first, then the
  // remaining evidence staged tec.* -> resolver -> edc -> bdc.
  std::stable_sort(items.begin(), items.end(),
                   [&](const obs::Evidence& x, const obs::Evidence& y) {
                     const bool xb = !blocking.empty() &&
                                     x.stage == "tec." + blocking;
                     const bool yb = !blocking.empty() &&
                                     y.stage == "tec." + blocking;
                     if (xb != yb) return xb;
                     return stage_rank(x) < stage_rank(y);
                   });
  out += "\nevidence (" + std::to_string(record.provenance.distinct()) +
         " items";
  if (record.provenance.dropped() != 0) {
    out += ", " + std::to_string(record.provenance.dropped()) + " dropped";
  }
  out += "):\n";
  for (const auto& e : items) {
    out += "  " + evidence_line(e) + "  <" + e.stamp_hex() + ">\n";
  }
  return out;
}

}  // namespace feam::report
