#include "report/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

namespace feam::report {

namespace {

// Evaluation window: sample indices [from, to) of the steady-state group.
struct Window {
  std::size_t from = 0;
  std::size_t to = 0;
};

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Evaluates one selector over a window; nullopt for unknown selectors.
std::optional<double> evaluate(const Timeseries& series,
                               std::string_view selector,
                               const Window& window) {
  if (selector.rfind("hist.", 0) == 0) {
    const std::string_view rest = selector.substr(5);
    const auto dot = rest.rfind('.');
    if (dot == std::string_view::npos) return std::nullopt;
    const std::string_view name = rest.substr(0, dot);
    const std::string_view stat = rest.substr(dot + 1);
    const obs::HistogramSnapshot merged =
        series.merged_histogram(name, window.from, window.to);
    if (stat == "count") return static_cast<double>(merged.count);
    if (stat == "mean") return merged.mean();
    if (stat == "p50") return static_cast<double>(merged.percentile(0.50));
    if (stat == "p90") return static_cast<double>(merged.percentile(0.90));
    if (stat == "p99") return static_cast<double>(merged.percentile(0.99));
    return std::nullopt;
  }
  if (selector.rfind("rate.", 0) == 0) {
    const std::string_view name = selector.substr(5);
    const double seconds = series.span_seconds(window.from, window.to);
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(
               series.counter_delta_sum(name, window.from, window.to)) /
           seconds;
  }
  if (selector.rfind("gauge.", 0) == 0) {
    // gauge.<series>.<mean|max|last> — evaluated over the carry-forward
    // level track (a gauge is only written when it changes), so a gauge
    // that went quiet still contributes its held value to every window.
    const std::string_view rest = selector.substr(6);
    const auto dot = rest.rfind('.');
    if (dot == std::string_view::npos) return std::nullopt;
    const std::string_view name = rest.substr(0, dot);
    const std::string_view stat = rest.substr(dot + 1);
    if (stat != "mean" && stat != "max" && stat != "last") return std::nullopt;
    const std::vector<obs::GaugeValue> track = series.gauge_track(name);
    const std::size_t to = std::min(window.to, track.size());
    if (window.from >= to) return 0.0;
    if (stat == "last") return static_cast<double>(track[to - 1].value);
    double sum = 0.0;
    std::uint64_t max_value = 0;
    for (std::size_t i = window.from; i < to; ++i) {
      sum += static_cast<double>(track[i].value);
      max_value = std::max(max_value, track[i].value);
    }
    if (stat == "max") return static_cast<double>(max_value);
    return sum / static_cast<double>(to - window.from);
  }
  if (selector.rfind("hitrate.", 0) == 0) {
    // Both naming styles count: flat legacy counters (`bdc.cache_hits`) and
    // the dimensional family (`cache.hits{cache=...,site=...}`, summed over
    // labels) — the base name must be PREFIX_hits / PREFIX.hits.
    const std::string prefix{selector.substr(8)};
    std::uint64_t hits = 0, misses = 0;
    const std::size_t to = std::min(window.to, series.samples.size());
    for (std::size_t i = window.from; i < to; ++i) {
      for (const auto& [name, delta] : series.samples[i].counter_deltas) {
        const std::string base = obs::parse_series(name).name;
        if (base == prefix + "_hits" || base == prefix + ".hits") {
          hits += delta;
        } else if (base == prefix + "_misses" || base == prefix + ".misses") {
          misses += delta;
        }
      }
    }
    const std::uint64_t total = hits + misses;
    return total == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(total);
  }
  return std::nullopt;
}

}  // namespace

std::size_t TrendGateResult::failures() const {
  std::size_t n = 0;
  for (const auto& check : checks) {
    if (!check.pass) ++n;
  }
  return n;
}

std::string TrendGateResult::render() const {
  std::string out = "trend gate: ";
  out += pass ? "PASS" : "FAIL";
  out += " (" + std::to_string(steady_samples) + " steady samples)\n";
  for (const auto& check : checks) {
    out += "  " + check.verdict + "\n";
  }
  return out;
}

support::Result<TrendGateResult> run_trend_gate(
    const Timeseries& series, const support::Json& baseline) {
  if (!baseline.is_object() ||
      baseline.get_string("schema") != kTrendBaselineSchema) {
    return support::Result<TrendGateResult>::failure(
        "trend baseline: expected schema \"" +
        std::string(kTrendBaselineSchema) + "\"");
  }
  const auto& metrics = baseline["metrics"];
  if (!metrics.is_object()) {
    return support::Result<TrendGateResult>::failure(
        "trend baseline: missing \"metrics\" object");
  }

  double skip_head = 0.25;
  std::size_t min_samples = 8;
  const auto& steady = baseline["steady_state"];
  if (steady.is_object()) {
    if (steady["skip_head_fraction"].is_number()) {
      skip_head = steady["skip_head_fraction"].as_number();
    }
    if (steady["min_samples"].is_number()) {
      min_samples = static_cast<std::size_t>(steady.get_int("min_samples"));
    }
    if (skip_head < 0.0 || skip_head >= 1.0) {
      return support::Result<TrendGateResult>::failure(
          "trend baseline: skip_head_fraction must be in [0, 1)");
    }
  }

  // Warmup is skipped, then the steady span splits into equal halves; the
  // final (flush) sample is excluded — its window is not interval-shaped.
  std::size_t end = series.samples.size();
  if (end > 0 && series.samples[end - 1].final_sample) --end;
  const std::size_t head =
      static_cast<std::size_t>(static_cast<double>(end) * skip_head);

  TrendGateResult result;
  result.steady_samples = end > head ? end - head : 0;
  const bool enough = result.steady_samples >= min_samples &&
                      result.steady_samples >= 2;
  const Window early{head, head + result.steady_samples / 2};
  const Window late{head + result.steady_samples / 2, end};

  for (const auto& [metric, spec] : metrics.as_object()) {
    if (!spec.is_object()) {
      return support::Result<TrendGateResult>::failure(
          "trend baseline: metric \"" + metric + "\" spec must be an object");
    }
    TrendCheck check;
    check.metric = metric;
    if (!enough) {
      check.skipped = true;
      check.verdict = "skip " + metric + " (only " +
                      std::to_string(result.steady_samples) +
                      " steady samples, need " + std::to_string(min_samples) +
                      ")";
      result.checks.push_back(std::move(check));
      continue;
    }
    const auto early_value = evaluate(series, metric, early);
    const auto late_value = evaluate(series, metric, late);
    if (!early_value || !late_value) {
      return support::Result<TrendGateResult>::failure(
          "trend baseline: unknown metric selector \"" + metric + "\"");
    }
    check.early = *early_value;
    check.late = *late_value;
    check.drift =
        check.early == 0.0 ? 0.0 : (check.late - check.early) / check.early;

    std::string reason;
    if (spec["max_drift"].is_number() &&
        check.drift > spec["max_drift"].as_number()) {
      reason = "drift " + format_value(check.drift) + " > max_drift " +
               format_value(spec["max_drift"].as_number());
    }
    if (reason.empty() && spec["max_drop"].is_number() &&
        -check.drift > spec["max_drop"].as_number()) {
      reason = "drop " + format_value(-check.drift) + " > max_drop " +
               format_value(spec["max_drop"].as_number());
    }
    if (reason.empty() && spec["min_late"].is_number() &&
        check.late < spec["min_late"].as_number()) {
      reason = "late " + format_value(check.late) + " < min_late " +
               format_value(spec["min_late"].as_number());
    }
    if (reason.empty() && spec["max_late"].is_number() &&
        check.late > spec["max_late"].as_number()) {
      reason = "late " + format_value(check.late) + " > max_late " +
               format_value(spec["max_late"].as_number());
    }
    check.pass = reason.empty();
    if (!check.pass) result.pass = false;
    check.verdict = (check.pass ? "ok   " : "FAIL ") + metric + " early=" +
                    format_value(check.early) + " late=" +
                    format_value(check.late) + " drift=" +
                    format_value(check.drift) +
                    (reason.empty() ? "" : " (" + reason + ")");
    result.checks.push_back(std::move(check));
  }
  return result;
}

std::map<std::string, double> trend_metrics(const TrendGateResult& result) {
  std::map<std::string, double> out;
  out["trend.pass"] = result.pass ? 1.0 : 0.0;
  out["trend.steady_samples"] = static_cast<double>(result.steady_samples);
  for (const auto& check : result.checks) {
    if (check.skipped) continue;
    out["trend." + check.metric + ".early"] = check.early;
    out["trend." + check.metric + ".late"] = check.late;
    out["trend." + check.metric + ".drift"] = check.drift;
  }
  return out;
}

}  // namespace feam::report
