// Self-contained single-file HTML dashboard for an aggregated matrix run:
// readiness matrix, merged latency bars, counter roll-up, and a
// span-waterfall for a selected run. Inline CSS/JS only — no network
// fetches — so the file can be archived as a CI artifact and opened
// anywhere.
#pragma once

#include <string>
#include <vector>

#include "report/aggregate.hpp"
#include "report/diff.hpp"
#include "report/timeseries.hpp"

namespace feam::report {

// `timeseries` (optional) adds over-run-time charts — per-cache hit rate
// and per-phase p99 against elapsed time — rendered as inline SVG from the
// stream's per-sample deltas. `diffs` (optional) adds the verdict-churn /
// drift-attribution panel over ingested feam.diff/1 artifacts.
std::string render_html_dashboard(
    const Aggregate& aggregate, const Timeseries* timeseries = nullptr,
    const std::vector<DiffResult>* diffs = nullptr);

}  // namespace feam::report
