// Self-contained single-file HTML dashboard for an aggregated matrix run:
// readiness matrix, merged latency bars, counter roll-up, and a
// span-waterfall for a selected run. Inline CSS/JS only — no network
// fetches — so the file can be archived as a CI artifact and opened
// anywhere.
#pragma once

#include <string>

#include "report/aggregate.hpp"

namespace feam::report {

std::string render_html_dashboard(const Aggregate& aggregate);

}  // namespace feam::report
