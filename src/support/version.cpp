#include "support/version.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace feam::support {

std::optional<Version> Version::parse(std::string_view text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text.front()))) {
    return std::nullopt;
  }
  Version v;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return std::nullopt;
    std::uint64_t value = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
      if (value > 0xffffffffULL) return std::nullopt;
      ++i;
    }
    v.components_.push_back(static_cast<std::uint32_t>(value));
    if (i == text.size()) break;
    if (text[i] == '.') {
      ++i;
      if (i == text.size()) return std::nullopt;  // trailing dot
      continue;
    }
    // Anything else begins the pre-release tag ("rc1", "a2", "b").
    if (!std::isalpha(static_cast<unsigned char>(text[i]))) return std::nullopt;
    v.tag_.assign(text.substr(i));
    break;
  }
  return v;
}

Version Version::of(std::string_view text) {
  auto v = parse(text);
  if (!v) throw std::invalid_argument("bad version literal: " + std::string(text));
  return *v;
}

std::string Version::str() const {
  std::string out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(components_[i]);
  }
  out += tag_;
  return out;
}

std::strong_ordering Version::operator<=>(const Version& other) const {
  const std::size_t n = std::max(components_.size(), other.components_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = i < components_.size() ? components_[i] : 0;
    const std::uint32_t b = i < other.components_.size() ? other.components_[i] : 0;
    if (a != b) return a <=> b;
  }
  // Equal numerics: a tagged version (pre-release) orders before untagged.
  const bool a_tagged = !tag_.empty();
  const bool b_tagged = !other.tag_.empty();
  if (a_tagged != b_tagged) return a_tagged ? std::strong_ordering::less
                                            : std::strong_ordering::greater;
  return tag_ <=> other.tag_;
}

}  // namespace feam::support
