#include "support/thread_pool.hpp"

#include <utility>

namespace feam::support {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int threads, TaskObserver observer)
    : observer_(std::move(observer)) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    std::chrono::steady_clock::time_point started;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      started = std::chrono::steady_clock::now();
    }
    try {
      task.run();
      if (observer_) {
        const auto finished = std::chrono::steady_clock::now();
        observer_(elapsed_ns(task.submitted, started),
                  elapsed_ns(started, finished));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace feam::support
