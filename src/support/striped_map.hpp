// A read-mostly striped hash map with a lock-free hit path.
//
// The parallel migration engine's memo caches (BDC, EDC, resolver) are
// written once per distinct key and then read thousands of times from
// every worker. A single mutex per cache makes those reads a point of
// serialization; this map removes it:
//
//   * The key space is striped over N shards, each an array of buckets
//     holding an atomic head pointer to an immutable singly linked node
//     chain. A reader hashes, loads one head with acquire ordering, and
//     walks plain pointers — no lock, no reference counting, no hazard
//     pointers.
//   * Writers take a per-shard mutex (writers in different shards do not
//     contend), allocate a node off the shard's arena of retained nodes,
//     link it to the current chain, and publish it with a release store.
//   * Nodes are never unlinked, moved, or freed before the map is
//     destroyed, so a `const V*` handed to a reader stays valid for the
//     map's lifetime — the property the resolver's parsed-ELF views and
//     the BDC's returned descriptions lean on.
//
// The price of lock-free reads is immutability: a published node's key
// and value must never be modified, with one carve-out — `V` members
// declared as std::atomic (make them `mutable` for use through `const
// V*`) may be updated in place; that is how the resolver's search memo
// revalidates entries without republishing them. "Updating" a key means
// inserting a fresh node at the head of its chain, *shadowing* the older
// node: readers see the newest first, the shadowed node stays allocated
// (and keeps old pointers valid). Shadowing is rare in practice — the
// caches overwrite only when a file is rewritten in place — so retained
// garbage stays negligible; footprint gauges report retained bytes
// honestly by accounting every insert and never subtracting.
//
// Keys are expected to be cheap 64-bit fingerprints. Exactness against
// fingerprint collisions lives in the caller: use find_if/get_or_insert
// with a predicate that verifies the value's stored identity (the full
// path, the full bytes), so a collision degrades to a chain walk or a
// duplicate entry, never a wrong answer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace feam::support {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedMap {
 public:
  // Shard and bucket counts are rounded up to powers of two so the hash
  // splits into independent shard/bucket index bits.
  explicit StripedMap(std::size_t shards = 16,
                      std::size_t buckets_per_shard = 64, Hash hash = Hash())
      : hash_(std::move(hash)),
        shard_mask_(round_up_pow2(shards) - 1),
        bucket_mask_(round_up_pow2(buckets_per_shard) - 1) {
    for (std::size_t m = shard_mask_; m != 0; m >>= 1) ++shard_bits_;
    shards_ = std::make_unique<Shard[]>(shard_mask_ + 1);
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      shards_[i].buckets =
          std::make_unique<std::atomic<Node*>[]>(bucket_mask_ + 1);
    }
  }

  ~StripedMap() {
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      for (std::size_t b = 0; b <= bucket_mask_; ++b) {
        Node* n = shards_[s].buckets[b].load(std::memory_order_relaxed);
        while (n != nullptr) {
          Node* next = n->next;
          delete n;
          n = next;
        }
      }
    }
  }

  StripedMap(const StripedMap&) = delete;
  StripedMap& operator=(const StripedMap&) = delete;

  // Lock-free: newest value published for `key`, or nullptr. The pointer
  // stays valid (and the value unchanged, atomics aside) for the map's
  // lifetime.
  const V* find(const K& key) const {
    const Node* n = chain_head(key);
    for (; n != nullptr; n = n->next) {
      if (n->key == key) return &n->value;
    }
    return nullptr;
  }

  // Lock-free: newest value for `key` that also satisfies `pred` — the
  // collision-exact lookup (pred verifies identity stored in the value).
  template <typename Pred>
  const V* find_if(const K& key, Pred&& pred) const {
    const Node* n = chain_head(key);
    for (; n != nullptr; n = n->next) {
      if (n->key == key && pred(n->value)) return &n->value;
    }
    return nullptr;
  }

  // Value for `key` satisfying `pred`, inserting make()'s result if none
  // exists. `make` runs under the shard writer lock (keep it cheap; do
  // expensive work before calling and pass a capture). Returns the value
  // and whether this call inserted it. Lost races resolve to the winner's
  // value: the lock is taken before re-checking.
  template <typename Pred, typename Make>
  std::pair<const V*, bool> get_or_insert_if(const K& key, Pred&& pred,
                                             Make&& make) {
    if (const V* hit = find_if(key, pred)) return {hit, false};
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const V* hit = find_if(key, pred)) return {hit, false};
    return {publish(shard, key, make()), true};
  }

  template <typename Make>
  std::pair<const V*, bool> get_or_insert(const K& key, Make&& make) {
    return get_or_insert_if(
        key, [](const V&) { return true; }, std::forward<Make>(make));
  }

  // Unconditional prepend: publishes `value` as the newest node for
  // `key`, shadowing (not freeing) any earlier node. Use for in-place
  // "overwrites" (a file rewritten under a cached stamp).
  const V* insert(const K& key, V value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return publish(shard, key, std::move(value));
  }

  // Total published nodes, shadowed included. Approximate under
  // concurrent writers (relaxed counter).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Visits every node (shadowed included, newest of a chain first) under
  // each shard's writer lock in turn. For stats and tests — not a
  // consistent snapshot across shards.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (std::size_t b = 0; b <= bucket_mask_; ++b) {
        for (const Node* n = shards_[s].buckets[b].load(
                 std::memory_order_acquire);
             n != nullptr; n = n->next) {
          fn(n->key, n->value);
        }
      }
    }
  }

 private:
  struct Node {
    K key;
    V value;
    Node* next = nullptr;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unique_ptr<std::atomic<Node*>[]> buckets;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // Shard index from the low hash bits, bucket index from the next bits
  // up — independent as long as shards*buckets stays under 2^64.
  std::size_t shard_index(std::size_t h) const { return h & shard_mask_; }
  std::size_t bucket_index(std::size_t h) const {
    return (h >> shard_bits_) & bucket_mask_;
  }

  Shard& shard_for(const K& key) {
    return shards_[shard_index(hash_(key))];
  }

  const Node* chain_head(const K& key) const {
    const std::size_t h = hash_(key);
    return shards_[shard_index(h)]
        .buckets[bucket_index(h)]
        .load(std::memory_order_acquire);
  }

  // Caller holds the shard lock. The release store is the publication
  // point: everything written to the node before it happens-before any
  // reader's acquire load of the head.
  const V* publish(Shard& shard, const K& key, V value) {
    const std::size_t h = hash_(key);
    std::atomic<Node*>& head = shard.buckets[bucket_index(h)];
    Node* node = new Node{key, std::move(value),
                          head.load(std::memory_order_relaxed)};
    head.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return &node->value;
  }

  Hash hash_;
  std::size_t shard_mask_;
  std::size_t bucket_mask_;
  std::size_t shard_bits_ = 0;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace feam::support
