// Minimal expected-like result type: a value or an error message.
//
// The parsing and simulation layers never throw for data-dependent
// failures (malformed ELF images, unresolvable libraries); they return
// Result so callers — FEAM's components — can report *why* something
// failed, which is itself part of the paper's user-facing output.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace feam::support {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}

  static Result failure(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace feam::support
