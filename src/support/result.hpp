// Minimal expected-like result type: a value or a typed error.
//
// The parsing and simulation layers never throw for data-dependent
// failures (malformed ELF images, unresolvable libraries); they return
// Result so callers — FEAM's components — can report *why* something
// failed, which is itself part of the paper's user-facing output.
// Failures carry a support::Error: a human-readable message plus an
// ErrorCode so run records can attribute the failure to a category
// (parse/io/dep) without string matching.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "support/error.hpp"

namespace feam::support {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}

  static Result failure(std::string message) {
    Result r;
    r.error_.message = std::move(message);
    return r;
  }
  static Result failure(ErrorCode code, std::string message) {
    Result r;
    r.error_.code = code;
    r.error_.message = std::move(message);
    return r;
  }
  static Result failure(Error error) {
    Result r;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_.message;
  }
  ErrorCode code() const {
    assert(!ok());
    return error_.code;
  }
  const Error& full_error() const {
    assert(!ok());
    return error_;
  }

 private:
  Result() = default;
  std::optional<T> value_;
  Error error_;
};

}  // namespace feam::support
