// Structured error taxonomy carried by Result<T>.
//
// Every data-dependent failure in the ELF reader, the Vfs, and the
// resolver maps to one ErrorCode so callers — and ultimately the report
// matrix — can attribute a failed migration to a category ("parse",
// "io", "dep") instead of a free-form string. The message text stays the
// user-facing half; the code is the machine-readable half.
#pragma once

#include <string>
#include <string_view>

namespace feam::support {

enum class ErrorCode : std::uint8_t {
  kUnknown = 0,        // legacy string-only failures
  // ELF parse taxonomy ("parse" category).
  kElfNotElf,          // bad magic / not an ELF image at all
  kElfTruncated,       // file ends inside a structure it declares
  kElfBadHeader,       // header fields are internally inconsistent
  kElfUnsupported,     // valid ELF but a class/encoding/machine we don't model
  kElfBadOffset,       // a table/virtual address points outside the image
  kElfBadVersionRef,   // verneed/verdef entry references a bad string/index
  kElfLimitExceeded,   // declared counts exceed the parser's sanity caps
  kSpecParse,          // malformed configuration document (site/fleet spec)
  // I/O taxonomy ("io" category) — mostly from Vfs fault injection.
  kIoFault,            // injected or simulated EIO / short read / torn write
  kFileNotFound,       // path absent (possibly injected ENOENT)
  // Dependency-graph taxonomy ("dep" category) from the resolver.
  kDepCycle,           // cyclic DT_NEEDED chain
  kDepDepthExceeded,   // DT_NEEDED chain deeper than the resolver allows
};

struct Error {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

// Stable machine-readable slug ("elf_truncated", "dep_cycle", ...); the
// golden corpus filenames are prefixed with these.
std::string_view error_code_slug(ErrorCode code);

// Coarse attribution bucket for run records: "parse", "io", "dep", or ""
// for kUnknown.
std::string_view failure_category(ErrorCode code);

}  // namespace feam::support
