// A fixed-size work-queue thread pool for the parallel migration engine.
//
// Tasks are plain std::function<void()> closures; submit() enqueues, the
// workers drain in FIFO order, and wait() blocks until the queue is empty
// AND every worker is idle — the barrier the evaluation matrix uses
// between fanning out migrations and reading the result slots. The first
// exception a task throws is captured and rethrown from wait() (later
// ones are dropped), so harness bugs surface instead of vanishing on a
// worker thread.
//
// The pool is intentionally minimal: no futures, no work stealing, no
// priorities. Determinism in the migration engine comes from pre-assigned
// result slots and the site-lease discipline, not from task ordering.
//
// Contention visibility: an optional TaskObserver receives, per finished
// task, its submit→start queue wait and its run time (both in ns, timed on
// std::chrono::steady_clock). support cannot depend on the obs layer — obs
// links support — so the observer is injected by callers; the obs layer
// provides a ready-made recorder that feeds its histogram registry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace feam::support {

class ThreadPool {
 public:
  // Called after each task finishes (from the worker thread, outside the
  // pool lock) with the task's queue wait and run time in nanoseconds.
  // Must be thread-safe; exceptions are treated like task exceptions.
  using TaskObserver = std::function<void(std::uint64_t queue_wait_ns,
                                          std::uint64_t run_ns)>;

  // Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads, TaskObserver observer = nullptr);

  // Drains outstanding work (as wait() does, but swallowing any pending
  // task exception), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks (the queue is unbounded).
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished. Rethrows the first
  // exception any task threw since the last wait().
  void wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  struct QueuedTask {
    std::function<void()> run;
    std::chrono::steady_clock::time_point submitted;
  };

  TaskObserver observer_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<QueuedTask> queue_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace feam::support
