// A fixed-size work-queue thread pool for the parallel migration engine.
//
// Tasks are plain std::function<void()> closures; submit() enqueues, the
// workers drain in FIFO order, and wait() blocks until the queue is empty
// AND every worker is idle — the barrier the evaluation matrix uses
// between fanning out migrations and reading the result slots. The first
// exception a task throws is captured and rethrown from wait() (later
// ones are dropped), so harness bugs surface instead of vanishing on a
// worker thread.
//
// The pool is intentionally minimal: no futures, no work stealing, no
// priorities. Determinism in the migration engine comes from pre-assigned
// result slots and the site-lease discipline, not from task ordering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace feam::support {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  // Drains outstanding work (as wait() does, but swallowing any pending
  // task exception), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks (the queue is unbounded).
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished. Rethrows the first
  // exception any task threw since the last wait().
  void wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace feam::support
