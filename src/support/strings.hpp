// Small string helpers shared across the FEAM codebase. All functions are
// allocation-conscious: views in, owned strings out only where needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace feam::support {

// Splits on a single character; empty fields are kept ("a//b" -> {a,"",b}).
std::vector<std::string> split(std::string_view text, char sep);

// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

std::string to_lower(std::string_view text);

// Renders a byte count the way `du -h` would ("45M", "512K", "97B").
std::string human_size(std::size_t bytes);

}  // namespace feam::support
