// Fixed-width ASCII table rendering used by the benchmark harness to print
// the paper's tables (Table I-IV) in a recognizable layout.
#pragma once

#include <string>
#include <vector>

namespace feam::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // A horizontal rule between row groups.
  void add_rule();

  std::string render() const;

 private:
  std::vector<std::string> header_;
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

// Formats a ratio as a whole-number percentage string ("94%").
std::string percent(double numerator, double denominator);

}  // namespace feam::support
