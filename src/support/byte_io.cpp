#include "support/byte_io.hpp"

#include <cassert>

namespace feam::support {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  if (endian_ == Endian::kLittle) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  } else {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
}

void ByteWriter::u32(std::uint32_t v) {
  if (endian_ == Endian::kLittle) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  } else {
    for (int i = 3; i >= 0; --i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  if (endian_ == Endian::kLittle) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  } else {
    for (int i = 7; i >= 0; --i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::bytes(const Bytes& data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(std::string_view data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::cstr(std::string_view text) {
  bytes(text);
  out_.push_back(0);
}

void ByteWriter::zeros(std::size_t count) {
  out_.insert(out_.end(), count, 0);
}

void ByteWriter::pad_to(std::size_t offset) {
  assert(offset >= out_.size());
  out_.resize(offset, 0);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  assert(offset + 4 <= out_.size());
  for (int i = 0; i < 4; ++i) {
    const int shift = endian_ == Endian::kLittle ? 8 * i : 8 * (3 - i);
    out_[offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> shift);
  }
}

void ByteWriter::patch_u64(std::size_t offset, std::uint64_t v) {
  assert(offset + 8 <= out_.size());
  for (int i = 0; i < 8; ++i) {
    const int shift = endian_ == Endian::kLittle ? 8 * i : 8 * (7 - i);
    out_[offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> shift);
  }
}

namespace {

// Overflow-safe "does [offset, offset+n) fit?": `offset + n > size` wraps
// for offsets near SIZE_MAX (reachable via crafted vaddr-to-offset maps).
bool fits(std::size_t offset, std::size_t n, std::size_t size) {
  return size >= n && offset <= size - n;
}

}  // namespace

std::optional<std::uint8_t> ByteReader::u8(std::size_t offset) const {
  if (!fits(offset, 1, data_->size())) return std::nullopt;
  return (*data_)[offset];
}

std::optional<std::uint16_t> ByteReader::u16(std::size_t offset) const {
  if (!fits(offset, 2, data_->size())) return std::nullopt;
  const auto& d = *data_;
  if (endian_ == Endian::kLittle) {
    return static_cast<std::uint16_t>(d[offset] | (d[offset + 1] << 8));
  }
  return static_cast<std::uint16_t>((d[offset] << 8) | d[offset + 1]);
}

std::optional<std::uint32_t> ByteReader::u32(std::size_t offset) const {
  if (!fits(offset, 4, data_->size())) return std::nullopt;
  const auto& d = *data_;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const int shift = endian_ == Endian::kLittle ? 8 * i : 8 * (3 - i);
    v |= static_cast<std::uint32_t>(d[offset + static_cast<std::size_t>(i)]) << shift;
  }
  return v;
}

std::optional<std::uint64_t> ByteReader::u64(std::size_t offset) const {
  if (!fits(offset, 8, data_->size())) return std::nullopt;
  const auto& d = *data_;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int shift = endian_ == Endian::kLittle ? 8 * i : 8 * (7 - i);
    v |= static_cast<std::uint64_t>(d[offset + static_cast<std::size_t>(i)]) << shift;
  }
  return v;
}

std::optional<std::string> ByteReader::cstr(std::size_t offset) const {
  const auto view = cstr_view(offset);
  if (!view) return std::nullopt;
  return std::string(*view);
}

std::optional<std::string_view> ByteReader::cstr_view(
    std::size_t offset) const {
  if (offset >= data_->size()) return std::nullopt;
  for (std::size_t i = offset; i < data_->size(); ++i) {
    if ((*data_)[i] == 0) {
      return std::string_view(
          reinterpret_cast<const char*>(data_->data()) + offset, i - offset);
    }
  }
  return std::nullopt;  // ran off the end without a terminator
}

}  // namespace feam::support
