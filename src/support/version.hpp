// Dotted version numbers (e.g. glibc "2.3.4", Open MPI "1.4.3", MVAPICH2
// "1.7rc1") with the comparison semantics FEAM's prediction model needs:
// numeric component-wise ordering, where a missing component compares as 0
// and a trailing alphanumeric tag (rc1, a2, b) orders *before* the untagged
// release of the same numeric value (1.7rc1 < 1.7, matching common release
// conventions for the MPI stacks in the paper's Table II).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace feam::support {

class Version {
 public:
  Version() = default;

  // Parses "2.3.4", "1.7rc1", "1.7a2", "12". Returns nullopt for strings
  // that do not start with a digit or contain illegal separators.
  static std::optional<Version> parse(std::string_view text);

  // parse() that aborts on failure; for literals in tables and tests.
  static Version of(std::string_view text);

  const std::vector<std::uint32_t>& components() const { return components_; }
  const std::string& pre_release_tag() const { return tag_; }

  // Major component (0 when the version is empty).
  std::uint32_t major() const { return components_.empty() ? 0 : components_[0]; }
  std::uint32_t minor() const { return components_.size() < 2 ? 0 : components_[1]; }

  std::string str() const;

  std::strong_ordering operator<=>(const Version& other) const;
  bool operator==(const Version& other) const {
    return (*this <=> other) == std::strong_ordering::equal;
  }

 private:
  std::vector<std::uint32_t> components_;
  std::string tag_;  // pre-release tag attached after the last numeric run
};

}  // namespace feam::support
