#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace feam::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back({false, std::move(row)});
}

void TextTable::add_rule() { rows_.push_back({true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  }();

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = rule + render_row(header_) + rule;
  for (const Row& row : rows_) {
    out += row.rule ? rule : render_row(row.cells);
  }
  out += rule;
  return out;
}

std::string percent(double numerator, double denominator) {
  if (denominator == 0.0) return "n/a";
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * numerator / denominator);
  return buf;
}

}  // namespace feam::support
