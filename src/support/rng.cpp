#include "support/rng.hpp"

namespace feam::support {

std::uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias; bound is always tiny here so
  // the loop almost never iterates.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return next_double() < probability;
}

Rng Rng::fork(std::string_view label) const {
  return Rng(state_ ^ (fnv1a(label) | 1ULL));
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_mix(std::uint64_t hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace feam::support
