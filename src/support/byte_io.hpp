// Little/big-endian byte buffer primitives used by the ELF writer and
// parser. ELF files for the ISAs we model (x86, x86-64, ppc64) appear in
// both endiannesses, so both are supported and round-trip tested.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace feam::support {

enum class Endian : std::uint8_t { kLittle, kBig };

using Bytes = std::vector<std::uint8_t>;

// Appends integers/strings to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Endian endian) : endian_(endian) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(const Bytes& data);
  void bytes(std::string_view data);
  // NUL-terminated string.
  void cstr(std::string_view text);
  void zeros(std::size_t count);
  void pad_to(std::size_t offset);  // zero-fill up to an absolute offset

  std::size_t size() const { return out_.size(); }
  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

  // Overwrites an already-written u32/u64 at an absolute offset (for
  // back-patching header fields once layout is known).
  void patch_u32(std::size_t offset, std::uint32_t v);
  void patch_u64(std::size_t offset, std::uint64_t v);

 private:
  Endian endian_;
  Bytes out_;
};

// Bounds-checked reads from a byte span; every accessor returns nullopt on
// overrun so the ELF parser can reject truncated files without UB.
class ByteReader {
 public:
  ByteReader(const Bytes& data, Endian endian)
      : data_(&data), endian_(endian) {}

  std::optional<std::uint8_t> u8(std::size_t offset) const;
  std::optional<std::uint16_t> u16(std::size_t offset) const;
  std::optional<std::uint32_t> u32(std::size_t offset) const;
  std::optional<std::uint64_t> u64(std::size_t offset) const;
  // NUL-terminated string starting at offset; nullopt if unterminated.
  std::optional<std::string> cstr(std::size_t offset) const;
  // Zero-copy variant: a view into the underlying buffer, valid exactly
  // as long as the Bytes the reader wraps stays alive and unmodified.
  std::optional<std::string_view> cstr_view(std::size_t offset) const;

  std::size_t size() const { return data_->size(); }
  void set_endian(Endian endian) { endian_ = endian; }

 private:
  const Bytes* data_;
  Endian endian_;
};

}  // namespace feam::support
