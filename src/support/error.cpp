#include "support/error.hpp"

namespace feam::support {

std::string_view error_code_slug(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kElfNotElf: return "elf_not_elf";
    case ErrorCode::kElfTruncated: return "elf_truncated";
    case ErrorCode::kElfBadHeader: return "elf_bad_header";
    case ErrorCode::kElfUnsupported: return "elf_unsupported";
    case ErrorCode::kElfBadOffset: return "elf_bad_offset";
    case ErrorCode::kElfBadVersionRef: return "elf_bad_version_ref";
    case ErrorCode::kElfLimitExceeded: return "elf_limit_exceeded";
    case ErrorCode::kSpecParse: return "spec_parse";
    case ErrorCode::kIoFault: return "io_fault";
    case ErrorCode::kFileNotFound: return "file_not_found";
    case ErrorCode::kDepCycle: return "dep_cycle";
    case ErrorCode::kDepDepthExceeded: return "dep_depth_exceeded";
  }
  return "unknown";
}

std::string_view failure_category(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "";
    case ErrorCode::kElfNotElf:
    case ErrorCode::kElfTruncated:
    case ErrorCode::kElfBadHeader:
    case ErrorCode::kElfUnsupported:
    case ErrorCode::kElfBadOffset:
    case ErrorCode::kElfBadVersionRef:
    case ErrorCode::kElfLimitExceeded:
    case ErrorCode::kSpecParse:
      return "parse";
    case ErrorCode::kIoFault:
    case ErrorCode::kFileNotFound:
      return "io";
    case ErrorCode::kDepCycle:
    case ErrorCode::kDepDepthExceeded:
      return "dep";
  }
  return "";
}

}  // namespace feam::support
