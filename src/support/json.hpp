// Minimal JSON value, parser, and writer.
//
// FEAM's source phase bundles binary/library descriptions that must be
// copied between sites; the paper's implementation serialized them as flat
// files. We use JSON manifests so bundles are self-describing and the
// round-trip is testable. Supports the full JSON grammar: non-BMP code
// points write as \uXXXX surrogate pairs and parse back to UTF-8, so
// 4-byte sequences survive consumers whose \u decoders are BMP-only.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace feam::support {

class Json {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps key order deterministic for byte-stable bundle manifests.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : Json(static_cast<double>(n)) {}
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}
  Json(std::size_t n) : Json(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }
  Array& as_array() { return array_; }
  Object& as_object() { return object_; }

  // Object field access; returns a shared null for absent keys.
  const Json& operator[](std::string_view key) const;
  void set(std::string key, Json value);
  bool has(std::string_view key) const;

  // Convenience typed getters with defaults.
  std::string get_string(std::string_view key, std::string_view fallback = "") const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;

  // Serialization. indent == 0 -> compact one-line form.
  std::string dump(int indent = 0) const;

  // Parsing; nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace feam::support
