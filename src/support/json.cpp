#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace feam::support {

namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

// Length of the valid UTF-8 sequence starting at s[i], or 0 when the lead
// byte, a continuation byte, or the codepoint range (overlongs, surrogates,
// > U+10FFFF) is invalid. Strings reaching the writer are not guaranteed to
// be UTF-8 — synthetic ELF .comment sections and fault-injected shell
// output carry arbitrary bytes — and emitting those raw would make the
// JSONL/trace output unparseable.
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t len;
  unsigned char lo = 0x80, hi = 0xbf;  // valid range for the second byte
  if (lead < 0x80) return 1;
  if (lead >= 0xc2 && lead <= 0xdf) {
    len = 2;
  } else if (lead >= 0xe0 && lead <= 0xef) {
    len = 3;
    if (lead == 0xe0) lo = 0xa0;        // reject overlong
    if (lead == 0xed) hi = 0x9f;        // reject surrogates
  } else if (lead >= 0xf0 && lead <= 0xf4) {
    len = 4;
    if (lead == 0xf0) lo = 0x90;        // reject overlong
    if (lead == 0xf4) hi = 0x8f;        // reject > U+10FFFF
  } else {
    return 0;  // stray continuation byte or 0xc0/0xc1/0xf5..0xff
  }
  if (i + len > s.size()) return 0;
  if (byte(i + 1) < lo || byte(i + 1) > hi) return 0;
  for (std::size_t k = 2; k < len; ++k) {
    if ((byte(i + k) & 0xc0) != 0x80) return 0;
  }
  return len;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      default: break;
    }
    const unsigned char byte = static_cast<unsigned char>(c);
    if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", byte);
      out += buf;
      ++i;
    } else if (byte < 0x80) {
      out += c;
      ++i;
    } else if (const std::size_t len = utf8_sequence_length(s, i); len > 0) {
      if (len == 4) {
        // Non-BMP codepoint: escape as a UTF-16 surrogate pair. Passing
        // the 4-byte sequence raw is valid JSON, but consumers with
        // BMP-only \u decoders (including older versions of our own
        // parser) mangle it on a re-escape round trip.
        const auto cont = [&](std::size_t k) {
          return static_cast<unsigned>(s[i + k]) & 0x3fu;
        };
        const unsigned code =
            ((static_cast<unsigned>(byte) & 0x07u) << 18) |
            (cont(1) << 12) | (cont(2) << 6) | cont(3);
        const unsigned v = code - 0x10000;
        char buf[16];
        std::snprintf(buf, sizeof buf, "\\u%04x\\u%04x",
                      0xd800 + (v >> 10), 0xdc00 + (v & 0x3ff));
        out += buf;
      } else {
        out += s.substr(i, len);
      }
      i += len;
    } else {
      // Invalid byte: escape as its Latin-1 codepoint so the document
      // stays valid JSON and the byte value survives in the escape.
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", byte);
      out += buf;
      ++i;
    }
  }
  out += '"';
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return number();
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            const auto hex4 = [&]() -> std::optional<unsigned> {
              if (pos_ + 4 > text_.size()) return std::nullopt;
              unsigned code = 0;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_++];
                code <<= 4;
                if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                else return std::nullopt;
              }
              return code;
            };
            const auto high = hex4();
            if (!high) return std::nullopt;
            unsigned code = *high;
            if (code >= 0xd800 && code <= 0xdbff) {
              // High surrogate: must pair with an immediately following
              // \uDC00..\uDFFF escape; together they name one non-BMP
              // codepoint.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return std::nullopt;
              }
              pos_ += 2;
              const auto low = hex4();
              if (!low || *low < 0xdc00 || *low > 0xdfff) return std::nullopt;
              code = 0x10000 + ((code - 0xd800) << 10) + (*low - 0xdc00);
            } else if (code >= 0xdc00 && code <= 0xdfff) {
              return std::nullopt;  // lone low surrogate
            }
            // Encode the codepoint as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xf0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    double v = 0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) return std::nullopt;
    return Json(v);
  }

  std::optional<Json> array() {
    if (!consume('[')) return std::nullopt;
    Json::Array items;
    skip_ws();
    if (consume(']')) return Json(std::move(items));
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      if (consume(']')) return Json(std::move(items));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> object() {
    if (!consume('{')) return std::nullopt;
    Json::Object fields;
    skip_ws();
    if (consume('}')) return Json(std::move(fields));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      fields.emplace(std::move(*key), std::move(*v));
      if (consume('}')) return Json(std::move(fields));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    const auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return null_json();
}

void Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  object_.insert_or_assign(std::move(key), std::move(value));
}

bool Json::has(std::string_view key) const {
  return type_ == Type::kObject && object_.find(key) != object_.end();
}

std::string Json::get_string(std::string_view key, std::string_view fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.as_string() : std::string(fallback);
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.as_int() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.as_bool() : fallback;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        out += std::to_string(static_cast<std::int64_t>(number_));
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", number_);
        out += buf;
      }
      break;
    }
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) { out += "[]"; break; }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (indent > 0) out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) { out += "{}"; break; }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        if (indent > 0) out += pad;
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace feam::support
