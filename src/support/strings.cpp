#include "support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace feam::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string human_size(std::size_t bytes) {
  static constexpr const char* kUnits[] = {"B", "K", "M", "G", "T"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%zu%s", bytes, kUnits[unit]);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.0f%s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f%s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace feam::support
