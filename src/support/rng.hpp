// Deterministic random number generation for the simulation layers.
//
// All stochastic behaviour in the reproduction (system errors, daemon spawn
// failures, timeouts) flows through SplitMix64 streams derived from a single
// experiment seed, so every table in EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <string_view>

namespace feam::support {

// SplitMix64: tiny, well-distributed, splittable. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [0.0, 1.0).
  double next_double();

  // True with the given probability.
  bool chance(double probability);

  // Derives an independent stream for a named purpose; equal (seed, label)
  // pairs always produce the same stream regardless of draw order elsewhere.
  Rng fork(std::string_view label) const;

 private:
  std::uint64_t state_;
};

// Stable 64-bit FNV-1a hash of a string (used for stream derivation and for
// synthesizing deterministic per-binary content).
std::uint64_t fnv1a(std::string_view text);

// Continue an FNV-1a stream: fold a 64-bit value (byte-wise, little-endian
// order) or a string's bytes into an existing hash. Composable cache keys —
// fnv1a_mix(fnv1a(path), version) — without intermediate strings.
std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value);
std::uint64_t fnv1a_mix(std::uint64_t hash, std::string_view text);

}  // namespace feam::support
