// The fleet specification: every knob of the procedural site/workload
// generator, parsed from a small JSON document (schema feam.fleet_spec/1).
//
// A fleet is reproducible from (spec, seed) alone — the spec carries no
// sampled state, only distribution parameters. The parser is strict
// (unknown keys, wrong types, and out-of-range values are rejected) and
// every rejection carries ErrorCode::kSpecParse, so arbitrary input can
// only ever produce a parse-category failure — the invariant the fuzz
// harness enforces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/result.hpp"

namespace feam::fleet {

inline constexpr std::string_view kFleetSpecSchema = "feam.fleet_spec/1";

struct FleetSpec {
  // Prefix of generated site names ("<name>-001", ...).
  std::string name = "fleet";
  int sites = 50;
  int workloads = 20;

  // Rolling-upgrade drift: expected number of mutations applied per site
  // per drift round (0 disables drift entirely).
  double drift_rate = 0.0;

  // Archetype mix, each a per-site probability. A site can draw several
  // archetypes at once (a container site with a broken module system is
  // legal and occurs in the wild).
  double broken_module_rate = 0.15;  // damaged module system
  double symlink_farm_rate = 0.25;   // stacks advertised via a link farm
  double container_rate = 0.20;      // read-only /opt+/usr image layers
  double ppc_rate = 0.05;            // non-x86 sites (trivially unready)

  // Library text padding multiplier applied to every generated site (see
  // site::Site::library_scale); small fleets can afford 1.0, a 500-site
  // fleet wants a few percent.
  double library_scale = 0.05;

  // Stacks per generated site are drawn uniformly from [1, max].
  int max_stacks_per_site = 4;
};

// Parses and validates a spec document. Every failure — malformed JSON,
// missing/unknown keys, wrong types, out-of-range values — is
// ErrorCode::kSpecParse.
support::Result<FleetSpec> parse_fleet_spec(std::string_view text);

// Inverse of parse_fleet_spec: emits every field plus the schema tag.
// Byte-stable (Json objects are sorted maps).
support::Json fleet_spec_to_json(const FleetSpec& spec);

}  // namespace feam::fleet
