// The fleet manifest (schema feam.fleet_manifest/1): a byte-stable JSON
// description of everything the generator produced — the spec it ran
// with, the seed, and per-site/per-workload summaries. Because the
// generator is deterministic in (spec, seed), the manifest doubles as a
// reproducibility receipt: regenerate with the same inputs and the dump
// is byte-identical (Json objects are sorted maps; the seed is carried as
// a decimal string so no 64-bit value is squeezed through a double).
#pragma once

#include <string_view>

#include "fleet/generate.hpp"
#include "support/json.hpp"

namespace feam::fleet {

inline constexpr std::string_view kFleetManifestSchema =
    "feam.fleet_manifest/1";

support::Json fleet_manifest(const Fleet& fleet);

}  // namespace feam::fleet
