#include "fleet/generate.hpp"

#include <algorithm>
#include <cstdio>

#include "support/rng.hpp"
#include "toolchain/provision.hpp"
#include "workloads/synthetic.hpp"

namespace feam::fleet {

namespace {

using site::CompilerFamily;
using site::Interconnect;
using site::MpiImpl;
using site::MpiStackInstall;
using site::Site;
using site::UserEnvTool;
using support::Rng;
using support::Version;

// OS profiles of the paper's era, weighted toward the mid-life releases a
// real 2010s fleet would show. The glibc version rides with the distro.
struct OsProfile {
  const char* distro;
  const char* os;
  const char* kernel;
  const char* clib;
  double weight;
};

constexpr OsProfile kOsProfiles[] = {
    {"CentOS", "4.9", "2.6.9-89.ELsmp", "2.3.4", 0.10},
    {"CentOS", "5.5", "2.6.18-194.el5", "2.5", 0.28},
    {"Red Hat Enterprise Linux Server", "5.6", "2.6.18-238.el5", "2.5", 0.14},
    {"Red Hat Enterprise Linux Server", "6.1", "2.6.32-131.el6", "2.12", 0.20},
    {"SUSE Linux Enterprise Server", "11", "2.6.32.13-0.5", "2.11.1", 0.16},
    {"CentOS", "6.2", "2.6.32-220.el6", "2.12", 0.12},
};

constexpr const char* kGnuVersions[] = {"3.4.6", "4.1.2", "4.4.3", "4.4.5"};
constexpr const char* kIntelVersions[] = {"10.1", "11.1", "12"};
constexpr const char* kOpenMpiVersions[] = {"1.2.8", "1.3", "1.4", "1.4.3"};
constexpr const char* kMpich2Versions[] = {"1.0.7", "1.2.1p1", "1.4.1"};
constexpr const char* kMvapich2Versions[] = {"1.2", "1.5", "1.7rc1"};

std::size_t weighted_pick(Rng& rng, const double* weights, std::size_t n) {
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double draw = rng.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return n - 1;
}

std::string site_name(const FleetSpec& spec, int index) {
  char suffix[8];
  std::snprintf(suffix, sizeof suffix, "%03d", index);
  return spec.name + "-" + suffix;
}

// The anchor: a healthy build site with every compiler family, one stack
// per MPI implementation, and the *newest* glibc in the fleet — binaries
// built here carry the full spread of GLIBC version references, so older
// generated sites genuinely reject some of them.
std::unique_ptr<Site> make_anchor(const FleetSpec& spec) {
  auto s = std::make_unique<Site>();
  s->name = site_name(spec, 0);
  s->center = "fleet anchor";
  s->system_type = "Cluster";
  s->cpu_count = 1024;
  s->os_distro = "Red Hat Enterprise Linux Server";
  s->os_version = Version::of("6.1");
  s->kernel_version = "2.6.32-131.el6";
  s->clib_version = Version::of("2.12");
  s->user_env_tool = UserEnvTool::kModules;
  s->batch = site::BatchKind::kPbs;
  s->library_scale = spec.library_scale;
  s->compilers = {{CompilerFamily::kGnu, Version::of("4.4.5")},
                  {CompilerFamily::kIntel, Version::of("12")},
                  {CompilerFamily::kPgi, Version::of("7.2")}};
  const auto add_stack = [&](MpiImpl impl, const char* version) {
    MpiStackInstall stack;
    stack.impl = impl;
    stack.version = Version::of(version);
    stack.compiler = CompilerFamily::kGnu;
    stack.compiler_version = Version::of("4.4.5");
    stack.interconnect = Interconnect::kInfiniband;
    s->stacks.push_back(std::move(stack));
  };
  add_stack(MpiImpl::kOpenMpi, "1.4.3");
  add_stack(MpiImpl::kMpich2, "1.4.1");
  add_stack(MpiImpl::kMvapich2, "1.5");
  toolchain::provision_site(*s);
  return s;
}

// Re-points every advertised stack through a link farm: /opt/sw/<slug>/
// {bin,lib} are symlinks into the real prefix, and the module database is
// rewritten to advertise the farm paths. Discovery, the loader, and stack
// selection must all chase the links — exactly what real farm layouts
// (/soft/apps-style) demand.
void apply_symlink_farm(Site& s) {
  for (const auto& stack : s.stacks) {
    const std::string farm = "/opt/sw/" + stack.slug();
    s.vfs.symlink(farm + "/bin", stack.prefix + "/bin");
    s.vfs.symlink(farm + "/lib", stack.prefix + "/lib");
  }
  for (auto& module : s.module_files) {
    for (auto& [var, entry] : module.prepends) {
      for (const auto& stack : s.stacks) {
        if (entry == stack.prefix + "/bin") {
          entry = "/opt/sw/" + stack.slug() + "/bin";
        } else if (entry == stack.prefix + "/lib") {
          entry = "/opt/sw/" + stack.slug() + "/lib";
        }
      }
    }
  }
  toolchain::write_module_database(s);
}

// One of three module-system breakages, all observed in the wild and all
// caught by different FEAM layers: a module whose database entry vanished,
// a module whose prepend points at a retired directory, and the paper's
// classic advertised-but-nonfunctional stack.
void apply_broken_modules(Site& s, Rng& rng, SiteTraits& traits) {
  if (s.module_files.empty() || s.user_env_tool == UserEnvTool::kNone) {
    return;
  }
  const std::size_t victim = rng.next_below(s.module_files.size());
  auto& module = s.module_files[victim];
  switch (rng.next_below(3)) {
    case 0: {
      s.vfs.remove(toolchain::module_database_path(s, module.name));
      traits.broken_detail = "missing-modulefile:" + module.name;
      break;
    }
    case 1: {
      const MpiStackInstall* stack = s.stack_for_module(module.name);
      const std::string retired =
          "/opt/retired/" + (stack != nullptr ? stack->slug() : "unknown");
      for (auto& [var, entry] : module.prepends) {
        if (var == "LD_LIBRARY_PATH") entry = retired + "/lib";
        if (var == "PATH") entry = retired + "/bin";
      }
      toolchain::write_module_database(s);
      traits.broken_detail = "dangling-prepend:" + module.name;
      break;
    }
    default: {
      std::string flattened = module.name;
      std::replace(flattened.begin(), flattened.end(), '/', '-');
      for (auto& stack : s.stacks) {
        if (stack.slug() == flattened) {
          stack.functional = false;
          traits.broken_detail = "nonfunctional:" + stack.slug();
          break;
        }
      }
      break;
    }
  }
  traits.broken_modules = !traits.broken_detail.empty();
}

std::unique_ptr<Site> make_generated_site(const FleetSpec& spec, int index,
                                          const Rng& base,
                                          SiteTraits& traits) {
  Rng rng = base.fork("site-" + std::to_string(index));
  auto s = std::make_unique<Site>();
  s->name = site_name(spec, index);
  s->center = "generated";
  const char* kSystemTypes[] = {"Cluster", "MPP", "SMP", "Hybrid"};
  s->system_type = kSystemTypes[rng.next_below(4)];
  s->cpu_count = 64 << rng.next_below(9);  // 64 .. 16384
  s->isa = rng.chance(spec.ppc_rate) ? elf::Isa::kPpc64 : elf::Isa::kX86_64;

  double os_weights[std::size(kOsProfiles)];
  for (std::size_t i = 0; i < std::size(kOsProfiles); ++i) {
    os_weights[i] = kOsProfiles[i].weight;
  }
  const OsProfile& os =
      kOsProfiles[weighted_pick(rng, os_weights, std::size(kOsProfiles))];
  s->os_distro = os.distro;
  s->os_version = Version::of(os.os);
  s->kernel_version = os.kernel;
  s->clib_version = Version::of(os.clib);

  const double tool = rng.next_double();
  s->user_env_tool = tool < 0.70   ? UserEnvTool::kModules
                     : tool < 0.95 ? UserEnvTool::kSoftEnv
                                   : UserEnvTool::kNone;
  const double batch = rng.next_double();
  s->batch = batch < 0.6   ? site::BatchKind::kPbs
             : batch < 0.8 ? site::BatchKind::kSge
                           : site::BatchKind::kSlurm;

  // Tool degradations at roughly the frequency the paper encountered.
  s->locate_available = !rng.chance(0.15);
  s->ldd_available = !rng.chance(0.07);
  s->libc_executable = !rng.chance(0.07);
  s->library_scale = spec.library_scale;

  // Compiler park: GNU always (the system compiler), vendor compilers on
  // the larger machines.
  const char* gnu_version =
      kGnuVersions[rng.next_below(std::size(kGnuVersions))];
  s->compilers = {{CompilerFamily::kGnu, Version::of(gnu_version)}};
  if (rng.chance(0.45)) {
    s->compilers.push_back(
        {CompilerFamily::kIntel,
         Version::of(kIntelVersions[rng.next_below(std::size(kIntelVersions))])});
  }
  if (rng.chance(0.25)) {
    s->compilers.push_back({CompilerFamily::kPgi, Version::of("7.2")});
  }

  // MPI stacks: implementation/version spread with per-stack
  // misconfiguration draws.
  const int stack_count =
      1 + static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(spec.max_stacks_per_site)));
  for (int k = 0; k < stack_count; ++k) {
    MpiStackInstall stack;
    const double impl = rng.next_double();
    if (impl < 0.45) {
      stack.impl = MpiImpl::kOpenMpi;
      stack.version = Version::of(
          kOpenMpiVersions[rng.next_below(std::size(kOpenMpiVersions))]);
    } else if (impl < 0.75) {
      stack.impl = MpiImpl::kMpich2;
      stack.version = Version::of(
          kMpich2Versions[rng.next_below(std::size(kMpich2Versions))]);
    } else {
      stack.impl = MpiImpl::kMvapich2;
      stack.version = Version::of(
          kMvapich2Versions[rng.next_below(std::size(kMvapich2Versions))]);
    }
    const auto& compiler =
        s->compilers[rng.next_below(s->compilers.size())];
    stack.compiler = compiler.family;
    stack.compiler_version = compiler.version;
    stack.interconnect =
        rng.chance(0.5) ? Interconnect::kInfiniband : Interconnect::kEthernet;
    stack.advertised = !rng.chance(0.08);
    stack.functional = !rng.chance(0.08);
    stack.static_libs_available = rng.chance(0.12);
    stack.wrappers_embed_rpath = rng.chance(0.15);
    // One install per slug; a re-draw of the same combination is just the
    // same package.
    const std::string slug = stack.slug();
    const bool duplicate =
        std::any_of(s->stacks.begin(), s->stacks.end(),
                    [&](const MpiStackInstall& existing) {
                      return existing.slug() == slug;
                    });
    if (!duplicate) s->stacks.push_back(std::move(stack));
  }

  toolchain::provision_site(*s);

  if (rng.chance(spec.symlink_farm_rate)) {
    traits.symlink_farm = true;
    apply_symlink_farm(*s);
  }
  if (rng.chance(spec.broken_module_rate)) {
    apply_broken_modules(*s, rng, traits);
  }
  if (rng.chance(spec.container_rate)) {
    // Container-image site: the installed software surface is a squashed
    // read-only layer; /home and /tmp stay writable as the overlay upper
    // dir. Drift must unseal (rebuild the image) to mutate these.
    traits.container = true;
    s->vfs.seal("/opt");
    s->vfs.seal("/usr");
  }
  return s;
}

}  // namespace

Fleet generate_fleet(const FleetSpec& spec, std::uint64_t seed) {
  Fleet fleet;
  fleet.spec = spec;
  fleet.seed = seed;
  const Rng base(support::fnv1a_mix(seed, support::fnv1a(spec.name)));

  fleet.sites.reserve(static_cast<std::size_t>(spec.sites));
  fleet.traits.resize(static_cast<std::size_t>(spec.sites));
  fleet.sites.push_back(make_anchor(spec));
  for (int i = 1; i < spec.sites; ++i) {
    fleet.sites.push_back(make_generated_site(
        spec, i, base, fleet.traits[static_cast<std::size_t>(i)]));
  }

  Rng workload_rng = base.fork("workloads");
  fleet.workloads = workloads::synthetic_suite(spec.workloads,
                                               workload_rng.next_u64());
  fleet.build_stack.reserve(fleet.workloads.size());
  const int anchor_stacks =
      static_cast<int>(fleet.anchor().stacks.size());
  for (std::size_t w = 0; w < fleet.workloads.size(); ++w) {
    fleet.build_stack.push_back(static_cast<int>(w) % anchor_stacks);
  }
  return fleet;
}

}  // namespace feam::fleet
