#include "fleet/drift.hpp"

#include "support/json.hpp"
#include "support/rng.hpp"
#include "toolchain/packages.hpp"
#include "toolchain/provision.hpp"

namespace feam::fleet {

namespace {

using site::Site;
using support::Rng;

// Rewrites the OS identity the way a kernel errata update would: same
// release, new build stamp. A system write, so discovery re-verifies.
DriftOp os_bump(Site& s, int round) {
  s.vfs.write_file("/proc/version",
                   "Linux version " + s.kernel_version +
                       " (gcc version unknown) #" + std::to_string(round + 2) +
                       " SMP\n");
  return {.kind = "os-bump", .detail = "kernel build #" +
                                           std::to_string(round + 2)};
}

DriftOp apply_one(Site& s, Rng& rng, int round) {
  switch (rng.next_below(6)) {
    // An admin touching a module file (edited comment, re-saved): the
    // database *content* changes while the advertised surface does not —
    // the EDC must re-scan and land on the same result.
    case 0:
    case 1: {
      if (s.module_files.empty()) return os_bump(s, round);
      const auto& module =
          s.module_files[rng.next_below(s.module_files.size())];
      const std::string path =
          toolchain::module_database_path(s, module.name);
      if (path.empty()) return os_bump(s, round);
      const support::Bytes* existing = s.vfs.read(path);
      std::string body = existing != nullptr
                             ? std::string(existing->begin(), existing->end())
                             : std::string("#%Module1.0\n");
      body += "# drift round " + std::to_string(round) + "\n";
      s.vfs.write_file(path, body);
      return {.kind = "touch-module", .detail = module.name};
    }
    // The database entry vanishes (half-finished upgrade): the stack
    // disappears from `module avail` until a repair round.
    case 2: {
      if (s.module_files.empty()) return os_bump(s, round);
      const auto& module =
          s.module_files[rng.next_below(s.module_files.size())];
      const std::string path =
          toolchain::module_database_path(s, module.name);
      if (path.empty()) return os_bump(s, round);
      s.vfs.remove(path);
      return {.kind = "break-module", .detail = module.name};
    }
    // The admin finishes the upgrade: every advertised module is
    // rewritten, undoing earlier breakage.
    case 3: {
      toolchain::write_module_database(s);
      return {.kind = "repair-modules",
              .detail = std::to_string(s.module_files.size()) + " modules"};
    }
    // Package re-install at the same prefix: byte-identical libraries
    // (content is seeded by site+soname) under *new* write stamps — the
    // BDC's stamp fast path misses and falls back to content hashing.
    case 4: {
      if (s.stacks.empty()) return os_bump(s, round);
      const auto& stack = s.stacks[rng.next_below(s.stacks.size())];
      toolchain::install_mpi_stack(s, stack);
      return {.kind = "reinstall-stack", .detail = stack.slug()};
    }
    default:
      return os_bump(s, round);
  }
}

}  // namespace

std::vector<DriftOp> apply_drift_round(Fleet& fleet, int round) {
  std::vector<DriftOp> ops;
  const double rate = fleet.spec.drift_rate;
  if (rate <= 0) return ops;
  const Rng base(support::fnv1a_mix(
      fleet.seed,
      support::fnv1a_mix(0x4452494654ull, static_cast<std::uint64_t>(round))));
  for (std::size_t i = 1; i < fleet.sites.size(); ++i) {
    Site& s = *fleet.sites[i];
    Rng rng = base.fork("site-" + std::to_string(i));
    int count = static_cast<int>(rate);
    if (rng.chance(rate - static_cast<double>(count))) ++count;
    if (count == 0) continue;
    const bool container = fleet.traits[i].container;
    if (container) {
      // Image rebuild: lift the read-only layer, mutate, squash again.
      s.vfs.unseal("/opt");
      s.vfs.unseal("/usr");
    }
    for (int k = 0; k < count; ++k) {
      DriftOp op = apply_one(s, rng, round);
      op.site_index = static_cast<int>(i);
      op.site = s.name;
      op.round = round;
      if (container) op.detail += " (image rebuild)";
      ops.push_back(std::move(op));
    }
    if (container) {
      s.vfs.seal("/opt");
      s.vfs.seal("/usr");
    }
  }
  return ops;
}

std::string drift_log_jsonl(const std::vector<DriftOp>& ops) {
  std::string out;
  for (const DriftOp& op : ops) {
    support::Json line;
    line.set("schema", std::string(kDriftLogSchema));
    line.set("round", op.round);
    line.set("site_index", op.site_index);
    line.set("site", op.site);
    line.set("kind", op.kind);
    line.set("detail", op.detail);
    out += line.dump();
    out += '\n';
  }
  return out;
}

}  // namespace feam::fleet
