// The procedural fleet generator: (spec, seed) -> N provisioned sites and
// M synthetic workloads.
//
// Site 0 is always the *anchor*: a healthy, fully-equipped build site
// where every workload compiles and the source phase runs. Sites 1..N-1
// are sampled — OS/glibc/compiler/MPI spreads drawn from weighted
// distributions modeled on the paper's Table II era, plus the archetypes
// the evaluation needs at scale: partially-broken module systems,
// symlink-farm software trees, container-image sites whose /opt and /usr
// are sealed read-only layers, and non-x86 machines.
//
// Determinism discipline: every sampled decision comes from an Rng stream
// forked off the fleet seed with a stable label ("site-17", "workloads"),
// so generation order never leaks into the result and the same (spec,
// seed) reproduces the fleet byte-for-byte — the property the manifest
// (manifest.hpp) and the determinism suite pin down.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "site/site.hpp"
#include "workloads/benchmarks.hpp"

namespace feam::fleet {

// Which archetypes a generated site drew (recorded in the manifest; the
// drift model also keys off them).
struct SiteTraits {
  bool symlink_farm = false;
  bool container = false;
  bool broken_modules = false;
  // "missing-modulefile:<name>" | "dangling-prepend:<name>" |
  // "nonfunctional:<slug>" | "" when the module system is intact.
  std::string broken_detail;
};

struct Fleet {
  FleetSpec spec;
  std::uint64_t seed = 0;
  // sites[0] is the anchor; unique_ptr so Site addresses stay stable for
  // leases and cache keys while the vector grows.
  std::vector<std::unique_ptr<site::Site>> sites;
  std::vector<SiteTraits> traits;  // parallel to sites
  std::vector<workloads::Workload> workloads;
  // For each workload, the index into sites[0]->stacks it builds with.
  std::vector<int> build_stack;

  site::Site& anchor() { return *sites.front(); }
  const site::Site& anchor() const { return *sites.front(); }
};

Fleet generate_fleet(const FleetSpec& spec, std::uint64_t seed);

}  // namespace feam::fleet
