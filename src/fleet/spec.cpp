#include "fleet/spec.hpp"

#include <cmath>

namespace feam::fleet {

namespace {

using R = support::Result<FleetSpec>;
using support::ErrorCode;
using support::Json;

R fail(const std::string& detail) {
  return R::failure(ErrorCode::kSpecParse, "fleet spec: " + detail);
}

// Bounds generous enough for any sane experiment; tight enough that a
// fuzzer cannot request a terabyte fleet.
constexpr int kMaxSites = 100000;
constexpr int kMaxWorkloads = 100000;
constexpr int kMaxStacks = 16;

bool finite_number(const Json& v) {
  return v.is_number() && std::isfinite(v.as_number());
}

}  // namespace

support::Result<FleetSpec> parse_fleet_spec(std::string_view text) {
  const auto parsed = Json::parse(text);
  if (!parsed) return fail("not valid JSON");
  const Json& doc = *parsed;
  if (!doc.is_object()) return fail("top level must be an object");

  FleetSpec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != kFleetSpecSchema) {
        return fail("schema must be \"" + std::string(kFleetSpecSchema) +
                    "\"");
      }
    } else if (key == "name") {
      if (!value.is_string() || value.as_string().empty()) {
        return fail("name must be a non-empty string");
      }
      for (const char c : value.as_string()) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '-' || c == '_';
        if (!ok) return fail("name must be a lowercase slug");
      }
      spec.name = value.as_string();
    } else if (key == "sites" || key == "workloads" ||
               key == "max_stacks_per_site") {
      if (!finite_number(value) ||
          value.as_number() != std::floor(value.as_number())) {
        return fail(key + " must be an integer");
      }
      const double n = value.as_number();
      const int limit = key == "sites"       ? kMaxSites
                        : key == "workloads" ? kMaxWorkloads
                                             : kMaxStacks;
      if (n < 1 || n > limit) {
        return fail(key + " must be in [1, " + std::to_string(limit) + "]");
      }
      const int v = static_cast<int>(n);
      if (key == "sites") {
        spec.sites = v;
      } else if (key == "workloads") {
        spec.workloads = v;
      } else {
        spec.max_stacks_per_site = v;
      }
    } else if (key == "drift_rate") {
      if (!finite_number(value) || value.as_number() < 0 ||
          value.as_number() > 16) {
        return fail("drift_rate must be in [0, 16]");
      }
      spec.drift_rate = value.as_number();
    } else if (key == "broken_module_rate" || key == "symlink_farm_rate" ||
               key == "container_rate" || key == "ppc_rate") {
      if (!finite_number(value) || value.as_number() < 0 ||
          value.as_number() > 1) {
        return fail(key + " must be in [0, 1]");
      }
      const double v = value.as_number();
      if (key == "broken_module_rate") {
        spec.broken_module_rate = v;
      } else if (key == "symlink_farm_rate") {
        spec.symlink_farm_rate = v;
      } else if (key == "container_rate") {
        spec.container_rate = v;
      } else {
        spec.ppc_rate = v;
      }
    } else if (key == "library_scale") {
      if (!finite_number(value) || value.as_number() <= 0 ||
          value.as_number() > 1) {
        return fail("library_scale must be in (0, 1]");
      }
      spec.library_scale = value.as_number();
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  return spec;
}

support::Json fleet_spec_to_json(const FleetSpec& spec) {
  Json::Object out;
  out.emplace("schema", Json(kFleetSpecSchema));
  out.emplace("name", Json(spec.name));
  out.emplace("sites", Json(spec.sites));
  out.emplace("workloads", Json(spec.workloads));
  out.emplace("drift_rate", Json(spec.drift_rate));
  out.emplace("broken_module_rate", Json(spec.broken_module_rate));
  out.emplace("symlink_farm_rate", Json(spec.symlink_farm_rate));
  out.emplace("container_rate", Json(spec.container_rate));
  out.emplace("ppc_rate", Json(spec.ppc_rate));
  out.emplace("library_scale", Json(spec.library_scale));
  out.emplace("max_stacks_per_site", Json(spec.max_stacks_per_site));
  return Json(std::move(out));
}

}  // namespace feam::fleet
