// Rolling-upgrade drift: seeded mutations of live site state between
// queries, exercising discovery_fingerprint()/state_generation()
// invalidation at fleet scale.
//
// A drift round walks every generated site (the anchor is exempt — the
// build environment stays stable) and applies a sampled number of
// administrator actions: touching a module file, breaking or repairing
// the module database, re-installing an MPI stack's packages, or bumping
// the OS identity files. Each action is a *system-path* write, so it
// moves the site's discovery fingerprint and forces the EDC memo to
// re-verify — never to serve a stale scan. Container sites are unsealed,
// mutated, and resealed, modeling an image rebuild.
//
// Drift is schedule-deterministic: every draw comes from an Rng stream
// derived from (fleet seed, round, site index), so the mutation sequence
// is a pure function of the fleet — independent of thread count or
// timing. The fleet driver applies rounds at sequential barrier points
// (between per-workload surveys), which keeps the whole readiness matrix
// byte-identical at any job count even with drift enabled.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fleet/generate.hpp"

namespace feam::fleet {

inline constexpr std::string_view kDriftLogSchema = "feam.drift_log/1";

struct DriftOp {
  int site_index = 0;
  std::string site;
  std::string kind;    // "touch-module" | "break-module" | "repair-modules"
                       // | "reinstall-stack" | "os-bump"
  std::string detail;  // human-readable object of the action
  // Barrier round the op was applied at (== the workload index whose survey
  // preceded it). `feam diff` uses it to attribute verdict flips: a flip of
  // workload w can only be caused by ops with round < w on the same site.
  int round = 0;
};

// Applies drift round `round` to every non-anchor site at the spec's
// drift_rate (expected mutations per site per round). Returns the ops
// actually applied, in site order. No-op when drift_rate is 0.
std::vector<DriftOp> apply_drift_round(Fleet& fleet, int round);

// One feam.drift_log/1 JSON line per op — the artifact `feam diff` joins
// against run-record streams to attribute verdict flips to drift.
std::string drift_log_jsonl(const std::vector<DriftOp>& ops);

}  // namespace feam::fleet
