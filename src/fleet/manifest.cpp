#include "fleet/manifest.hpp"

#include "toolchain/compiler.hpp"

namespace feam::fleet {

namespace {

using support::Json;

Json site_entry(const site::Site& s, const SiteTraits& traits) {
  Json::Object out;
  out.emplace("name", Json(s.name));
  out.emplace("isa", Json(elf::isa_name(s.isa)));
  out.emplace("os_distro", Json(s.os_distro));
  out.emplace("os_version", Json(s.os_version.str()));
  out.emplace("kernel", Json(s.kernel_version));
  out.emplace("clib_version", Json(s.clib_version.str()));
  out.emplace("user_env_tool", Json(site::user_env_tool_name(s.user_env_tool)));
  out.emplace("cpu_count", Json(s.cpu_count));
  out.emplace("locate_available", Json(s.locate_available));
  out.emplace("ldd_available", Json(s.ldd_available));
  out.emplace("libc_executable", Json(s.libc_executable));

  Json::Object archetypes;
  archetypes.emplace("container", Json(traits.container));
  archetypes.emplace("symlink_farm", Json(traits.symlink_farm));
  archetypes.emplace("broken_modules", Json(traits.broken_modules));
  archetypes.emplace("broken_detail", Json(traits.broken_detail));
  out.emplace("archetypes", Json(std::move(archetypes)));

  Json::Array sealed;
  for (const auto& prefix : s.vfs.sealed_prefixes()) {
    sealed.emplace_back(prefix);
  }
  out.emplace("sealed", Json(std::move(sealed)));

  Json::Array stacks;
  for (const auto& stack : s.stacks) {
    Json::Object entry;
    entry.emplace("slug", Json(stack.slug()));
    entry.emplace("advertised", Json(stack.advertised));
    entry.emplace("functional", Json(stack.functional));
    entry.emplace("interconnect",
                  Json(site::interconnect_name(stack.interconnect)));
    stacks.emplace_back(std::move(entry));
  }
  out.emplace("stacks", Json(std::move(stacks)));
  return Json(std::move(out));
}

Json workload_entry(const workloads::Workload& workload,
                    const site::Site& anchor, int build_stack) {
  Json::Object out;
  out.emplace("name", Json(workload.program.name));
  out.emplace("suite", Json(workload.suite));
  out.emplace("language",
              Json(toolchain::language_name(workload.program.language)));
  out.emplace("text_size", Json(workload.program.text_size));
  Json::Array features;
  for (const auto& key : workload.program.libc_features) {
    features.emplace_back(key);
  }
  out.emplace("libc_features", Json(std::move(features)));
  const auto index = static_cast<std::size_t>(build_stack);
  out.emplace("build_stack", index < anchor.stacks.size()
                                 ? Json(anchor.stacks[index].slug())
                                 : Json());
  return Json(std::move(out));
}

}  // namespace

support::Json fleet_manifest(const Fleet& fleet) {
  Json::Object out;
  out.emplace("schema", Json(kFleetManifestSchema));
  out.emplace("seed", Json(std::to_string(fleet.seed)));
  out.emplace("spec", fleet_spec_to_json(fleet.spec));
  out.emplace("site_count", Json(fleet.sites.size()));
  out.emplace("workload_count", Json(fleet.workloads.size()));

  Json::Array sites;
  for (std::size_t i = 0; i < fleet.sites.size(); ++i) {
    sites.push_back(site_entry(*fleet.sites[i], fleet.traits[i]));
  }
  out.emplace("sites", Json(std::move(sites)));

  Json::Array workloads;
  for (std::size_t w = 0; w < fleet.workloads.size(); ++w) {
    workloads.push_back(workload_entry(fleet.workloads[w], fleet.anchor(),
                                       fleet.build_stack[w]));
  }
  out.emplace("workloads", Json(std::move(workloads)));
  return Json(std::move(out));
}

}  // namespace feam::fleet
