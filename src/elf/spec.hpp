// High-level description of an ELF binary's linking metadata.
//
// The simulated toolchain produces an ElfSpec for each compiled program or
// shared library; ElfImageBuilder serializes it into a structurally valid
// ELF image, and ElfFile parses such images back. FEAM itself never sees an
// ElfSpec — it only sees bytes, exactly as the real tool only saw files on
// disk. Round-tripping spec -> bytes -> parse is the contract tested in
// tests/elf/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/byte_io.hpp"

namespace feam::elf {

// Instruction-set architectures present in the paper's testbed plus one
// extra (AArch64) used for negative testing of the ISA determinant.
enum class Isa : std::uint8_t { kX86, kX86_64, kPpc, kPpc64, kAarch64 };

enum class FileKind : std::uint8_t { kExecutable, kSharedObject };

const char* isa_name(Isa isa);
int isa_bits(Isa isa);
support::Endian isa_endian(Isa isa);
// True when a binary compiled for `binary_isa` can execute on hardware of
// `host_isa`: exact match, or 32-bit x86 on an x86-64 host (multilib), or
// 32-bit ppc on ppc64. This is the ground truth the ISA determinant of the
// prediction model approximates.
bool isa_executable_on(Isa binary_isa, Isa host_isa);

// One undefined (imported) symbol, optionally bound to a version of the
// library expected to provide it, e.g. {"memcpy", "GLIBC_2.3.4", "libc.so.6"}.
struct UndefinedSymbol {
  std::string name;
  std::string version;   // empty -> unversioned reference
  std::string from_lib;  // which DT_NEEDED file the version belongs to
};

// One defined (exported) symbol, optionally tagged with the version node it
// belongs to, e.g. {"MPI_Init", "", ...} or {"memmove", "GLIBC_2.0"}.
struct DefinedSymbol {
  std::string name;
  std::string version;  // empty -> base/global version
};

// Simulation stand-in for properties that live in machine code on a real
// system: the compiler runtime ABI fingerprint and floating-point model.
// Serialized into a `.note.feam.abi` SHT_NOTE section so they are carried
// *inside the file* (migrating the file migrates them), but FEAM's
// prediction model never reads this note — exactly as the paper's FEAM
// could not see ABI breaks statically and needed hello-world runs to catch
// them (Section VI.C).
struct AbiNote {
  std::string compiler_family;   // "GNU", "Intel", "PGI"
  std::string compiler_version;  // "4.1.2"
  std::string mpi_impl;          // "openmpi" / "mpich2" / "mvapich2"; empty if none
  std::string mpi_version;       // "1.4.3"
  std::uint32_t abi_fingerprint = 0;  // link-level ABI of the runtime libs
  std::uint32_t fp_model = 0;         // floating point contract tag
};

struct ElfSpec {
  Isa isa = Isa::kX86_64;
  FileKind kind = FileKind::kExecutable;

  // Statically linked executable: no PT_DYNAMIC, no dynamic sections at
  // all (needed/soname/version fields are ignored). `ldd` reports such
  // binaries as "not a dynamic executable" and FEAM's shared-library and
  // MPI-stack determinants have nothing to check — which is exactly why
  // the paper's scientists wanted static binaries and often could not
  // have them (Section VI.C).
  bool static_link = false;

  // DT_SONAME, for shared objects ("libmpi.so.0").
  std::string soname;

  // DT_NEEDED entries in link order ("libc.so.6", "libmpi.so.0", ...).
  std::vector<std::string> needed;

  // DT_RPATH entries (colon-joined at serialization time, as ld does).
  std::vector<std::string> rpath;

  // Version definitions this object provides (verdef), e.g. glibc defines
  // {"GLIBC_2.0", ..., "GLIBC_2.5"}. The object's soname is always emitted
  // as the base definition.
  std::vector<std::string> version_definitions;

  // Exported symbols (dynsym, defined).
  std::vector<DefinedSymbol> defined_symbols;

  // Imported symbols (dynsym, undefined). Versioned imports produce the
  // .gnu.version_r (verneed) section grouped by from_lib.
  std::vector<UndefinedSymbol> undefined_symbols;

  // .comment strings, e.g. "GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)".
  std::vector<std::string> comments;

  // Synthetic .text payload: size in bytes and a seed for deterministic
  // filler content. Sized realistically so bundle accounting (paper
  // Section VI.C, ~45M bundles) is meaningful.
  std::uint64_t text_size = 4096;
  std::uint64_t content_seed = 1;

  std::optional<AbiNote> abi;

  // Derived: the "Version References" view FEAM computes — all versions
  // grouped by library file, in first-appearance order.
  struct VersionNeed {
    std::string file;
    std::vector<std::string> versions;
  };
  std::vector<VersionNeed> version_needs() const;
};

}  // namespace feam::elf
