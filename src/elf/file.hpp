// Bounds-checked parser for the ELF images this repository produces — and,
// structurally, for any gABI-conforming image that sticks to the features
// we model. This is the substrate under the binutils reimplementations
// (objdump/readelf/ldd): those tools *render text* from an ElfFile exactly
// the way the real tools render it from a file, and FEAM consumes the text.
//
// Parsing philosophy: never trust an offset. Every read goes through
// ByteReader's bounds checks; a malformed or truncated image yields a
// Result error, never UB. Dynamic-section virtual addresses are translated
// through the program headers like a real loader would (the builder's
// vaddr==offset convention is *not* assumed).
//
// Allocation model: a parse is ZERO-COPY. Every string the accessors
// expose — needed sonames, rpath entries, version records, comments,
// symbol names — is a std::string_view into the caller's byte buffer, so
// parsing a binary with thousands of dynamic symbols allocates a handful
// of vectors, not thousands of strings. The flip side is a borrow: an
// ElfFile is valid exactly as long as the Bytes passed to parse() stay
// alive and unmodified. Transient users (objdump/readelf/ldd render text
// from a VFS node's bytes under the site lease) satisfy this trivially;
// long-lived holders must own an arena copy of the bytes alongside the
// parse (see ResolverCache::parsed_elf).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "elf/spec.hpp"
#include "support/byte_io.hpp"
#include "support/result.hpp"

namespace feam::elf {

struct DynSymbol {
  std::string_view name;
  std::string_view version;  // from .gnu.version + verneed/verdef; empty if none
  bool defined = false;
};

// View-typed mirror of ElfSpec::VersionNeed: one required provider file
// and the version names pulled from it, all borrowed from the image.
struct VersionNeedView {
  std::string_view file;
  std::vector<std::string_view> versions;
};

class ElfFile {
 public:
  // Zero-copy parse: the returned ElfFile borrows `data` (see the
  // allocation-model note above).
  static support::Result<ElfFile> parse(const support::Bytes& data);

  // --- file format description (what `objdump -p` / `file` report)
  Isa isa() const { return isa_; }
  int bits() const { return isa_bits(isa_); }
  support::Endian endian() const { return isa_endian(isa_); }
  FileKind kind() const { return kind_; }
  bool is_dynamic() const { return has_dynamic_; }

  // --- dynamic section
  const std::vector<std::string_view>& needed() const { return needed_; }
  const std::optional<std::string_view>& soname() const { return soname_; }
  const std::vector<std::string_view>& rpath() const { return rpath_; }

  // --- GNU symbol versioning
  const std::vector<VersionNeedView>& version_references() const {
    return version_refs_;
  }
  // Named definitions only (the base definition that repeats the soname is
  // excluded, matching how objdump consumers read the section).
  const std::vector<std::string_view>& version_definitions() const {
    return version_defs_;
  }

  // --- sections
  const std::vector<std::string_view>& comments() const { return comments_; }
  const std::optional<AbiNote>& abi_note() const { return abi_note_; }
  const std::vector<DynSymbol>& dynamic_symbols() const { return symbols_; }

  std::size_t file_size() const { return file_size_; }

 private:
  ElfFile() = default;

  Isa isa_ = Isa::kX86_64;
  FileKind kind_ = FileKind::kExecutable;
  bool has_dynamic_ = false;
  std::vector<std::string_view> needed_;
  std::optional<std::string_view> soname_;
  std::vector<std::string_view> rpath_;
  std::vector<VersionNeedView> version_refs_;
  std::vector<std::string_view> version_defs_;
  std::vector<std::string_view> comments_;
  std::optional<AbiNote> abi_note_;
  std::vector<DynSymbol> symbols_;
  std::size_t file_size_ = 0;
};

// Quick check used by tools that must behave differently on non-ELF input
// (e.g. shell scripts): true iff the magic bytes are present.
bool looks_like_elf(const support::Bytes& data);

}  // namespace feam::elf
