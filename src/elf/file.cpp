#include "elf/file.hpp"

#include <algorithm>
#include <map>

#include "elf/constants.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace feam::elf {

namespace {

using support::ByteReader;
using support::Bytes;
using support::Endian;
using support::Result;

// Sanity cap on DT_VERNEEDNUM/DT_VERDEFNUM: the counts are attacker
// controlled and, combined with tiny vn_next strides, would otherwise let
// a small file demand up-to-file-size walk iterations.
constexpr std::uint64_t kMaxVersionRecords = 4096;

struct Segment {
  std::uint32_t type = 0;
  std::uint64_t offset = 0;
  std::uint64_t vaddr = 0;
  std::uint64_t filesz = 0;
};

struct Section {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint64_t entsize = 0;
};

// Everything the low-level walk discovers before the high-level fields are
// assembled.
struct Raw {
  bool is64 = false;
  Endian endian = Endian::kLittle;
  std::uint16_t type = 0;
  std::uint16_t machine = 0;
  std::vector<Segment> segments;
  std::vector<Section> sections;
  std::map<std::int64_t, std::vector<std::uint64_t>> dynamic;  // tag -> values
};

std::optional<std::uint64_t> vaddr_to_offset(const Raw& raw, std::uint64_t vaddr) {
  for (const Segment& seg : raw.segments) {
    if (seg.type == kPtLoad && vaddr >= seg.vaddr &&
        vaddr < seg.vaddr + seg.filesz) {
      return seg.offset + (vaddr - seg.vaddr);
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> dyn_value(const Raw& raw, std::int64_t tag) {
  const auto it = raw.dynamic.find(tag);
  if (it == raw.dynamic.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

}  // namespace

bool looks_like_elf(const Bytes& data) {
  return data.size() >= 4 && data[0] == kMagic[0] && data[1] == kMagic[1] &&
         data[2] == kMagic[2] && data[3] == kMagic[3];
}

Result<ElfFile> ElfFile::parse(const Bytes& data) {
  obs::counter("elf.images_parsed").add();
  obs::counter("elf.bytes_read").add(data.size());
  using support::ErrorCode;
  const auto fail = [](ErrorCode code, std::string msg) {
    return Result<ElfFile>::failure(code, std::move(msg));
  };

  if (!looks_like_elf(data)) return fail(ErrorCode::kElfNotElf, "not an ELF file (bad magic)");
  if (data.size() < kEiNident) return fail(ErrorCode::kElfTruncated, "truncated e_ident");

  Raw raw;
  const std::uint8_t ei_class = data[kEiClass];
  const std::uint8_t ei_data = data[kEiData];
  if (ei_class != kClass32 && ei_class != kClass64) return fail(ErrorCode::kElfBadHeader, "bad EI_CLASS");
  if (ei_data != kData2Lsb && ei_data != kData2Msb) return fail(ErrorCode::kElfBadHeader, "bad EI_DATA");
  if (data[kEiVersion] != kEvCurrent) return fail(ErrorCode::kElfBadHeader, "bad EI_VERSION");
  raw.is64 = ei_class == kClass64;
  raw.endian = ei_data == kData2Lsb ? Endian::kLittle : Endian::kBig;

  ByteReader r(data, raw.endian);
  const auto rd_addr = [&](std::size_t off) -> std::optional<std::uint64_t> {
    if (raw.is64) return r.u64(off);
    const auto v = r.u32(off);
    if (!v) return std::nullopt;
    return *v;
  };
  const std::size_t asz = raw.is64 ? 8 : 4;  // address field size

  // ELF header (field offsets relative to e_ident end at 16).
  std::size_t off = kEiNident;
  const auto e_type = r.u16(off);
  const auto e_machine = r.u16(off + 2);
  off += 8;  // e_type, e_machine, e_version
  const auto e_entry = rd_addr(off);
  const auto e_phoff = rd_addr(off + asz);
  const auto e_shoff = rd_addr(off + 2 * asz);
  off += 3 * asz + 4;  // addrs + e_flags
  const auto e_phentsize = r.u16(off + 2);
  const auto e_phnum = r.u16(off + 4);
  const auto e_shentsize = r.u16(off + 6);
  const auto e_shnum = r.u16(off + 8);
  const auto e_shstrndx = r.u16(off + 10);
  if (!e_type || !e_machine || !e_entry || !e_phoff || !e_shoff ||
      !e_phentsize || !e_phnum || !e_shentsize || !e_shnum || !e_shstrndx) {
    return fail(ErrorCode::kElfTruncated, "truncated ELF header");
  }
  raw.type = *e_type;
  raw.machine = *e_machine;

  ElfFile out;
  out.file_size_ = data.size();
  switch (raw.machine) {
    case kEm386: out.isa_ = Isa::kX86; break;
    case kEmX86_64: out.isa_ = Isa::kX86_64; break;
    case kEmPpc: out.isa_ = Isa::kPpc; break;
    case kEmPpc64: out.isa_ = Isa::kPpc64; break;
    case kEmAarch64: out.isa_ = Isa::kAarch64; break;
    default: return fail(ErrorCode::kElfUnsupported, "unsupported e_machine " + std::to_string(raw.machine));
  }
  // Cross-check the header class/endianness against the machine.
  if ((isa_bits(out.isa_) == 64) != raw.is64) {
    return fail(ErrorCode::kElfBadHeader, "EI_CLASS inconsistent with e_machine");
  }
  if (isa_endian(out.isa_) != raw.endian) {
    return fail(ErrorCode::kElfBadHeader, "EI_DATA inconsistent with e_machine");
  }
  if (raw.type == kEtExec) {
    out.kind_ = FileKind::kExecutable;
  } else if (raw.type == kEtDyn) {
    out.kind_ = FileKind::kSharedObject;
  } else {
    return fail(ErrorCode::kElfUnsupported, "unsupported e_type " + std::to_string(raw.type));
  }

  // Program headers.
  for (std::uint16_t i = 0; i < *e_phnum; ++i) {
    const std::size_t p = static_cast<std::size_t>(*e_phoff) +
                          static_cast<std::size_t>(i) * *e_phentsize;
    Segment seg;
    const auto p_type = r.u32(p);
    if (!p_type) return fail(ErrorCode::kElfTruncated, "truncated program header");
    seg.type = *p_type;
    if (raw.is64) {
      const auto o = r.u64(p + 8), v = r.u64(p + 16), fs = r.u64(p + 32);
      if (!o || !v || !fs) return fail(ErrorCode::kElfTruncated, "truncated program header");
      seg.offset = *o; seg.vaddr = *v; seg.filesz = *fs;
    } else {
      const auto o = r.u32(p + 4), v = r.u32(p + 8), fs = r.u32(p + 16);
      if (!o || !v || !fs) return fail(ErrorCode::kElfTruncated, "truncated program header");
      seg.offset = *o; seg.vaddr = *v; seg.filesz = *fs;
    }
    raw.segments.push_back(seg);
  }

  // Section headers (names resolved through shstrtab).
  std::vector<Section> headers;
  for (std::uint16_t i = 0; i < *e_shnum; ++i) {
    const std::size_t s = static_cast<std::size_t>(*e_shoff) +
                          static_cast<std::size_t>(i) * *e_shentsize;
    Section sec;
    const auto name = r.u32(s);
    const auto type = r.u32(s + 4);
    if (!name || !type) return fail(ErrorCode::kElfTruncated, "truncated section header");
    sec.type = *type;
    std::optional<std::uint64_t> so, ss, es;
    std::optional<std::uint32_t> link;
    if (raw.is64) {
      so = r.u64(s + 24);
      ss = r.u64(s + 32);
      link = r.u32(s + 40);
      es = r.u64(s + 56);
    } else {
      const auto so32 = r.u32(s + 16), ss32 = r.u32(s + 20), es32 = r.u32(s + 36);
      link = r.u32(s + 24);
      if (so32) so = *so32;
      if (ss32) ss = *ss32;
      if (es32) es = *es32;
    }
    if (!so || !ss || !link || !es) return fail(ErrorCode::kElfTruncated, "truncated section header");
    sec.offset = *so;
    sec.size = *ss;
    sec.link = *link;
    sec.entsize = *es;
    sec.name = std::to_string(*name);  // placeholder: resolved below
    headers.push_back(sec);
    // Remember the raw name offset in `link`-independent storage:
    headers.back().name = "#" + std::to_string(*name);
  }
  if (*e_shstrndx < headers.size()) {
    const Section& shstr = headers[*e_shstrndx];
    for (Section& sec : headers) {
      const std::uint64_t name_off = std::stoull(sec.name.substr(1));
      const auto resolved = r.cstr(static_cast<std::size_t>(shstr.offset + name_off));
      sec.name = resolved.value_or("");
    }
  }
  raw.sections = std::move(headers);

  // Dynamic segment.
  const Segment* dyn_seg = nullptr;
  for (const Segment& seg : raw.segments) {
    if (seg.type == kPtDynamic) dyn_seg = &seg;
  }
  if (dyn_seg != nullptr) {
    out.has_dynamic_ = true;
    const std::size_t entsize = raw.is64 ? 16 : 8;
    for (std::uint64_t p = dyn_seg->offset; p + entsize <= dyn_seg->offset + dyn_seg->filesz;
         p += entsize) {
      std::int64_t tag;
      std::uint64_t value;
      if (raw.is64) {
        const auto t = r.u64(static_cast<std::size_t>(p));
        const auto v = r.u64(static_cast<std::size_t>(p + 8));
        if (!t || !v) return fail(ErrorCode::kElfTruncated, "truncated dynamic entry");
        tag = static_cast<std::int64_t>(*t);
        value = *v;
      } else {
        const auto t = r.u32(static_cast<std::size_t>(p));
        const auto v = r.u32(static_cast<std::size_t>(p + 4));
        if (!t || !v) return fail(ErrorCode::kElfTruncated, "truncated dynamic entry");
        tag = static_cast<std::int32_t>(*t);
        value = *v;
      }
      if (tag == kDtNull) break;
      raw.dynamic[tag].push_back(value);
    }
  }

  // Resolve dynamic string references.
  const auto strtab_vaddr = dyn_value(raw, kDtStrtab);
  std::optional<std::uint64_t> strtab_off;
  if (strtab_vaddr) strtab_off = vaddr_to_offset(raw, *strtab_vaddr);
  // Zero-copy: views into `data`'s dynamic string table.
  const auto dyn_str = [&](std::uint64_t stroff) -> std::optional<std::string_view> {
    if (!strtab_off) return std::nullopt;
    return r.cstr_view(static_cast<std::size_t>(*strtab_off + stroff));
  };

  if (out.has_dynamic_) {
    if (const auto it = raw.dynamic.find(kDtNeeded); it != raw.dynamic.end()) {
      for (const std::uint64_t v : it->second) {
        const auto s = dyn_str(v);
        if (!s) return fail(ErrorCode::kElfBadOffset, "DT_NEEDED string out of range");
        out.needed_.push_back(*s);
      }
    }
    if (const auto v = dyn_value(raw, kDtSoname)) {
      const auto s = dyn_str(*v);
      if (!s) return fail(ErrorCode::kElfBadOffset, "DT_SONAME string out of range");
      out.soname_ = *s;
    }
    for (const std::int64_t tag : {kDtRpath, kDtRunpath}) {
      if (const auto v = dyn_value(raw, tag)) {
        const auto s = dyn_str(*v);
        if (!s) return fail(ErrorCode::kElfBadOffset, "DT_RPATH string out of range");
        // Split the view in place — every entry borrows the string table.
        std::string_view rest = *s;
        while (!rest.empty()) {
          const std::size_t colon = rest.find(':');
          const std::string_view part = rest.substr(0, colon);
          if (!part.empty()) out.rpath_.push_back(part);
          if (colon == std::string_view::npos) break;
          rest.remove_prefix(colon + 1);
        }
      }
    }
  }

  // Verneed: walk records, translating through the loader view.
  // vernaux index -> "file:version" for symbol annotation below.
  std::map<std::uint16_t, std::pair<std::string_view, std::string_view>>
      version_by_index;
  if (const auto vn_vaddr = dyn_value(raw, kDtVerneed)) {
    const auto vn_num = dyn_value(raw, kDtVerneednum).value_or(0);
    if (vn_num > kMaxVersionRecords) {
      return fail(ErrorCode::kElfLimitExceeded,
                  "DT_VERNEEDNUM exceeds record limit");
    }
    auto pos = vaddr_to_offset(raw, *vn_vaddr);
    if (!pos) return fail(ErrorCode::kElfBadOffset, "DT_VERNEED outside any segment");
    std::uint64_t rec = *pos;
    for (std::uint64_t i = 0; i < vn_num; ++i) {
      const auto vn_version = r.u16(static_cast<std::size_t>(rec));
      const auto vn_cnt = r.u16(static_cast<std::size_t>(rec + 2));
      const auto vn_file = r.u32(static_cast<std::size_t>(rec + 4));
      const auto vn_aux = r.u32(static_cast<std::size_t>(rec + 8));
      const auto vn_next = r.u32(static_cast<std::size_t>(rec + 12));
      if (!vn_version || !vn_cnt || !vn_file || !vn_aux || !vn_next) {
        return fail(ErrorCode::kElfTruncated, "truncated verneed record");
      }
      if (*vn_version != kVerNeedCurrent) return fail(ErrorCode::kElfBadVersionRef, "bad verneed revision");
      const auto file = dyn_str(*vn_file);
      if (!file) return fail(ErrorCode::kElfBadVersionRef, "verneed file string out of range");
      VersionNeedView need{*file, {}};
      std::uint64_t aux = rec + *vn_aux;
      for (std::uint16_t j = 0; j < *vn_cnt; ++j) {
        const auto vna_other = r.u16(static_cast<std::size_t>(aux + 6));
        const auto vna_name = r.u32(static_cast<std::size_t>(aux + 8));
        const auto vna_next = r.u32(static_cast<std::size_t>(aux + 12));
        if (!vna_other || !vna_name || !vna_next) return fail(ErrorCode::kElfTruncated, "truncated vernaux");
        const auto vname = dyn_str(*vna_name);
        if (!vname) return fail(ErrorCode::kElfBadVersionRef, "vernaux name string out of range");
        version_by_index[*vna_other] = {*file, *vname};
        need.versions.push_back(*vname);
        if (*vna_next == 0) break;
        aux += *vna_next;
      }
      out.version_refs_.push_back(std::move(need));
      if (*vn_next == 0) break;
      rec += *vn_next;
    }
  }

  // Verdef.
  if (const auto vd_vaddr = dyn_value(raw, kDtVerdef)) {
    const auto vd_num = dyn_value(raw, kDtVerdefnum).value_or(0);
    if (vd_num > kMaxVersionRecords) {
      return fail(ErrorCode::kElfLimitExceeded,
                  "DT_VERDEFNUM exceeds record limit");
    }
    auto pos = vaddr_to_offset(raw, *vd_vaddr);
    if (!pos) return fail(ErrorCode::kElfBadOffset, "DT_VERDEF outside any segment");
    std::uint64_t rec = *pos;
    for (std::uint64_t i = 0; i < vd_num; ++i) {
      const auto vd_version = r.u16(static_cast<std::size_t>(rec));
      const auto vd_flags = r.u16(static_cast<std::size_t>(rec + 2));
      const auto vd_ndx = r.u16(static_cast<std::size_t>(rec + 4));
      const auto vd_aux = r.u32(static_cast<std::size_t>(rec + 12));
      const auto vd_next = r.u32(static_cast<std::size_t>(rec + 16));
      if (!vd_version || !vd_flags || !vd_ndx || !vd_aux || !vd_next) {
        return fail(ErrorCode::kElfTruncated, "truncated verdef record");
      }
      if (*vd_version != kVerDefCurrent) return fail(ErrorCode::kElfBadVersionRef, "bad verdef revision");
      const auto vda_name = r.u32(static_cast<std::size_t>(rec + *vd_aux));
      if (!vda_name) return fail(ErrorCode::kElfTruncated, "truncated verdaux");
      const auto name = dyn_str(*vda_name);
      if (!name) return fail(ErrorCode::kElfBadVersionRef, "verdaux name string out of range");
      if ((*vd_flags & kVerFlgBase) == 0) {
        version_by_index[*vd_ndx] = {out.soname_.value_or(std::string_view()),
                                     *name};
        out.version_defs_.push_back(*name);
      }
      if (*vd_next == 0) break;
      rec += *vd_next;
    }
  }

  // Sections: .comment, .note.feam.abi, .dynsym + .gnu.version.
  const Section* dynsym_sec = nullptr;
  const Section* versym_sec = nullptr;
  for (const Section& sec : raw.sections) {
    if (sec.name == ".comment" && sec.type == kShtProgbits) {
      std::uint64_t p = sec.offset;
      const std::uint64_t end = sec.offset + sec.size;
      while (p < end) {
        const auto s = r.cstr_view(static_cast<std::size_t>(p));
        if (!s) break;
        if (!s->empty()) out.comments_.push_back(*s);
        p += s->size() + 1;
      }
    } else if (sec.name == ".note.feam.abi" && sec.type == kShtNote) {
      const auto namesz = r.u32(static_cast<std::size_t>(sec.offset));
      const auto descsz = r.u32(static_cast<std::size_t>(sec.offset + 4));
      if (namesz && descsz) {
        const std::uint64_t name_end = sec.offset + 12 + ((*namesz + 3) & ~3u);
        const auto body = r.cstr(static_cast<std::size_t>(name_end));
        if (body) {
          if (const auto json = support::Json::parse(*body)) {
            AbiNote note;
            note.compiler_family = json->get_string("compiler_family");
            note.compiler_version = json->get_string("compiler_version");
            note.mpi_impl = json->get_string("mpi_impl");
            note.mpi_version = json->get_string("mpi_version");
            note.abi_fingerprint =
                static_cast<std::uint32_t>(json->get_int("abi_fingerprint"));
            note.fp_model = static_cast<std::uint32_t>(json->get_int("fp_model"));
            out.abi_note_ = std::move(note);
          }
        }
      }
    } else if (sec.name == ".dynsym" && sec.type == kShtDynsym) {
      dynsym_sec = &sec;
    } else if (sec.name == ".gnu.version" && sec.type == kShtGnuVersym) {
      versym_sec = &sec;
    }
  }

  if (dynsym_sec != nullptr && dynsym_sec->entsize > 0) {
    const std::uint64_t count = dynsym_sec->size / dynsym_sec->entsize;
    for (std::uint64_t i = 1; i < count; ++i) {  // skip the null symbol
      const std::size_t p = static_cast<std::size_t>(
          dynsym_sec->offset + i * dynsym_sec->entsize);
      const auto st_name = r.u32(p);
      const auto st_shndx = raw.is64 ? r.u16(p + 6) : r.u16(p + 14);
      if (!st_name || !st_shndx) return fail(ErrorCode::kElfTruncated, "truncated dynsym entry");
      DynSymbol sym;
      if (const auto n = dyn_str(*st_name)) sym.name = *n;
      sym.defined = *st_shndx != kShnUndef;
      if (versym_sec != nullptr) {
        const auto vs = r.u16(static_cast<std::size_t>(versym_sec->offset + i * 2));
        if (vs && *vs >= 2) {
          const auto it = version_by_index.find(*vs);
          if (it != version_by_index.end()) sym.version = it->second.second;
        }
      }
      out.symbols_.push_back(std::move(sym));
    }
  }

  return out;
}

}  // namespace feam::elf
