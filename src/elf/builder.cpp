#include "elf/builder.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <vector>

#include "elf/constants.hpp"
#include "elf/hash.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace feam::elf {

namespace {

using support::ByteWriter;
using support::Bytes;
using support::Endian;

// Deduplicating string table builder (offset 0 is the empty string, as the
// gABI requires).
class StringTable {
 public:
  StringTable() { data_.push_back('\0'); }

  std::uint32_t add(const std::string& s) {
    if (s.empty()) return 0;
    const auto it = offsets_.find(s);
    if (it != offsets_.end()) return it->second;
    const auto off = static_cast<std::uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    offsets_.emplace(s, off);
    return off;
  }

  const std::vector<char>& data() const { return data_; }
  std::size_t size() const { return data_.size(); }

 private:
  std::vector<char> data_;
  std::map<std::string, std::uint32_t> offsets_;
};

struct SectionDesc {
  std::string name;
  std::uint32_t type = kShtProgbits;
  Bytes body;
  std::uint32_t link = 0;   // section index for sh_link
  std::uint32_t info = 0;   // record count for verneed/verdef
  std::uint64_t entsize = 0;
  // Filled during layout:
  std::uint64_t offset = 0;
};

class Layout {
 public:
  explicit Layout(const ElfSpec& spec)
      : spec_(spec),
        is64_(isa_bits(spec.isa) == 64),
        endian_(isa_endian(spec.isa)) {}

  Bytes build();

 private:
  std::uint16_t machine() const {
    switch (spec_.isa) {
      case Isa::kX86: return kEm386;
      case Isa::kX86_64: return kEmX86_64;
      case Isa::kPpc: return kEmPpc;
      case Isa::kPpc64: return kEmPpc64;
      case Isa::kAarch64: return kEmAarch64;
    }
    return 0;
  }

  std::size_t ehsize() const { return is64_ ? 64 : 52; }
  std::size_t phentsize() const { return is64_ ? 56 : 32; }
  std::size_t shentsize() const { return is64_ ? 64 : 40; }
  std::size_t symentsize() const { return is64_ ? 24 : 16; }
  std::size_t dynentsize() const { return is64_ ? 16 : 8; }

  void collect_strings();
  void assign_version_indices();
  Bytes build_dynsym();
  Bytes build_versym();
  Bytes build_verneed();
  Bytes build_verdef();
  Bytes build_dynamic(std::uint64_t dynstr_vaddr, std::uint64_t dynstr_size,
                      std::uint64_t dynsym_vaddr, std::uint64_t verneed_vaddr,
                      std::uint64_t verdef_vaddr);
  Bytes build_comment() const;
  Bytes build_abi_note() const;
  Bytes build_text() const;

  void write_symbol(ByteWriter& w, std::uint32_t name_off, std::uint8_t info,
                    std::uint16_t shndx) const;
  void write_shdr(ByteWriter& w, std::uint32_t name_off, const SectionDesc& s,
                  std::uint64_t addr) const;

  const ElfSpec& spec_;
  bool is64_;
  Endian endian_;
  StringTable dynstr_;

  // Symbol order: [null, undefined..., defined...], with the matching
  // .gnu.version index for each.
  std::vector<std::uint16_t> versym_;
  // Version index for each named verdef (parallel to spec_.version_definitions).
  std::vector<std::uint16_t> verdef_index_;
  // Version index for each (file, version) vernaux entry.
  std::map<std::pair<std::string, std::string>, std::uint16_t> vernaux_index_;
  std::vector<ElfSpec::VersionNeed> needs_;
};

void Layout::collect_strings() {
  for (const auto& n : spec_.needed) dynstr_.add(n);
  if (!spec_.soname.empty()) dynstr_.add(spec_.soname);
  if (!spec_.rpath.empty()) dynstr_.add(support::join(spec_.rpath, ":"));
  for (const auto& s : spec_.undefined_symbols) {
    dynstr_.add(s.name);
    if (!s.version.empty()) {
      dynstr_.add(s.version);
      dynstr_.add(s.from_lib);
    }
  }
  for (const auto& s : spec_.defined_symbols) {
    dynstr_.add(s.name);
    if (!s.version.empty()) dynstr_.add(s.version);
  }
  for (const auto& v : spec_.version_definitions) dynstr_.add(v);
}

void Layout::assign_version_indices() {
  // Index 1 is the base definition; named definitions and vernaux entries
  // share the namespace starting at 2 (matching GNU ld's allocation).
  std::uint16_t next = 2;
  verdef_index_.clear();
  for (std::size_t i = 0; i < spec_.version_definitions.size(); ++i) {
    verdef_index_.push_back(next++);
  }
  needs_ = spec_.version_needs();
  for (const auto& need : needs_) {
    for (const auto& version : need.versions) {
      vernaux_index_[{need.file, version}] = next++;
    }
  }

  versym_.clear();
  versym_.push_back(kVerNdxLocal);  // the null symbol
  for (const auto& sym : spec_.undefined_symbols) {
    if (sym.version.empty()) {
      versym_.push_back(kVerNdxGlobal);
    } else {
      versym_.push_back(vernaux_index_.at({sym.from_lib, sym.version}));
    }
  }
  for (const auto& sym : spec_.defined_symbols) {
    if (sym.version.empty()) {
      versym_.push_back(kVerNdxGlobal);
    } else {
      const auto it = std::find(spec_.version_definitions.begin(),
                                spec_.version_definitions.end(), sym.version);
      assert(it != spec_.version_definitions.end() &&
             "defined symbol references unknown version definition");
      versym_.push_back(verdef_index_[static_cast<std::size_t>(
          it - spec_.version_definitions.begin())]);
    }
  }
}

void Layout::write_symbol(ByteWriter& w, std::uint32_t name_off,
                          std::uint8_t info, std::uint16_t shndx) const {
  if (is64_) {
    w.u32(name_off);
    w.u8(info);
    w.u8(0);  // st_other
    w.u16(shndx);
    w.u64(0);  // st_value
    w.u64(0);  // st_size
  } else {
    w.u32(name_off);
    w.u32(0);  // st_value
    w.u32(0);  // st_size
    w.u8(info);
    w.u8(0);
    w.u16(shndx);
  }
}

Bytes Layout::build_dynsym() {
  ByteWriter w(endian_);
  write_symbol(w, 0, 0, kShnUndef);  // null symbol
  const std::uint8_t info =
      static_cast<std::uint8_t>((kStbGlobal << 4) | kSttFunc);
  for (const auto& sym : spec_.undefined_symbols) {
    write_symbol(w, dynstr_.add(sym.name), info, kShnUndef);
  }
  for (const auto& sym : spec_.defined_symbols) {
    // shndx 1 stands for "defined in this object"; the precise section is
    // irrelevant to every consumer we model.
    write_symbol(w, dynstr_.add(sym.name), info, 1);
  }
  return w.take();
}

Bytes Layout::build_versym() {
  ByteWriter w(endian_);
  for (const std::uint16_t v : versym_) w.u16(v);
  return w.take();
}

Bytes Layout::build_verneed() {
  ByteWriter w(endian_);
  for (std::size_t i = 0; i < needs_.size(); ++i) {
    const auto& need = needs_[i];
    const std::size_t aux_bytes = need.versions.size() * 16;
    const bool last = i + 1 == needs_.size();
    w.u16(kVerNeedCurrent);                                   // vn_version
    w.u16(static_cast<std::uint16_t>(need.versions.size()));  // vn_cnt
    w.u32(dynstr_.add(need.file));                            // vn_file
    w.u32(16);                                                // vn_aux
    w.u32(last ? 0 : static_cast<std::uint32_t>(16 + aux_bytes));  // vn_next
    for (std::size_t j = 0; j < need.versions.size(); ++j) {
      const auto& version = need.versions[j];
      const bool last_aux = j + 1 == need.versions.size();
      w.u32(elf_hash(version));                               // vna_hash
      w.u16(0);                                               // vna_flags
      w.u16(vernaux_index_.at({need.file, version}));         // vna_other
      w.u32(dynstr_.add(version));                            // vna_name
      w.u32(last_aux ? 0 : 16);                               // vna_next
    }
  }
  return w.take();
}

Bytes Layout::build_verdef() {
  if (spec_.version_definitions.empty()) return {};
  ByteWriter w(endian_);
  // Base definition: names the object itself (soname), flags VER_FLG_BASE.
  const std::string base_name =
      !spec_.soname.empty() ? spec_.soname : std::string("a.out");
  const std::size_t total = spec_.version_definitions.size() + 1;
  for (std::size_t i = 0; i < total; ++i) {
    const bool is_base = i == 0;
    const std::string& name =
        is_base ? base_name : spec_.version_definitions[i - 1];
    const bool last = i + 1 == total;
    w.u16(kVerDefCurrent);                         // vd_version
    w.u16(is_base ? kVerFlgBase : std::uint16_t{0});  // vd_flags
    w.u16(is_base ? kVerNdxGlobal : verdef_index_[i - 1]);  // vd_ndx
    w.u16(1);                                      // vd_cnt (one aux: the name)
    w.u32(elf_hash(name));                         // vd_hash
    w.u32(20);                                     // vd_aux
    w.u32(last ? 0 : 28);                          // vd_next (20 + one 8-byte aux)
    w.u32(dynstr_.add(name));                      // vda_name
    w.u32(0);                                      // vda_next
  }
  return w.take();
}

Bytes Layout::build_dynamic(std::uint64_t dynstr_vaddr, std::uint64_t dynstr_size,
                            std::uint64_t dynsym_vaddr, std::uint64_t verneed_vaddr,
                            std::uint64_t verdef_vaddr) {
  ByteWriter w(endian_);
  const auto entry = [&](std::int64_t tag, std::uint64_t value) {
    if (is64_) {
      w.u64(static_cast<std::uint64_t>(tag));
      w.u64(value);
    } else {
      w.u32(static_cast<std::uint32_t>(tag));
      w.u32(static_cast<std::uint32_t>(value));
    }
  };
  for (const auto& needed : spec_.needed) entry(kDtNeeded, dynstr_.add(needed));
  if (!spec_.soname.empty()) entry(kDtSoname, dynstr_.add(spec_.soname));
  if (!spec_.rpath.empty()) {
    entry(kDtRpath, dynstr_.add(support::join(spec_.rpath, ":")));
  }
  entry(kDtStrtab, dynstr_vaddr);
  entry(kDtStrsz, dynstr_size);
  entry(kDtSymtab, dynsym_vaddr);
  if (!needs_.empty()) {
    entry(kDtVerneed, verneed_vaddr);
    entry(kDtVerneednum, needs_.size());
  }
  if (!spec_.version_definitions.empty()) {
    entry(kDtVerdef, verdef_vaddr);
    entry(kDtVerdefnum, spec_.version_definitions.size() + 1);
  }
  entry(kDtNull, 0);
  return w.take();
}

Bytes Layout::build_comment() const {
  ByteWriter w(endian_);
  for (const auto& comment : spec_.comments) w.cstr(comment);
  return w.take();
}

Bytes Layout::build_abi_note() const {
  if (!spec_.abi) return {};
  support::Json desc;
  desc.set("compiler_family", spec_.abi->compiler_family);
  desc.set("compiler_version", spec_.abi->compiler_version);
  if (!spec_.abi->mpi_impl.empty()) {
    desc.set("mpi_impl", spec_.abi->mpi_impl);
    desc.set("mpi_version", spec_.abi->mpi_version);
  }
  desc.set("abi_fingerprint", static_cast<std::int64_t>(spec_.abi->abi_fingerprint));
  desc.set("fp_model", static_cast<std::int64_t>(spec_.abi->fp_model));
  const std::string body = desc.dump();

  ByteWriter w(endian_);
  static constexpr std::string_view kName = "FEAM";
  w.u32(static_cast<std::uint32_t>(kName.size() + 1));  // namesz
  w.u32(static_cast<std::uint32_t>(body.size() + 1));   // descsz
  w.u32(1);                                             // type
  w.cstr(kName);
  while (w.size() % 4 != 0) w.u8(0);
  w.cstr(body);
  while (w.size() % 4 != 0) w.u8(0);
  return w.take();
}

Bytes Layout::build_text() const {
  Bytes text(spec_.text_size);
  support::Rng rng(spec_.content_seed);
  // Fill in u64 strides; the tail is handled byte-wise.
  std::size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      text[i + static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  for (std::uint64_t v = rng.next_u64(); i < text.size(); ++i, v >>= 8) {
    text[i] = static_cast<std::uint8_t>(v);
  }
  return text;
}

void Layout::write_shdr(ByteWriter& w, std::uint32_t name_off,
                        const SectionDesc& s, std::uint64_t addr) const {
  if (is64_) {
    w.u32(name_off);
    w.u32(s.type);
    w.u64(0);                     // sh_flags
    w.u64(addr);                  // sh_addr
    w.u64(s.offset);              // sh_offset
    w.u64(s.body.size());         // sh_size
    w.u32(s.link);
    w.u32(s.info);
    w.u64(1);                     // sh_addralign
    w.u64(s.entsize);
  } else {
    w.u32(name_off);
    w.u32(s.type);
    w.u32(0);
    w.u32(static_cast<std::uint32_t>(addr));
    w.u32(static_cast<std::uint32_t>(s.offset));
    w.u32(static_cast<std::uint32_t>(s.body.size()));
    w.u32(s.link);
    w.u32(s.info);
    w.u32(1);
    w.u32(static_cast<std::uint32_t>(s.entsize));
  }
}

Bytes Layout::build() {
  const bool dynamic_link = !spec_.static_link;
  if (dynamic_link) {
    collect_strings();
    assign_version_indices();
  }

  // Build section bodies that do not depend on layout. The .dynamic body
  // depends on final vaddrs, so it is rebuilt after layout with identical
  // size (entry count is layout-independent).
  Bytes dynsym = dynamic_link ? build_dynsym() : Bytes{};
  Bytes versym = dynamic_link ? build_versym() : Bytes{};
  Bytes verneed = dynamic_link ? build_verneed() : Bytes{};
  Bytes verdef = dynamic_link ? build_verdef() : Bytes{};
  Bytes dynamic_placeholder = dynamic_link ? build_dynamic(0, 0, 0, 0, 0) : Bytes{};
  Bytes comment = build_comment();
  Bytes abi_note = build_abi_note();
  Bytes text = build_text();
  // collect_strings() + the builders above have interned every string, so
  // dynstr is final now.
  Bytes dynstr(dynstr_.data().begin(), dynstr_.data().end());

  // Section order; index 0 is the null section.
  std::vector<SectionDesc> sections;
  sections.push_back({"", kShtNull, {}, 0, 0, 0, 0});
  const auto add = [&](std::string name, std::uint32_t type, Bytes body,
                       std::uint32_t link = 0, std::uint32_t info = 0,
                       std::uint64_t entsize = 0) -> std::size_t {
    sections.push_back({std::move(name), type, std::move(body), link, info,
                        entsize, 0});
    return sections.size() - 1;
  };

  std::size_t idx_dynstr = 0, idx_dynsym = 0, idx_dynamic = 0;
  std::size_t idx_versym = 0, idx_verneed = 0, idx_verdef = 0;
  if (dynamic_link) {
    idx_dynstr = add(".dynstr", kShtStrtab, std::move(dynstr));
    idx_dynsym = add(".dynsym", kShtDynsym, std::move(dynsym),
                     static_cast<std::uint32_t>(idx_dynstr), 1, symentsize());
    if (!versym_.empty()) {
      idx_versym = add(".gnu.version", kShtGnuVersym, std::move(versym),
                       static_cast<std::uint32_t>(idx_dynsym), 0, 2);
    }
    if (!needs_.empty()) {
      idx_verneed = add(".gnu.version_r", kShtGnuVerneed, std::move(verneed),
                        static_cast<std::uint32_t>(idx_dynstr),
                        static_cast<std::uint32_t>(needs_.size()));
    }
    if (!verdef.empty()) {
      idx_verdef = add(".gnu.version_d", kShtGnuVerdef, std::move(verdef),
                       static_cast<std::uint32_t>(idx_dynstr),
                       static_cast<std::uint32_t>(
                           spec_.version_definitions.size() + 1));
    }
    idx_dynamic = add(".dynamic", kShtDynamic, std::move(dynamic_placeholder),
                      static_cast<std::uint32_t>(idx_dynstr), 0, dynentsize());
  }
  if (!comment.empty()) add(".comment", kShtProgbits, std::move(comment));
  if (!abi_note.empty()) add(".note.feam.abi", kShtNote, std::move(abi_note));
  add(".text", kShtProgbits, std::move(text));
  // .shstrtab body is produced below once all names are known.
  StringTable shstrtab;
  for (const auto& s : sections) shstrtab.add(s.name);
  const std::uint32_t shstrtab_name = shstrtab.add(".shstrtab");
  Bytes shstr_body(shstrtab.data().begin(), shstrtab.data().end());
  const auto idx_shstrtab = add(".shstrtab", kShtStrtab, std::move(shstr_body));
  (void)shstrtab_name;

  // ---- Layout: header, phdrs, section bodies, shdr table.
  const std::size_t phnum = dynamic_link ? 2 : 1;
  std::uint64_t cursor = ehsize() + phnum * phentsize();
  for (auto& s : sections) {
    if (s.type == kShtNull) continue;
    // Keep 4-byte alignment so u32 fields inside bodies stay aligned.
    cursor = (cursor + 3) & ~std::uint64_t{3};
    s.offset = cursor;
    cursor += s.body.size();
  }
  const std::uint64_t shoff = (cursor + 7) & ~std::uint64_t{7};
  const std::uint64_t file_end = shoff + sections.size() * shentsize();

  // Rebuild .dynamic with real vaddrs (vaddr == file offset here).
  if (dynamic_link) {
    const auto vaddr_of = [&](std::size_t idx) -> std::uint64_t {
      return idx == 0 ? 0 : sections[idx].offset;
    };
    Bytes dyn = build_dynamic(vaddr_of(idx_dynstr), sections[idx_dynstr].body.size(),
                              vaddr_of(idx_dynsym), vaddr_of(idx_verneed),
                              vaddr_of(idx_verdef));
    assert(dyn.size() == sections[idx_dynamic].body.size());
    sections[idx_dynamic].body = std::move(dyn);
    (void)idx_versym;
  }

  // ---- Serialize.
  ByteWriter w(endian_);
  // e_ident
  for (const std::uint8_t m : kMagic) w.u8(m);
  w.u8(is64_ ? kClass64 : kClass32);
  w.u8(endian_ == Endian::kLittle ? kData2Lsb : kData2Msb);
  w.u8(kEvCurrent);
  w.u8(0);  // ELFOSABI_NONE (System V)
  w.zeros(kEiNident - 8);
  w.u16(spec_.kind == FileKind::kExecutable ? kEtExec : kEtDyn);
  w.u16(machine());
  w.u32(kEvCurrent);
  const auto addr = [&](std::uint64_t v) { is64_ ? w.u64(v) : w.u32(static_cast<std::uint32_t>(v)); };
  addr(sections.back().offset);  // e_entry: arbitrary nonzero (the .shstrtab offset)
  addr(ehsize());                // e_phoff
  addr(shoff);                   // e_shoff
  w.u32(0);                      // e_flags
  w.u16(static_cast<std::uint16_t>(ehsize()));
  w.u16(static_cast<std::uint16_t>(phentsize()));
  w.u16(static_cast<std::uint16_t>(phnum));
  w.u16(static_cast<std::uint16_t>(shentsize()));
  w.u16(static_cast<std::uint16_t>(sections.size()));
  w.u16(static_cast<std::uint16_t>(idx_shstrtab));
  assert(w.size() == ehsize());

  // Program headers. One LOAD covering the file, one DYNAMIC.
  const auto phdr = [&](std::uint32_t type, std::uint64_t offset,
                        std::uint64_t size) {
    if (is64_) {
      w.u32(type);
      w.u32(7);  // p_flags RWX
      w.u64(offset);
      w.u64(offset);  // p_vaddr == file offset
      w.u64(offset);  // p_paddr
      w.u64(size);
      w.u64(size);
      w.u64(0x1000);
    } else {
      w.u32(type);
      w.u32(static_cast<std::uint32_t>(offset));
      w.u32(static_cast<std::uint32_t>(offset));
      w.u32(static_cast<std::uint32_t>(offset));
      w.u32(static_cast<std::uint32_t>(size));
      w.u32(static_cast<std::uint32_t>(size));
      w.u32(7);
      w.u32(0x1000);
    }
  };
  phdr(kPtLoad, 0, file_end);
  if (dynamic_link) {
    phdr(kPtDynamic, sections[idx_dynamic].offset,
         sections[idx_dynamic].body.size());
  }

  for (const auto& s : sections) {
    if (s.type == kShtNull) continue;
    w.pad_to(s.offset);
    w.bytes(s.body);
  }

  w.pad_to(shoff);
  for (const auto& s : sections) {
    write_shdr(w, shstrtab.add(s.name), s, s.type == kShtNull ? 0 : s.offset);
  }
  assert(w.size() == file_end);
  return w.take();
}

}  // namespace

support::Bytes build_image(const ElfSpec& spec) { return Layout(spec).build(); }

}  // namespace feam::elf
