// Serializes an ElfSpec into a structurally valid ELF image.
//
// The layout is the one a simple static linker would produce:
//
//   ELF header
//   program header table        (PT_LOAD, PT_DYNAMIC)
//   .dynstr                     (all dynamic strings)
//   .dynsym                     (null + undefined + defined symbols)
//   .gnu.version                (one Elf_Half per dynsym entry)
//   .gnu.version_r              (verneed, grouped by library file)
//   .gnu.version_d              (verdef: base + named definitions)
//   .dynamic                    (NEEDED/SONAME/RPATH/STRTAB/... , NULL)
//   .comment                    (NUL-joined toolchain strings)
//   .note.feam.abi              (simulation ABI note, see spec.hpp)
//   .text                       (deterministic filler payload)
//   .shstrtab
//   section header table
//
// Virtual addresses equal file offsets (single RWX LOAD segment at 0),
// which keeps the parser honest: it must translate DT_* vaddrs through the
// program headers like a real loader rather than assume section offsets.
#pragma once

#include "elf/spec.hpp"
#include "support/byte_io.hpp"

namespace feam::elf {

// Builds the image; never fails for a well-formed spec (asserts on
// internal layout violations in debug builds).
support::Bytes build_image(const ElfSpec& spec);

}  // namespace feam::elf
