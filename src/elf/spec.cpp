#include "elf/spec.hpp"

#include <algorithm>

namespace feam::elf {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kX86: return "i386";
    case Isa::kX86_64: return "x86-64";
    case Isa::kPpc: return "powerpc";
    case Isa::kPpc64: return "powerpc64";
    case Isa::kAarch64: return "aarch64";
  }
  return "unknown";
}

int isa_bits(Isa isa) {
  switch (isa) {
    case Isa::kX86:
    case Isa::kPpc:
      return 32;
    case Isa::kX86_64:
    case Isa::kPpc64:
    case Isa::kAarch64:
      return 64;
  }
  return 0;
}

support::Endian isa_endian(Isa isa) {
  switch (isa) {
    case Isa::kPpc:
    case Isa::kPpc64:
      return support::Endian::kBig;
    case Isa::kX86:
    case Isa::kX86_64:
    case Isa::kAarch64:
      return support::Endian::kLittle;
  }
  return support::Endian::kLittle;
}

bool isa_executable_on(Isa binary_isa, Isa host_isa) {
  if (binary_isa == host_isa) return true;
  // 64-bit hosts of the same family run 32-bit binaries (multilib).
  if (binary_isa == Isa::kX86 && host_isa == Isa::kX86_64) return true;
  if (binary_isa == Isa::kPpc && host_isa == Isa::kPpc64) return true;
  return false;
}

std::vector<ElfSpec::VersionNeed> ElfSpec::version_needs() const {
  std::vector<VersionNeed> needs;
  for (const UndefinedSymbol& sym : undefined_symbols) {
    if (sym.version.empty()) continue;
    auto it = std::find_if(needs.begin(), needs.end(), [&](const VersionNeed& n) {
      return n.file == sym.from_lib;
    });
    if (it == needs.end()) {
      needs.push_back({sym.from_lib, {}});
      it = std::prev(needs.end());
    }
    if (std::find(it->versions.begin(), it->versions.end(), sym.version) ==
        it->versions.end()) {
      it->versions.push_back(sym.version);
    }
  }
  return needs;
}

}  // namespace feam::elf
