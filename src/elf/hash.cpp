#include "elf/hash.hpp"

namespace feam::elf {

std::uint32_t elf_hash(std::string_view name) {
  std::uint32_t h = 0;
  for (const char c : name) {
    h = (h << 4) + static_cast<unsigned char>(c);
    const std::uint32_t g = h & 0xf0000000u;
    if (g != 0) h ^= g >> 24;
    h &= ~g;
  }
  return h;
}

}  // namespace feam::elf
