// ELF format constants, restricted to what the FEAM toolchain emits and
// parses. Values follow the System V gABI and the GNU extensions for
// symbol versioning (as consumed by `objdump -p` / `readelf`).
#pragma once

#include <cstdint>

namespace feam::elf {

// e_ident layout.
inline constexpr std::size_t kEiMag0 = 0;
inline constexpr std::size_t kEiClass = 4;
inline constexpr std::size_t kEiData = 5;
inline constexpr std::size_t kEiVersion = 6;
inline constexpr std::size_t kEiOsabi = 7;
inline constexpr std::size_t kEiNident = 16;

inline constexpr std::uint8_t kMagic[4] = {0x7f, 'E', 'L', 'F'};

inline constexpr std::uint8_t kClass32 = 1;  // ELFCLASS32
inline constexpr std::uint8_t kClass64 = 2;  // ELFCLASS64

inline constexpr std::uint8_t kData2Lsb = 1;  // little-endian
inline constexpr std::uint8_t kData2Msb = 2;  // big-endian

inline constexpr std::uint8_t kEvCurrent = 1;

// e_type.
inline constexpr std::uint16_t kEtExec = 2;  // ET_EXEC
inline constexpr std::uint16_t kEtDyn = 3;   // ET_DYN (shared object / PIE)

// e_machine values for the ISAs modeled in the evaluation testbed.
inline constexpr std::uint16_t kEm386 = 3;       // EM_386 (x86, 32-bit)
inline constexpr std::uint16_t kEmPpc = 20;      // EM_PPC
inline constexpr std::uint16_t kEmPpc64 = 21;    // EM_PPC64
inline constexpr std::uint16_t kEmX86_64 = 62;   // EM_X86_64
inline constexpr std::uint16_t kEmAarch64 = 183; // EM_AARCH64 (negative tests)

// Section header types.
inline constexpr std::uint32_t kShtNull = 0;
inline constexpr std::uint32_t kShtProgbits = 1;
inline constexpr std::uint32_t kShtStrtab = 3;
inline constexpr std::uint32_t kShtNote = 7;
inline constexpr std::uint32_t kShtDynamic = 6;
inline constexpr std::uint32_t kShtDynsym = 11;
inline constexpr std::uint32_t kShtGnuVerdef = 0x6ffffffd;   // SHT_GNU_verdef
inline constexpr std::uint32_t kShtGnuVerneed = 0x6ffffffe;  // SHT_GNU_verneed
inline constexpr std::uint32_t kShtGnuVersym = 0x6fffffff;   // SHT_GNU_versym

// Program header types.
inline constexpr std::uint32_t kPtLoad = 1;
inline constexpr std::uint32_t kPtDynamic = 2;

// Dynamic tags.
inline constexpr std::int64_t kDtNull = 0;
inline constexpr std::int64_t kDtNeeded = 1;
inline constexpr std::int64_t kDtStrtab = 5;
inline constexpr std::int64_t kDtSymtab = 6;
inline constexpr std::int64_t kDtStrsz = 10;
inline constexpr std::int64_t kDtSoname = 14;
inline constexpr std::int64_t kDtRpath = 15;
inline constexpr std::int64_t kDtRunpath = 29;
inline constexpr std::int64_t kDtVerdef = 0x6ffffffc;
inline constexpr std::int64_t kDtVerdefnum = 0x6ffffffd;
inline constexpr std::int64_t kDtVerneed = 0x6ffffffe;
inline constexpr std::int64_t kDtVerneednum = 0x6fffffff;

// Symbol binding / type (st_info = bind << 4 | type).
inline constexpr std::uint8_t kStbGlobal = 1;
inline constexpr std::uint8_t kSttFunc = 2;
inline constexpr std::uint8_t kSttObject = 1;
inline constexpr std::uint16_t kShnUndef = 0;

// .gnu.version special indices.
inline constexpr std::uint16_t kVerNdxLocal = 0;
inline constexpr std::uint16_t kVerNdxGlobal = 1;

// Version revision used in verneed/verdef records.
inline constexpr std::uint16_t kVerNeedCurrent = 1;
inline constexpr std::uint16_t kVerDefCurrent = 1;
// vd_flags for the "base" verdef entry that names the file itself.
inline constexpr std::uint16_t kVerFlgBase = 1;

}  // namespace feam::elf
