// The System V `elf_hash` function, used to fill the vna_hash / vd_hash
// fields of GNU version records (the dynamic linker uses it to match
// version names without string comparison on the fast path).
#pragma once

#include <cstdint>
#include <string_view>

namespace feam::elf {

std::uint32_t elf_hash(std::string_view name);

}  // namespace feam::elf
