#include "binutils/uname.hpp"

namespace feam::binutils {

namespace {
const char* uname_arch(elf::Isa isa) {
  switch (isa) {
    case elf::Isa::kX86: return "i686";
    case elf::Isa::kX86_64: return "x86_64";
    case elf::Isa::kPpc: return "ppc";
    case elf::Isa::kPpc64: return "ppc64";
    case elf::Isa::kAarch64: return "aarch64";
  }
  return "unknown";
}
}  // namespace

std::string uname_p(const site::Site& host) { return uname_arch(host.isa); }

std::string uname_a(const site::Site& host) {
  const std::string arch = uname_arch(host.isa);
  return "Linux " + host.name + " " + host.kernel_version +
         " #1 SMP x " + arch + " " + arch + " " + arch + " GNU/Linux";
}

}  // namespace feam::binutils
