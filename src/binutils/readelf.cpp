#include "binutils/readelf.hpp"

#include <cstdio>

#include "elf/file.hpp"
#include "support/strings.hpp"

namespace feam::binutils {

support::Result<std::string> readelf_p_comment(const site::Vfs& vfs,
                                               std::string_view path) {
  using R = support::Result<std::string>;
  const support::Bytes* data = vfs.read(path);
  if (data == nullptr) {
    return R::failure(support::ErrorCode::kFileNotFound,
                      "readelf: Error: '" + std::string(path) +
                          "': No such file");
  }
  const auto parsed = elf::ElfFile::parse(*data);
  if (!parsed.ok()) {
    return R::failure(parsed.code(),
                      "readelf: Error: Not an ELF file - it has the wrong "
                      "magic bytes at the start");
  }
  const auto& comments = parsed.value().comments();
  if (comments.empty()) {
    return R::failure("readelf: Warning: Section '.comment' was not dumped "
                      "because it does not exist!");
  }
  std::string out = "\nString dump of section '.comment':\n";
  std::size_t offset = 0;
  for (const auto& comment : comments) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "  [%6zx]  ", offset);
    out += buf;
    out += comment;
    out += '\n';
    offset += comment.size() + 1;
  }
  return out;
}

std::vector<std::string> parse_comment_dump(std::string_view text) {
  std::vector<std::string> out;
  for (const auto& line : support::split(text, '\n')) {
    const auto stripped = support::trim(line);
    if (!support::starts_with(stripped, "[")) continue;
    const auto close = stripped.find(']');
    if (close == std::string_view::npos) continue;
    const auto content = support::trim(stripped.substr(close + 1));
    if (!content.empty()) out.emplace_back(content);
  }
  return out;
}

}  // namespace feam::binutils
