// Memoization for the dynamic-loader search machinery (opt-in).
//
// The evaluation matrix replays the same library lookups thousands of
// times: every execution attempt, usability test, and resolution pass
// re-walks the candidate directories for libc/libm/libmpi…, and the
// source phase runs `ldd` on the same binary once per gathered library.
// System library directories never change during a run, so both lookups
// memoize — with exact invalidation, not heuristics:
//
//   * search memo — keyed (site, soname, bits, directory list). An entry
//     records the Vfs::file_version of every candidate path the original
//     walk inspected (including absent ones); it is served only while all
//     of them are unchanged. Entries whose candidates all sit outside the
//     scratch subtrees (/home, /tmp) carry a revalidation stamp — the
//     Vfs::system_generation at the last full stamp walk — so the common
//     hit (nothing installed since) costs one atomic compare instead of a
//     per-directory walk. Any write, remove, or symlink retarget that
//     could alter the outcome still misses, and a stamp mismatch can
//     never produce a wrong path — versions are globally unique per write.
//   * ldd memo — keyed (site, path, verbose, environment fingerprint):
//     transcripts for distinct shell states coexist. Validated against
//     the binary's write stamp plus the system half of the VFS; when the
//     shell's LD_LIBRARY_PATH reached into scratch directories at record
//     time, validation falls back to the whole-VFS generation (exact,
//     strictly conservative).
//   * parse memo — keyed (site, path, Vfs::file_version): the parsed ELF
//     view of an unchanged file. The loader re-parses the same root
//     binary, resolved libraries, and version providers on every
//     execution attempt; the write stamp uniquely identifies content, so
//     the parse is a pure function of the key.
//
// All three memos sit on support::StripedMap: hits are lock-free (a
// chain walk plus relaxed counter bumps), writers stripe across shards,
// and published entries never move — parsed_elf's returned pointers stay
// valid for the cache's lifetime. Each 64-bit map key is a fingerprint
// of the logical key; every lookup re-verifies the entry's stored
// identity, so fingerprint collisions degrade to misses, never wrong
// answers.
//
// Passing nullptr wherever a ResolverCache* is accepted reproduces the
// uncached behaviour exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "elf/file.hpp"
#include "obs/metrics.hpp"
#include "site/site.hpp"
#include "support/result.hpp"
#include "support/striped_map.hpp"

namespace feam::binutils {

class ResolverCache {
 public:
  ResolverCache();
  // Releases this instance's share of the cache.bytes{cache=resolver.*}
  // footprint gauges (entries are never evicted while the cache lives).
  ~ResolverCache();

  // Memoized search_library result, or nullopt when absent/stale.
  // `dirs` must be the fully assembled search order (extra + rpath +
  // LD_LIBRARY_PATH + defaults) — it is part of the key.
  std::optional<std::optional<std::string>> search(
      const site::Site& host, std::string_view soname, int bits,
      const std::vector<std::string>& dirs);
  void store_search(const site::Site& host, std::string_view soname, int bits,
                    const std::vector<std::string>& dirs,
                    std::optional<std::string> result);

  // Memoized ldd text, or nullopt when absent/stale.
  std::optional<support::Result<std::string>> ldd_text(const site::Site& host,
                                                       std::string_view path,
                                                       bool verbose);
  void store_ldd(const site::Site& host, std::string_view path, bool verbose,
                 const support::Result<std::string>& text);

  // Parsed view of the ELF image at `path` whose bytes are `data` (as
  // read from `host`'s VFS), memoized on the file's write stamp. Returns
  // nullptr when the image is not valid ELF. The pointer stays valid for
  // the cache's lifetime: entries are never evicted — a rewritten file
  // gets a distinct entry under its new write stamp. The returned
  // ElfFile's string views do NOT borrow `data`: the entry owns an arena
  // copy of the bytes and the cached parse borrows that arena, so the
  // view survives the VFS node being rewritten or removed.
  const elf::ElfFile* parsed_elf(const site::Site& host, std::string_view path,
                                 const support::Bytes& data);

  // Combined totals across the three memos (legacy view).
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  // Per-memo splits: the search walk, the ldd transcript memo, and the
  // parsed-ELF memo hit very differently (a cold parse costs ~1000x a
  // cold search), so folding them into one number hides exactly the
  // attribution a hit-rate investigation needs.
  std::uint64_t search_hits() const {
    return search_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t search_misses() const {
    return search_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t ldd_hits() const {
    return ldd_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t ldd_misses() const {
    return ldd_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t parse_hits() const {
    return parse_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t parse_misses() const {
    return parse_misses_.load(std::memory_order_relaxed);
  }

 private:
  struct SearchEntry {
    // Identity, re-verified on lookup (the map key is a fingerprint).
    std::uint64_t lease_id = 0;
    int bits = 0;
    std::string soname;
    std::vector<std::string> dirs;
    // file_version of join(dir, soname) per search dir, in order; nullopt
    // where no regular file existed.
    std::vector<std::optional<std::uint64_t>> candidate_versions;
    std::optional<std::string> result;
    // True when any candidate path sits under a scratch subtree — those
    // entries never take the system-generation fast path (scratch writes
    // don't bump it) and always pay the full stamp walk.
    bool scratch_candidates = false;
    // Vfs::system_generation as of the last full stamp validation; while
    // it still matches, no non-scratch path has changed, so the stamps
    // are provably still valid and the walk can be skipped. Mutable
    // atomic: revalidation updates it in place through the const entry.
    mutable std::atomic<std::uint64_t> checked_system_generation{0};
    obs::SeriesHandle site_hits;  // cache.hits{cache=resolver.search,...}

    // Atomics aren't movable; moves happen only pre-publication.
    SearchEntry(SearchEntry&& other) noexcept
        : lease_id(other.lease_id),
          bits(other.bits),
          soname(std::move(other.soname)),
          dirs(std::move(other.dirs)),
          candidate_versions(std::move(other.candidate_versions)),
          result(std::move(other.result)),
          scratch_candidates(other.scratch_candidates),
          checked_system_generation(other.checked_system_generation.load(
              std::memory_order_relaxed)),
          site_hits(other.site_hits) {}
    SearchEntry(std::uint64_t lease, int b, std::string so,
                std::vector<std::string> ds, obs::SeriesHandle hits)
        : lease_id(lease),
          bits(b),
          soname(std::move(so)),
          dirs(std::move(ds)),
          site_hits(hits) {}
  };

  struct LddEntry {
    std::uint64_t lease_id = 0;
    bool verbose = false;
    std::string path;
    std::uint64_t env_fingerprint = 0;  // part of the identity: shell state
    // Validation stamps: the binary's own write stamp plus the system
    // half of the VFS; `strict` entries (recorded while LD_LIBRARY_PATH
    // reached into scratch) validate on the whole-VFS generation instead.
    std::optional<std::uint64_t> file_version;
    std::uint64_t system_generation = 0;
    std::uint64_t vfs_generation = 0;
    bool strict = false;
    bool ok = false;
    std::string payload;  // text when ok, error message otherwise
    obs::SeriesHandle site_hits;  // cache.hits{cache=resolver.ldd,...}
  };

  struct ParseEntry {
    std::uint64_t lease_id = 0;
    std::string path;
    std::uint64_t version = 0;  // Vfs::file_version — uniquely keys content
    // `parsed` is zero-copy: its string views borrow `arena`, the entry's
    // own copy of the file bytes (never the transient VFS buffer the
    // caller handed in). Moving the entry moves the vector — the heap
    // buffer, and therefore every view into it, stays put. Empty when
    // the parse failed (nothing borrows, no reason to retain bytes).
    support::Bytes arena;
    std::optional<elf::ElfFile> parsed;  // nullopt caches a parse failure
    obs::SeriesHandle site_hits;  // cache.hits{cache=resolver.parse,...}
  };

  support::StripedMap<std::uint64_t, SearchEntry> search_;
  support::StripedMap<std::uint64_t, LddEntry> ldd_;
  support::StripedMap<std::uint64_t, ParseEntry> parsed_;
  std::atomic<std::uint64_t> search_hits_{0};
  std::atomic<std::uint64_t> search_misses_{0};
  std::atomic<std::uint64_t> ldd_hits_{0};
  std::atomic<std::uint64_t> ldd_misses_{0};
  std::atomic<std::uint64_t> parse_hits_{0};
  std::atomic<std::uint64_t> parse_misses_{0};
  // Pre-resolved metric series: these paths hit hundreds of thousands of
  // times per matrix run, so the per-hit cost must stay one relaxed
  // atomic (site-labeled hit series are pre-resolved per entry; the rare
  // miss paths take the registry lookup).
  obs::SeriesHandle search_hits_counter_{"resolver.search_hits", {}};
  obs::SeriesHandle search_misses_counter_{"resolver.search_misses", {}};
  obs::SeriesHandle ldd_hits_counter_{"resolver.ldd_hits", {}};
  obs::SeriesHandle ldd_misses_counter_{"resolver.ldd_misses", {}};
  obs::SeriesHandle ldd_bytes_saved_{"resolver.ldd_bytes_saved", {}};
  obs::SeriesHandle parse_hits_counter_{"resolver.parse_hits", {}};
  obs::SeriesHandle parse_misses_counter_{"resolver.parse_misses", {}};
  obs::SeriesHandle parse_bytes_saved_{"resolver.parse_bytes_saved", {}};
  // Estimated retained bytes per memo, mirrored into the process-wide
  // cache.bytes{cache=resolver.search|resolver.ldd|resolver.parse}
  // gauges. Shadowed (stale) entries stay retained, so footprints only
  // grow while the cache lives.
  obs::Gauge& search_bytes_gauge_;
  obs::Gauge& ldd_bytes_gauge_;
  obs::Gauge& parse_bytes_gauge_;
  std::atomic<std::uint64_t> search_footprint_{0};
  std::atomic<std::uint64_t> ldd_footprint_{0};
  std::atomic<std::uint64_t> parse_footprint_{0};
};

}  // namespace feam::binutils
