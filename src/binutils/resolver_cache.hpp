// Memoization for the dynamic-loader search machinery (opt-in).
//
// The evaluation matrix replays the same library lookups thousands of
// times: every execution attempt, usability test, and resolution pass
// re-walks the candidate directories for libc/libm/libmpi…, and the
// source phase runs `ldd` on the same binary once per gathered library.
// System library directories never change during a run, so both lookups
// memoize — with exact invalidation, not heuristics:
//
//   * search memo — keyed (site, soname, bits, directory list). An entry
//     records the Vfs::file_version of every candidate path the original
//     walk inspected (including absent ones); it is served only while all
//     of them are unchanged. Any write, remove, or symlink retarget that
//     could alter the outcome therefore misses, and a stamp mismatch can
//     never produce a wrong path — versions are globally unique per write.
//   * ldd memo — keyed (site, path, verbose) and validated against the
//     site's whole-state counters (vfs generation + environment
//     generation); any site mutation at all invalidates it.
//   * parse memo — keyed (site, path, Vfs::file_version): the parsed ELF
//     view of an unchanged file. The loader re-parses the same root
//     binary, resolved libraries, and version providers on every
//     execution attempt; the write stamp uniquely identifies content, so
//     the parse is a pure function of the key.
//
// Passing nullptr wherever a ResolverCache* is accepted reproduces the
// uncached behaviour exactly. The cache is internally synchronized;
// callers holding a site lease may share one instance across threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "elf/file.hpp"
#include "obs/metrics.hpp"
#include "site/site.hpp"
#include "support/result.hpp"

namespace feam::binutils {

class ResolverCache {
 public:
  ResolverCache();
  // Releases this instance's share of the cache.bytes{cache=resolver.*}
  // footprint gauges (entries are never evicted while the cache lives).
  ~ResolverCache();

  // Memoized search_library result, or nullopt when absent/stale.
  // `dirs` must be the fully assembled search order (extra + rpath +
  // LD_LIBRARY_PATH + defaults) — it is part of the key.
  std::optional<std::optional<std::string>> search(
      const site::Site& host, std::string_view soname, int bits,
      const std::vector<std::string>& dirs);
  void store_search(const site::Site& host, std::string_view soname, int bits,
                    const std::vector<std::string>& dirs,
                    std::optional<std::string> result);

  // Memoized ldd text, or nullopt when absent/stale.
  std::optional<support::Result<std::string>> ldd_text(const site::Site& host,
                                                       std::string_view path,
                                                       bool verbose);
  void store_ldd(const site::Site& host, std::string_view path, bool verbose,
                 const support::Result<std::string>& text);

  // Parsed view of the ELF image at `path` whose bytes are `data` (as
  // read from `host`'s VFS), memoized on the file's write stamp. Returns
  // nullptr when the image is not valid ELF. The pointer stays valid for
  // the cache's lifetime: entries are never evicted — a rewritten file
  // gets a distinct entry under its new write stamp.
  const elf::ElfFile* parsed_elf(const site::Site& host, std::string_view path,
                                 const support::Bytes& data);

  // Combined totals across the three memos (legacy view).
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  // Per-memo splits: the search walk, the ldd transcript memo, and the
  // parsed-ELF memo hit very differently (a cold parse costs ~1000x a
  // cold search), so folding them into one number hides exactly the
  // attribution a hit-rate investigation needs.
  std::uint64_t search_hits() const;
  std::uint64_t search_misses() const;
  std::uint64_t ldd_hits() const;
  std::uint64_t ldd_misses() const;
  std::uint64_t parse_hits() const;
  std::uint64_t parse_misses() const;

 private:
  struct SearchEntry {
    // file_version of join(dir, soname) per search dir, in order; nullopt
    // where no regular file existed.
    std::vector<std::optional<std::uint64_t>> candidate_versions;
    std::optional<std::string> result;
  };
  struct LddEntry {
    std::uint64_t vfs_generation = 0;
    std::uint64_t env_generation = 0;
    bool ok = false;
    std::string payload;  // text when ok, error message otherwise
  };

  // (lease_id, path, file_version) -> parsed file; nullopt caches a parse
  // failure. std::map for node stability: parsed_elf hands out pointers.
  using ParseKey = std::tuple<std::uint64_t, std::string, std::uint64_t>;

  mutable std::mutex mutex_;
  std::map<std::string, SearchEntry, std::less<>> search_;
  std::map<std::string, LddEntry, std::less<>> ldd_;
  std::map<ParseKey, std::optional<elf::ElfFile>> parsed_;
  std::uint64_t search_hits_ = 0;
  std::uint64_t search_misses_ = 0;
  std::uint64_t ldd_hits_ = 0;
  std::uint64_t ldd_misses_ = 0;
  std::uint64_t parse_hits_ = 0;
  std::uint64_t parse_misses_ = 0;
  // Pre-resolved metric series: these paths hit hundreds of thousands of
  // times per matrix run, so the per-hit cost must stay one relaxed atomic
  // (plus a per-site handle lookup under the mutex already held).
  obs::SeriesHandle search_hits_counter_{"resolver.search_hits", {}};
  obs::SeriesHandle search_misses_counter_{"resolver.search_misses", {}};
  obs::SeriesHandle ldd_hits_counter_{"resolver.ldd_hits", {}};
  obs::SeriesHandle ldd_misses_counter_{"resolver.ldd_misses", {}};
  obs::SeriesHandle ldd_bytes_saved_{"resolver.ldd_bytes_saved", {}};
  obs::SeriesHandle parse_hits_counter_{"resolver.parse_hits", {}};
  obs::SeriesHandle parse_misses_counter_{"resolver.parse_misses", {}};
  obs::SeriesHandle parse_bytes_saved_{"resolver.parse_bytes_saved", {}};
  obs::SiteSeriesCache search_labeled_hits_{"cache.hits", "resolver.search"};
  obs::SiteSeriesCache search_labeled_misses_{"cache.misses",
                                              "resolver.search"};
  obs::SiteSeriesCache ldd_labeled_hits_{"cache.hits", "resolver.ldd"};
  obs::SiteSeriesCache ldd_labeled_misses_{"cache.misses", "resolver.ldd"};
  obs::SiteSeriesCache parse_labeled_hits_{"cache.hits", "resolver.parse"};
  obs::SiteSeriesCache parse_labeled_misses_{"cache.misses", "resolver.parse"};
  // Estimated retained bytes per memo, mirrored into the process-wide
  // cache.bytes{cache=resolver.search|resolver.ldd|resolver.parse} gauges.
  obs::Gauge& search_bytes_gauge_;
  obs::Gauge& ldd_bytes_gauge_;
  obs::Gauge& parse_bytes_gauge_;
  std::uint64_t search_footprint_ = 0;
  std::uint64_t ldd_footprint_ = 0;
  std::uint64_t parse_footprint_ = 0;
};

}  // namespace feam::binutils
