// Reimplementation of `ldd [-v]`: lists the shared libraries a dynamically
// linked binary resolves to on the current site, with their locations.
//
// Faithful to the real tool's two documented failure modes that FEAM works
// around (paper Sections V.A-B):
//  * binaries for a foreign ISA are not recognized ("not a dynamic
//    executable"), because real ldd works by running the target loader;
//  * the utility can be missing on a degraded site (Site::ldd_available).
#pragma once

#include <string>

#include "binutils/resolver.hpp"
#include "site/site.hpp"
#include "support/result.hpp"

namespace feam::binutils {

// `ldd <path>` / `ldd -v <path>` rendered as text. A non-null `cache`
// memoizes the full rendered output per (site, path) while the site is
// unmutated, and the per-library searches underneath.
support::Result<std::string> ldd(const site::Site& host, std::string_view path,
                                 bool verbose = false,
                                 ResolverCache* cache = nullptr);

// Structured output scraped back from ldd text: name -> path or "not found".
struct LddEntry {
  std::string name;
  std::optional<std::string> path;
};
std::vector<LddEntry> parse_ldd_output(std::string_view text);

}  // namespace feam::binutils
