#include "binutils/objdump.hpp"

#include <cstdio>

#include "elf/constants.hpp"
#include "elf/file.hpp"
#include "elf/hash.hpp"
#include "support/strings.hpp"

namespace feam::binutils {

namespace {

// objdump's BFD target name for our modeled machines.
std::string bfd_format(const elf::ElfFile& f) {
  const char* base = nullptr;
  switch (f.isa()) {
    case elf::Isa::kX86: base = "elf32-i386"; break;
    case elf::Isa::kX86_64: base = "elf64-x86-64"; break;
    case elf::Isa::kPpc: base = "elf32-powerpc"; break;
    case elf::Isa::kPpc64: base = "elf64-powerpc"; break;
    case elf::Isa::kAarch64: base = "elf64-littleaarch64"; break;
  }
  return base;
}

std::string bfd_architecture(const elf::ElfFile& f) {
  switch (f.isa()) {
    case elf::Isa::kX86: return "i386";
    case elf::Isa::kX86_64: return "i386:x86-64";
    case elf::Isa::kPpc: return "powerpc:common";
    case elf::Isa::kPpc64: return "powerpc:common64";
    case elf::Isa::kAarch64: return "aarch64";
  }
  return "unknown";
}

}  // namespace

support::Result<std::string> objdump_p(const site::Vfs& vfs,
                                       std::string_view path) {
  using R = support::Result<std::string>;
  const support::Bytes* data = vfs.read(path);
  if (data == nullptr) {
    return R::failure(support::ErrorCode::kFileNotFound,
                      "objdump: '" + std::string(path) + "': No such file");
  }
  const auto parsed = elf::ElfFile::parse(*data);
  if (!parsed.ok()) {
    return R::failure(parsed.code(), "objdump: " + std::string(path) +
                                         ": file format not recognized");
  }
  const elf::ElfFile& f = parsed.value();

  std::string out;
  out += "\n" + std::string(path) + ":     file format " + bfd_format(f) + "\n";
  out += "architecture: " + bfd_architecture(f) + ", flags 0x00000112:\n";
  out += f.kind() == elf::FileKind::kExecutable
             ? "EXEC_P, HAS_SYMS, D_PAGED\n"
             : "DYNAMIC, HAS_SYMS, D_PAGED\n";

  if (f.is_dynamic()) {
    out += "\nDynamic Section:\n";
    for (const auto& needed : f.needed()) {
      out += "  NEEDED               ";
      out += needed;
      out += "\n";
    }
    if (f.soname()) {
      out += "  SONAME               ";
      out += *f.soname();
      out += "\n";
    }
    if (!f.rpath().empty()) {
      out += "  RPATH                " + support::join(f.rpath(), ":") + "\n";
    }
  }

  if (!f.version_definitions().empty()) {
    out += "\nVersion definitions:\n";
    // Entry 1 is the base definition (the file itself).
    char buf[96];
    const std::string base = f.soname() ? std::string(*f.soname())
                                        : site::Vfs::basename(path);
    std::snprintf(buf, sizeof buf, "1 0x01 0x%08x %s\n", elf::elf_hash(base),
                  base.c_str());
    out += buf;
    int index = 2;
    for (const auto& def : f.version_definitions()) {
      std::snprintf(buf, sizeof buf, "%d 0x00 0x%08x %.*s\n", index++,
                    elf::elf_hash(def), static_cast<int>(def.size()),
                    def.data());
      out += buf;
    }
  }

  if (!f.version_references().empty()) {
    out += "\nVersion References:\n";
    for (const auto& need : f.version_references()) {
      out += "  required from ";
      out += need.file;
      out += ":\n";
      for (const auto& version : need.versions) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "    0x%08x 0x00 02 %.*s\n",
                      elf::elf_hash(version), static_cast<int>(version.size()),
                      version.data());
        out += buf;
      }
    }
  }
  return out;
}

std::optional<ParsedObjdump> parse_objdump_output(std::string_view text) {
  ParsedObjdump out;
  enum class Section { kNone, kDynamic, kVerDef, kVerRef };
  Section section = Section::kNone;

  bool saw_format = false;
  for (const auto& raw_line : support::split(text, '\n')) {
    const std::string_view line = raw_line;
    const std::string_view stripped = support::trim(line);
    if (stripped.empty()) continue;

    if (const auto pos = line.find("file format "); pos != std::string_view::npos) {
      out.file_format = std::string(support::trim(line.substr(pos + 12)));
      out.bits = support::starts_with(out.file_format, "elf64") ? 64
                 : support::starts_with(out.file_format, "elf32") ? 32
                                                                  : 0;
      saw_format = true;
      continue;
    }
    if (support::starts_with(stripped, "architecture:")) {
      auto rest = stripped.substr(13);
      const auto comma = rest.find(',');
      out.architecture = std::string(support::trim(rest.substr(0, comma)));
      continue;
    }
    if (support::starts_with(stripped, "DYNAMIC,")) {
      out.is_shared_object = true;
      continue;
    }
    if (stripped == "Dynamic Section:") {
      section = Section::kDynamic;
      continue;
    }
    if (stripped == "Version definitions:") {
      section = Section::kVerDef;
      continue;
    }
    if (stripped == "Version References:") {
      section = Section::kVerRef;
      continue;
    }

    switch (section) {
      case Section::kDynamic: {
        const auto fields = support::split_ws(stripped);
        if (fields.size() >= 2) {
          if (fields[0] == "NEEDED") {
            out.needed.push_back(fields[1]);
          } else if (fields[0] == "SONAME") {
            out.soname = fields[1];
          } else if (fields[0] == "RPATH") {
            for (auto& dir : support::split(fields[1], ':')) {
              if (!dir.empty()) out.rpath.push_back(std::move(dir));
            }
          }
        }
        break;
      }
      case Section::kVerDef: {
        // "<idx> <flags> <hash> <name>"; flags 0x01 marks the base entry.
        const auto fields = support::split_ws(stripped);
        if (fields.size() == 4 && fields[1] != "0x01") {
          out.version_definitions.push_back(fields[3]);
        }
        break;
      }
      case Section::kVerRef: {
        if (support::starts_with(stripped, "required from ")) {
          std::string file(stripped.substr(14));
          if (!file.empty() && file.back() == ':') file.pop_back();
          out.version_references.push_back({std::move(file), {}});
        } else {
          const auto fields = support::split_ws(stripped);
          if (fields.size() == 4 && !out.version_references.empty()) {
            out.version_references.back().versions.push_back(fields[3]);
          }
        }
        break;
      }
      case Section::kNone:
        break;
    }
  }
  if (!saw_format) return std::nullopt;
  return out;
}

}  // namespace feam::binutils
