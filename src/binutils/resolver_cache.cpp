#include "binutils/resolver_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "site/vfs.hpp"

namespace feam::binutils {

namespace {

std::string search_key(const site::Site& host, std::string_view soname,
                       int bits, const std::vector<std::string>& dirs) {
  std::string key = std::to_string(host.lease_id());
  key += '|';
  key += std::to_string(bits);
  key += '|';
  key += soname;
  for (const auto& dir : dirs) {
    key += '\x1f';
    key += dir;
  }
  return key;
}

std::string ldd_key(const site::Site& host, std::string_view path,
                    bool verbose) {
  std::string key = std::to_string(host.lease_id());
  key += verbose ? "|v|" : "|-|";
  key += path;
  return key;
}

// Estimated retained bytes of one memo entry (payload strings plus the
// fixed structs); allocator-exact sizes are not the point — trend and
// ceiling gates need a stable, monotone measure of what the memo holds.
std::uint64_t elf_bytes(const elf::ElfFile& file) {
  std::uint64_t total = sizeof(elf::ElfFile);
  for (const auto& s : file.needed()) total += sizeof(std::string) + s.size();
  for (const auto& s : file.rpath()) total += sizeof(std::string) + s.size();
  for (const auto& s : file.version_definitions()) {
    total += sizeof(std::string) + s.size();
  }
  for (const auto& s : file.comments()) total += sizeof(std::string) + s.size();
  for (const auto& need : file.version_references()) {
    total += sizeof(need) + need.file.size();
    for (const auto& v : need.versions) total += sizeof(std::string) + v.size();
  }
  for (const auto& symbol : file.dynamic_symbols()) {
    total += sizeof(symbol) + symbol.name.size() + symbol.version.size();
  }
  return total;
}

}  // namespace

ResolverCache::ResolverCache()
    : search_bytes_gauge_(
          obs::gauge("cache.bytes", {.cache = "resolver.search"})),
      ldd_bytes_gauge_(obs::gauge("cache.bytes", {.cache = "resolver.ldd"})),
      parse_bytes_gauge_(
          obs::gauge("cache.bytes", {.cache = "resolver.parse"})) {}

ResolverCache::~ResolverCache() {
  search_bytes_gauge_.sub(search_footprint_);
  ldd_bytes_gauge_.sub(ldd_footprint_);
  parse_bytes_gauge_.sub(parse_footprint_);
}

std::optional<std::optional<std::string>> ResolverCache::search(
    const site::Site& host, std::string_view soname, int bits,
    const std::vector<std::string>& dirs) {
  const std::string key = search_key(host, soname, bits, dirs);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = search_.find(key);
  if (it != search_.end() && it->second.candidate_versions.size() == dirs.size()) {
    bool fresh = true;
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      const auto version =
          host.vfs.file_version(site::Vfs::join(dirs[i], soname));
      if (version != it->second.candidate_versions[i]) {
        fresh = false;
        break;
      }
    }
    if (fresh) {
      ++search_hits_;
      search_hits_counter_.add();
      search_labeled_hits_.at(host.name).add();
      return it->second.result;
    }
  }
  ++search_misses_;
  search_misses_counter_.add();
  search_labeled_misses_.at(host.name).add();
  return std::nullopt;
}

void ResolverCache::store_search(const site::Site& host,
                                 std::string_view soname, int bits,
                                 const std::vector<std::string>& dirs,
                                 std::optional<std::string> result) {
  SearchEntry entry;
  entry.candidate_versions.reserve(dirs.size());
  for (const auto& dir : dirs) {
    entry.candidate_versions.push_back(
        host.vfs.file_version(site::Vfs::join(dir, soname)));
  }
  entry.result = std::move(result);
  std::string key = search_key(host, soname, bits, dirs);
  const std::uint64_t entry_bytes =
      sizeof(SearchEntry) + key.size() +
      entry.candidate_versions.size() * sizeof(std::optional<std::uint64_t>) +
      (entry.result ? entry.result->size() : 0);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = search_.find(key);
  if (it != search_.end()) {
    const std::uint64_t old_bytes =
        sizeof(SearchEntry) + key.size() +
        it->second.candidate_versions.size() *
            sizeof(std::optional<std::uint64_t>) +
        (it->second.result ? it->second.result->size() : 0);
    search_footprint_ =
        search_footprint_ >= old_bytes ? search_footprint_ - old_bytes : 0;
    search_bytes_gauge_.sub(old_bytes);
    it->second = std::move(entry);
  } else {
    search_.emplace(std::move(key), std::move(entry));
  }
  search_footprint_ += entry_bytes;
  search_bytes_gauge_.add(entry_bytes);
}

std::optional<support::Result<std::string>> ResolverCache::ldd_text(
    const site::Site& host, std::string_view path, bool verbose) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ldd_.find(ldd_key(host, path, verbose));
  if (it != ldd_.end() && it->second.vfs_generation == host.vfs.generation() &&
      it->second.env_generation == host.env.generation()) {
    ++ldd_hits_;
    ldd_hits_counter_.add();
    ldd_labeled_hits_.at(host.name).add();
    ldd_bytes_saved_.add(it->second.payload.size());
    if (it->second.ok) return support::Result<std::string>(it->second.payload);
    return support::Result<std::string>::failure(it->second.payload);
  }
  ++ldd_misses_;
  ldd_misses_counter_.add();
  ldd_labeled_misses_.at(host.name).add();
  return std::nullopt;
}

void ResolverCache::store_ldd(const site::Site& host, std::string_view path,
                              bool verbose,
                              const support::Result<std::string>& text) {
  LddEntry entry;
  entry.vfs_generation = host.vfs.generation();
  entry.env_generation = host.env.generation();
  entry.ok = text.ok();
  entry.payload = text.ok() ? text.value() : text.error();
  std::string key = ldd_key(host, path, verbose);
  const std::uint64_t entry_bytes =
      sizeof(LddEntry) + key.size() + entry.payload.size();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ldd_.find(key);
  if (it != ldd_.end()) {
    const std::uint64_t old_bytes =
        sizeof(LddEntry) + key.size() + it->second.payload.size();
    ldd_footprint_ = ldd_footprint_ >= old_bytes ? ldd_footprint_ - old_bytes : 0;
    ldd_bytes_gauge_.sub(old_bytes);
    it->second = std::move(entry);
  } else {
    ldd_.emplace(std::move(key), std::move(entry));
  }
  ldd_footprint_ += entry_bytes;
  ldd_bytes_gauge_.add(entry_bytes);
}

const elf::ElfFile* ResolverCache::parsed_elf(const site::Site& host,
                                              std::string_view path,
                                              const support::Bytes& data) {
  const std::uint64_t version = host.vfs.file_version(path).value_or(0);
  ParseKey key{host.lease_id(), std::string(path), version};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = parsed_.find(key);
    if (it != parsed_.end()) {
      ++parse_hits_;
      parse_hits_counter_.add();
      parse_labeled_hits_.at(host.name).add();
      parse_bytes_saved_.add(data.size());
      return it->second ? &*it->second : nullptr;
    }
  }
  // Parse outside the lock; a racing miss parses twice and the second
  // insert is dropped in favour of the first.
  auto parsed = elf::ElfFile::parse(data);
  std::optional<elf::ElfFile> value;
  if (parsed.ok()) value = std::move(parsed).take();
  std::lock_guard<std::mutex> lock(mutex_);
  ++parse_misses_;
  parse_misses_counter_.add();
  parse_labeled_misses_.at(host.name).add();
  const auto [it, inserted] = parsed_.emplace(std::move(key), std::move(value));
  if (inserted) {
    const std::uint64_t entry_bytes =
        sizeof(ParseKey) + std::get<1>(it->first).size() +
        sizeof(std::optional<elf::ElfFile>) +
        (it->second ? elf_bytes(*it->second) : 0);
    parse_footprint_ += entry_bytes;
    parse_bytes_gauge_.add(entry_bytes);
  }
  return it->second ? &*it->second : nullptr;
}

std::uint64_t ResolverCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_hits_ + ldd_hits_ + parse_hits_;
}

std::uint64_t ResolverCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_misses_ + ldd_misses_ + parse_misses_;
}

std::uint64_t ResolverCache::search_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_hits_;
}

std::uint64_t ResolverCache::search_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_misses_;
}

std::uint64_t ResolverCache::ldd_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ldd_hits_;
}

std::uint64_t ResolverCache::ldd_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ldd_misses_;
}

std::uint64_t ResolverCache::parse_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parse_hits_;
}

std::uint64_t ResolverCache::parse_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parse_misses_;
}

}  // namespace feam::binutils
