#include "binutils/resolver_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "site/vfs.hpp"
#include "support/rng.hpp"

namespace feam::binutils {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

std::uint64_t search_fingerprint(const site::Site& host,
                                 std::string_view soname, int bits,
                                 const std::vector<std::string>& dirs) {
  std::uint64_t h = support::fnv1a_mix(kFnvBasis, host.lease_id());
  h = support::fnv1a_mix(h, static_cast<std::uint64_t>(bits));
  h = support::fnv1a_mix(h, soname);
  for (const auto& dir : dirs) {
    h = support::fnv1a_mix(h, '\x1f');
    h = support::fnv1a_mix(h, dir);
  }
  return h;
}

std::uint64_t ldd_fingerprint(const site::Site& host, std::string_view path,
                              bool verbose, std::uint64_t env_fingerprint) {
  std::uint64_t h = support::fnv1a_mix(kFnvBasis, host.lease_id());
  h = support::fnv1a_mix(h, verbose ? 'v' : '-');
  h = support::fnv1a_mix(h, path);
  return support::fnv1a_mix(h, env_fingerprint);
}

std::uint64_t parse_fingerprint(const site::Site& host, std::string_view path,
                                std::uint64_t version) {
  std::uint64_t h = support::fnv1a_mix(kFnvBasis, host.lease_id());
  h = support::fnv1a_mix(h, path);
  return support::fnv1a_mix(h, version);
}

// Whether the shell's library path reaches into scratch directories —
// the case where the system-generation stamp can't see invalidating
// writes and ldd validation must fall back to the whole-VFS generation.
bool ld_library_path_touches_scratch(const site::Site& host) {
  for (const auto& dir : host.env.ld_library_path()) {
    if (site::Vfs::scratch_path(dir)) return true;
  }
  return false;
}

// Estimated retained bytes of one memo entry (payload strings plus the
// fixed structs); allocator-exact sizes are not the point — trend and
// ceiling gates need a stable, monotone measure of what the memo holds.
std::uint64_t elf_bytes(const elf::ElfFile& file) {
  // A parsed file is views-into-arena, so the string *content* is counted
  // once via the arena's size by the caller; here only the view tables.
  std::uint64_t total = sizeof(elf::ElfFile);
  total += (file.needed().size() + file.rpath().size() +
            file.version_definitions().size() + file.comments().size()) *
           sizeof(std::string_view);
  for (const auto& need : file.version_references()) {
    total += sizeof(need) + need.versions.size() * sizeof(std::string_view);
  }
  total += file.dynamic_symbols().size() * sizeof(elf::DynSymbol);
  return total;
}

std::uint64_t search_entry_bytes(const std::string& soname,
                                 const std::vector<std::string>& dirs,
                                 std::size_t candidates,
                                 const std::optional<std::string>& result) {
  std::uint64_t total = soname.size();
  for (const auto& dir : dirs) total += sizeof(std::string) + dir.size();
  total += candidates * sizeof(std::optional<std::uint64_t>);
  total += result ? result->size() : 0;
  return total;
}

}  // namespace

ResolverCache::ResolverCache()
    : search_bytes_gauge_(
          obs::gauge("cache.bytes", {.cache = "resolver.search"})),
      ldd_bytes_gauge_(obs::gauge("cache.bytes", {.cache = "resolver.ldd"})),
      parse_bytes_gauge_(
          obs::gauge("cache.bytes", {.cache = "resolver.parse"})) {}

ResolverCache::~ResolverCache() {
  search_bytes_gauge_.sub(search_footprint_.load(std::memory_order_relaxed));
  ldd_bytes_gauge_.sub(ldd_footprint_.load(std::memory_order_relaxed));
  parse_bytes_gauge_.sub(parse_footprint_.load(std::memory_order_relaxed));
}

std::optional<std::optional<std::string>> ResolverCache::search(
    const site::Site& host, std::string_view soname, int bits,
    const std::vector<std::string>& dirs) {
  const std::uint64_t key = search_fingerprint(host, soname, bits, dirs);
  const std::uint64_t lease_id = host.lease_id();
  const SearchEntry* entry = search_.find_if(key, [&](const SearchEntry& e) {
    return e.lease_id == lease_id && e.bits == bits && e.soname == soname &&
           e.dirs == dirs;
  });
  if (entry != nullptr && entry->candidate_versions.size() == dirs.size()) {
    // Read the system generation *before* walking stamps: if the stamps
    // validate afterwards, they were provably valid at this generation,
    // so recording it as "checked" can never mask a later mutation.
    const std::uint64_t system_generation = host.vfs.system_generation();
    bool fresh =
        !entry->scratch_candidates &&
        entry->checked_system_generation.load(std::memory_order_acquire) ==
            system_generation;
    if (!fresh) {
      fresh = true;
      for (std::size_t i = 0; i < dirs.size(); ++i) {
        const auto version =
            host.vfs.file_version(site::Vfs::join(dirs[i], soname));
        if (version != entry->candidate_versions[i]) {
          fresh = false;
          break;
        }
      }
      if (fresh && !entry->scratch_candidates) {
        entry->checked_system_generation.store(system_generation,
                                               std::memory_order_release);
      }
    }
    if (fresh) {
      search_hits_.fetch_add(1, std::memory_order_relaxed);
      search_hits_counter_.add();
      entry->site_hits.add();
      return entry->result;
    }
  }
  search_misses_.fetch_add(1, std::memory_order_relaxed);
  search_misses_counter_.add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.search"})
      .add();
  return std::nullopt;
}

void ResolverCache::store_search(const site::Site& host,
                                 std::string_view soname, int bits,
                                 const std::vector<std::string>& dirs,
                                 std::optional<std::string> result) {
  const std::uint64_t system_generation = host.vfs.system_generation();
  SearchEntry entry(
      host.lease_id(), bits, std::string(soname), dirs,
      obs::SeriesHandle("cache.hits",
                        {.site = host.name, .cache = "resolver.search"}));
  entry.candidate_versions.reserve(dirs.size());
  for (const auto& dir : dirs) {
    const std::string candidate = site::Vfs::join(dir, soname);
    entry.candidate_versions.push_back(host.vfs.file_version(candidate));
    if (site::Vfs::scratch_path(candidate)) entry.scratch_candidates = true;
  }
  entry.result = std::move(result);
  entry.checked_system_generation.store(system_generation,
                                        std::memory_order_relaxed);
  const std::uint64_t entry_bytes =
      sizeof(SearchEntry) +
      search_entry_bytes(entry.soname, entry.dirs,
                         entry.candidate_versions.size(), entry.result);
  // insert() shadows any stale entry for this key; the shadowed node
  // stays retained, so the footprint only grows (honest retained bytes).
  search_.insert(search_fingerprint(host, soname, bits, dirs),
                 std::move(entry));
  search_footprint_.fetch_add(entry_bytes, std::memory_order_relaxed);
  search_bytes_gauge_.add(entry_bytes);
}

std::optional<support::Result<std::string>> ResolverCache::ldd_text(
    const site::Site& host, std::string_view path, bool verbose) {
  const std::uint64_t env_fingerprint = host.env.fingerprint();
  const std::uint64_t key = ldd_fingerprint(host, path, verbose,
                                            env_fingerprint);
  const std::uint64_t lease_id = host.lease_id();
  const LddEntry* entry = ldd_.find_if(key, [&](const LddEntry& e) {
    return e.lease_id == lease_id && e.verbose == verbose &&
           e.env_fingerprint == env_fingerprint && e.path == path;
  });
  if (entry != nullptr && entry->file_version == host.vfs.file_version(path) &&
      (entry->strict
           ? entry->vfs_generation == host.vfs.generation()
           : entry->system_generation == host.vfs.system_generation())) {
    ldd_hits_.fetch_add(1, std::memory_order_relaxed);
    ldd_hits_counter_.add();
    entry->site_hits.add();
    ldd_bytes_saved_.add(entry->payload.size());
    if (entry->ok) return support::Result<std::string>(entry->payload);
    return support::Result<std::string>::failure(entry->payload);
  }
  ldd_misses_.fetch_add(1, std::memory_order_relaxed);
  ldd_misses_counter_.add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.ldd"})
      .add();
  return std::nullopt;
}

void ResolverCache::store_ldd(const site::Site& host, std::string_view path,
                              bool verbose,
                              const support::Result<std::string>& text) {
  LddEntry entry{
      host.lease_id(),
      verbose,
      std::string(path),
      host.env.fingerprint(),
      host.vfs.file_version(path),
      host.vfs.system_generation(),
      host.vfs.generation(),
      ld_library_path_touches_scratch(host),
      text.ok(),
      text.ok() ? text.value() : text.error(),
      obs::SeriesHandle("cache.hits",
                        {.site = host.name, .cache = "resolver.ldd"})};
  const std::uint64_t entry_bytes =
      sizeof(LddEntry) + entry.path.size() + entry.payload.size();
  ldd_.insert(ldd_fingerprint(host, path, verbose, entry.env_fingerprint),
              std::move(entry));
  ldd_footprint_.fetch_add(entry_bytes, std::memory_order_relaxed);
  ldd_bytes_gauge_.add(entry_bytes);
}

const elf::ElfFile* ResolverCache::parsed_elf(const site::Site& host,
                                              std::string_view path,
                                              const support::Bytes& data) {
  const std::uint64_t version = host.vfs.file_version(path).value_or(0);
  const std::uint64_t key = parse_fingerprint(host, path, version);
  const std::uint64_t lease_id = host.lease_id();
  const auto matches = [&](const ParseEntry& e) {
    return e.lease_id == lease_id && e.version == version && e.path == path;
  };
  if (const ParseEntry* entry = parsed_.find_if(key, matches)) {
    parse_hits_.fetch_add(1, std::memory_order_relaxed);
    parse_hits_counter_.add();
    entry->site_hits.add();
    parse_bytes_saved_.add(data.size());
    return entry->parsed ? &*entry->parsed : nullptr;
  }
  // Parse with no lock held; a racing miss parses twice and the loser's
  // insert is dropped in favour of the winner's entry. The parse runs
  // against the entry's own arena copy — never against `data`, whose
  // buffer dies with the VFS node on the next rewrite of this path.
  support::Bytes arena = data;
  auto parsed = elf::ElfFile::parse(arena);
  std::optional<elf::ElfFile> value;
  if (parsed.ok()) {
    value = std::move(parsed).take();
  } else {
    support::Bytes().swap(arena);  // failed parse retains no bytes
  }
  parse_misses_.fetch_add(1, std::memory_order_relaxed);
  parse_misses_counter_.add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.parse"})
      .add();
  const auto [entry, inserted] = parsed_.get_or_insert_if(key, matches, [&] {
    return ParseEntry{
        lease_id, std::string(path), version, std::move(arena),
        std::move(value),
        obs::SeriesHandle("cache.hits",
                          {.site = host.name, .cache = "resolver.parse"})};
  });
  if (inserted) {
    const std::uint64_t entry_bytes =
        sizeof(ParseEntry) + entry->path.size() + entry->arena.capacity() +
        (entry->parsed ? elf_bytes(*entry->parsed) : 0);
    parse_footprint_.fetch_add(entry_bytes, std::memory_order_relaxed);
    parse_bytes_gauge_.add(entry_bytes);
  }
  return entry->parsed ? &*entry->parsed : nullptr;
}

std::uint64_t ResolverCache::hits() const {
  return search_hits() + ldd_hits() + parse_hits();
}

std::uint64_t ResolverCache::misses() const {
  return search_misses() + ldd_misses() + parse_misses();
}

}  // namespace feam::binutils
