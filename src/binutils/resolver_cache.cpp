#include "binutils/resolver_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "site/vfs.hpp"

namespace feam::binutils {

namespace {

std::string search_key(const site::Site& host, std::string_view soname,
                       int bits, const std::vector<std::string>& dirs) {
  std::string key = std::to_string(host.lease_id());
  key += '|';
  key += std::to_string(bits);
  key += '|';
  key += soname;
  for (const auto& dir : dirs) {
    key += '\x1f';
    key += dir;
  }
  return key;
}

std::string ldd_key(const site::Site& host, std::string_view path,
                    bool verbose) {
  std::string key = std::to_string(host.lease_id());
  key += verbose ? "|v|" : "|-|";
  key += path;
  return key;
}

}  // namespace

std::optional<std::optional<std::string>> ResolverCache::search(
    const site::Site& host, std::string_view soname, int bits,
    const std::vector<std::string>& dirs) {
  const std::string key = search_key(host, soname, bits, dirs);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = search_.find(key);
  if (it != search_.end() && it->second.candidate_versions.size() == dirs.size()) {
    bool fresh = true;
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      const auto version =
          host.vfs.file_version(site::Vfs::join(dirs[i], soname));
      if (version != it->second.candidate_versions[i]) {
        fresh = false;
        break;
      }
    }
    if (fresh) {
      ++search_hits_;
      obs::counter("resolver.search_hits").add();
      obs::counter("cache.hits", {.site = host.name, .cache = "resolver.search"})
          .add();
      return it->second.result;
    }
  }
  ++search_misses_;
  obs::counter("resolver.search_misses").add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.search"})
      .add();
  return std::nullopt;
}

void ResolverCache::store_search(const site::Site& host,
                                 std::string_view soname, int bits,
                                 const std::vector<std::string>& dirs,
                                 std::optional<std::string> result) {
  SearchEntry entry;
  entry.candidate_versions.reserve(dirs.size());
  for (const auto& dir : dirs) {
    entry.candidate_versions.push_back(
        host.vfs.file_version(site::Vfs::join(dir, soname)));
  }
  entry.result = std::move(result);
  std::lock_guard<std::mutex> lock(mutex_);
  search_[search_key(host, soname, bits, dirs)] = std::move(entry);
}

std::optional<support::Result<std::string>> ResolverCache::ldd_text(
    const site::Site& host, std::string_view path, bool verbose) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ldd_.find(ldd_key(host, path, verbose));
  if (it != ldd_.end() && it->second.vfs_generation == host.vfs.generation() &&
      it->second.env_generation == host.env.generation()) {
    ++ldd_hits_;
    obs::counter("resolver.ldd_hits").add();
    obs::counter("cache.hits", {.site = host.name, .cache = "resolver.ldd"})
        .add();
    obs::counter("resolver.ldd_bytes_saved").add(it->second.payload.size());
    if (it->second.ok) return support::Result<std::string>(it->second.payload);
    return support::Result<std::string>::failure(it->second.payload);
  }
  ++ldd_misses_;
  obs::counter("resolver.ldd_misses").add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.ldd"})
      .add();
  return std::nullopt;
}

void ResolverCache::store_ldd(const site::Site& host, std::string_view path,
                              bool verbose,
                              const support::Result<std::string>& text) {
  LddEntry entry;
  entry.vfs_generation = host.vfs.generation();
  entry.env_generation = host.env.generation();
  entry.ok = text.ok();
  entry.payload = text.ok() ? text.value() : text.error();
  std::lock_guard<std::mutex> lock(mutex_);
  ldd_[ldd_key(host, path, verbose)] = std::move(entry);
}

const elf::ElfFile* ResolverCache::parsed_elf(const site::Site& host,
                                              std::string_view path,
                                              const support::Bytes& data) {
  const std::uint64_t version = host.vfs.file_version(path).value_or(0);
  ParseKey key{host.lease_id(), std::string(path), version};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = parsed_.find(key);
    if (it != parsed_.end()) {
      ++parse_hits_;
      obs::counter("resolver.parse_hits").add();
      obs::counter("cache.hits", {.site = host.name, .cache = "resolver.parse"})
          .add();
      obs::counter("resolver.parse_bytes_saved").add(data.size());
      return it->second ? &*it->second : nullptr;
    }
  }
  // Parse outside the lock; a racing miss parses twice and the second
  // insert is dropped in favour of the first.
  auto parsed = elf::ElfFile::parse(data);
  std::optional<elf::ElfFile> value;
  if (parsed.ok()) value = std::move(parsed).take();
  std::lock_guard<std::mutex> lock(mutex_);
  ++parse_misses_;
  obs::counter("resolver.parse_misses").add();
  obs::counter("cache.misses", {.site = host.name, .cache = "resolver.parse"})
      .add();
  const auto it = parsed_.emplace(std::move(key), std::move(value)).first;
  return it->second ? &*it->second : nullptr;
}

std::uint64_t ResolverCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_hits_ + ldd_hits_ + parse_hits_;
}

std::uint64_t ResolverCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_misses_ + ldd_misses_ + parse_misses_;
}

std::uint64_t ResolverCache::search_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_hits_;
}

std::uint64_t ResolverCache::search_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return search_misses_;
}

std::uint64_t ResolverCache::ldd_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ldd_hits_;
}

std::uint64_t ResolverCache::ldd_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ldd_misses_;
}

std::uint64_t ResolverCache::parse_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parse_hits_;
}

std::uint64_t ResolverCache::parse_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parse_misses_;
}

}  // namespace feam::binutils
