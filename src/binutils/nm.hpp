// Reimplementation of `nm -D` (dynamic symbol listing with versions), used
// by diagnostics and tests; FEAM's identification scheme deliberately does
// NOT depend on symbols (MPI is identified by link-level library names,
// paper Table I), so this tool exists to *verify* that claim in tests.
#pragma once

#include <string>

#include "site/vfs.hpp"
#include "support/result.hpp"

namespace feam::binutils {

// `nm -D --with-symbol-versions <path>`.
support::Result<std::string> nm_dynamic(const site::Vfs& vfs,
                                        std::string_view path);

}  // namespace feam::binutils
