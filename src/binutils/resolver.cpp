#include "binutils/resolver.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "binutils/resolver_cache.hpp"
#include "obs/provenance.hpp"
#include "support/rng.hpp"

namespace feam::binutils {

namespace {

// True when the candidate file is a shared object loadable by a binary of
// the given bitness on this host: valid ELF, correct class, ISA executable
// on the host hardware.
bool candidate_compatible(const site::Site& host, const support::Bytes& data,
                          int bits) {
  const auto parsed = elf::ElfFile::parse(data);
  if (!parsed.ok()) return false;
  const elf::ElfFile& f = parsed.value();
  if (f.bits() != bits) return false;
  return elf::isa_executable_on(f.isa(), host.isa);
}

}  // namespace

bool Resolution::complete() const {
  return root_parsed &&
         std::all_of(libs.begin(), libs.end(),
                     [](const ResolvedLib& l) { return l.path.has_value(); });
}

std::vector<std::string> Resolution::missing() const {
  std::vector<std::string> out;
  for (const ResolvedLib& lib : libs) {
    if (!lib.path) out.push_back(lib.name);
  }
  return out;
}

std::optional<std::string> Resolution::path_of(std::string_view needed_name) const {
  for (const ResolvedLib& lib : libs) {
    if (lib.name == needed_name) return lib.path;
  }
  return std::nullopt;
}

std::optional<std::string> search_library(const site::Site& host,
                                          std::string_view soname, int bits,
                                          const std::vector<std::string>& rpath,
                                          const std::vector<std::string>& extra_dirs,
                                          ResolverCache* cache) {
  std::vector<std::string> dirs;
  dirs.insert(dirs.end(), extra_dirs.begin(), extra_dirs.end());
  dirs.insert(dirs.end(), rpath.begin(), rpath.end());
  const auto ld_path = host.env.ld_library_path();
  dirs.insert(dirs.end(), ld_path.begin(), ld_path.end());
  const auto defaults = host.default_lib_dirs(bits);
  dirs.insert(dirs.end(), defaults.begin(), defaults.end());

  // Provenance: the walk's evidence is a pure function of (soname, dirs,
  // result), all of which a memo hit has in hand — recording at every exit
  // keeps cached and uncached provenance byte-identical without storing
  // evidence in the cache entry.
  const auto record_search = [&](const std::optional<std::string>& found) {
    if (!obs::provenance_active()) return;
    std::uint64_t h = support::fnv1a(soname);
    for (const auto& dir : dirs) h = support::fnv1a_mix(h, dir);
    h = support::fnv1a_mix(h, found ? std::string_view(*found) : "\x01");
    obs::record_evidence(
        {"resolver", "search", host.name, std::string(soname),
         found ? "found " + *found
               : "absent in " + std::to_string(dirs.size()) + " dirs",
         h});
  };

  if (cache != nullptr) {
    if (const auto memo = cache->search(host, soname, bits, dirs)) {
      record_search(*memo);
      return *memo;
    }
  }
  const auto* injector = host.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  std::optional<std::string> found;
  for (const auto& dir : dirs) {
    const std::string candidate = site::Vfs::join(dir, soname);
    const support::Bytes* data = host.vfs.read(candidate);
    if (data == nullptr) continue;
    if (!candidate_compatible(host, *data, bits)) continue;  // skip, keep looking
    found = host.vfs.resolve(candidate).value_or(candidate);
    break;
  }
  // A walk touched by fault injection saw a spurious view of the site;
  // memoizing it would poison later (unfaulted) lookups.
  const bool faulted =
      injector != nullptr && injector->fault_count() != faults_before;
  if (cache != nullptr && !faulted) {
    cache->store_search(host, soname, bits, dirs, found);
  }
  record_search(found);
  return found;
}

Resolution resolve_libraries(const site::Site& host, std::string_view binary_path,
                             const std::vector<std::string>& extra_search_dirs,
                             ResolverCache* cache) {
  Resolution out;
  // Reads report whether fault injection touched them; faulted bytes carry
  // an unchanged write stamp, so they must never reach the stamp-keyed
  // parse memo.
  const auto* injector = host.vfs.fault_injector();
  const auto fault_count = [&]() -> std::uint64_t {
    return injector != nullptr ? injector->fault_count() : 0;
  };
  bool read_faulted = false;
  const auto read_tracked = [&](std::string_view path) -> const support::Bytes* {
    const std::uint64_t before = fault_count();
    const support::Bytes* data = host.vfs.read(path);
    read_faulted = fault_count() != before;
    return data;
  };

  const support::Bytes* root_data = read_tracked(binary_path);
  if (root_data == nullptr) {
    out.root_error = "no such file: " + std::string(binary_path);
    return out;
  }
  // Parses `data` (the VFS content of `path`), through the cache's
  // write-stamp memo when one is supplied. `local` keeps uncached parses
  // alive for the duration of this resolution.
  std::deque<elf::ElfFile> local;
  const auto parse_object = [&](std::string_view path,
                                const support::Bytes& data,
                                bool faulted) -> const elf::ElfFile* {
    if (cache != nullptr && !faulted) return cache->parsed_elf(host, path, data);
    auto parsed = elf::ElfFile::parse(data);
    if (!parsed.ok()) return nullptr;
    local.push_back(std::move(parsed).take());
    return &local.back();
  };

  const elf::ElfFile* root = parse_object(binary_path, *root_data, read_faulted);
  if (root == nullptr) {
    out.root_error = elf::ElfFile::parse(*root_data).error();
    return out;
  }
  out.root_parsed = true;
  const int bits = root->bits();
  std::vector<std::string> rpath;
  rpath.reserve(root->rpath().size());
  for (const auto& dir : root->rpath()) rpath.emplace_back(dir);

  // BFS over NEEDED closure, tracking per-name depth and a parent chain so
  // cycles and runaway depths are *detected* (the dedup set alone would
  // silently absorb a cycle).
  struct Pending {
    std::string name;
    std::string requested_by;
    int depth = 1;
  };
  std::deque<Pending> queue;
  std::set<std::string> enqueued;
  std::map<std::string, std::string> parent;  // NEEDED name -> requesting name
  std::set<std::string> cycles_seen;
  for (const auto& n : root->needed()) {
    std::string name(n);
    queue.push_back({name, std::string(binary_path), 1});
    enqueued.insert(name);
    parent[name] = "";  // requested by the root binary itself
  }

  // True (and records the rendered chain) when `needed`, requested while
  // processing `at`, is one of `at`'s own ancestors in the NEEDED graph.
  const auto detect_cycle = [&](const std::string& at,
                                const std::string& needed) {
    std::vector<std::string> chain{at};
    std::string cur = at;
    while (cur != needed) {
      const auto it = parent.find(cur);
      if (it == parent.end() || it->second.empty()) return;  // diamond, not a cycle
      cur = it->second;
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());  // now needed -> ... -> at
    chain.push_back(needed);                   // close the loop
    std::string rendered;
    for (const auto& name : chain) {
      if (!rendered.empty()) rendered += " -> ";
      rendered += name;
    }
    if (!cycles_seen.insert(rendered).second) return;
    out.dep_cycles.push_back(rendered);
    if (!out.dep_error) {
      out.dep_error = support::Error{support::ErrorCode::kDepCycle,
                                     "cyclic DT_NEEDED chain: " + rendered};
    }
  };

  // Objects whose version references must be checked: (path, parsed file).
  // The root binary is first.
  std::vector<std::pair<std::string, const elf::ElfFile*>> closure;
  closure.emplace_back(std::string(binary_path), root);

  // name -> resolved path for provider lookups during version checking.
  std::map<std::string, std::string, std::less<>> provider_paths;

  while (!queue.empty()) {
    const Pending item = queue.front();
    queue.pop_front();
    ResolvedLib lib{item.name, std::nullopt, item.requested_by};
    lib.path = search_library(host, item.name, bits, rpath, extra_search_dirs,
                              cache);
    if (lib.path) {
      provider_paths.emplace(item.name, *lib.path);
      const support::Bytes* data = read_tracked(*lib.path);
      if (data != nullptr) {
        if (const elf::ElfFile* parsed =
                parse_object(*lib.path, *data, read_faulted)) {
          for (const auto& n : parsed->needed()) {
            std::string name(n);
            if (!enqueued.insert(name).second) {
              detect_cycle(item.name, name);
              continue;
            }
            if (item.depth + 1 > kMaxDepDepth) {
              enqueued.erase(name);
              if (!out.dep_error) {
                out.dep_error = support::Error{
                    support::ErrorCode::kDepDepthExceeded,
                    "DT_NEEDED chain exceeds depth " +
                        std::to_string(kMaxDepDepth) + " at " + name};
              }
              continue;
            }
            parent[name] = item.name;
            queue.push_back({std::move(name), *lib.path, item.depth + 1});
          }
          closure.emplace_back(*lib.path, parsed);
        }
      }
    }
    out.libs.push_back(std::move(lib));
  }

  // Version checks: every (file, version) reference must be defined by the
  // library that actually resolved for that file name.
  for (const auto& [object_path, object] : closure) {
    for (const auto& need : object->version_references()) {
      const auto provider_it = provider_paths.find(need.file);
      if (provider_it == provider_paths.end()) continue;  // missing lib: reported above
      const support::Bytes* provider_data = read_tracked(provider_it->second);
      if (provider_data == nullptr) continue;
      const elf::ElfFile* provider =
          parse_object(provider_it->second, *provider_data, read_faulted);
      if (provider == nullptr) continue;
      const auto& defs = provider->version_definitions();
      for (const auto& version : need.versions) {
        if (std::find(defs.begin(), defs.end(), version) == defs.end()) {
          out.version_errors.push_back(
              {std::string(version), object_path, provider_it->second});
        }
      }
    }
  }
  return out;
}

}  // namespace feam::binutils
