#include "binutils/resolver.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "binutils/resolver_cache.hpp"

namespace feam::binutils {

namespace {

// True when the candidate file is a shared object loadable by a binary of
// the given bitness on this host: valid ELF, correct class, ISA executable
// on the host hardware.
bool candidate_compatible(const site::Site& host, const support::Bytes& data,
                          int bits) {
  const auto parsed = elf::ElfFile::parse(data);
  if (!parsed.ok()) return false;
  const elf::ElfFile& f = parsed.value();
  if (f.bits() != bits) return false;
  return elf::isa_executable_on(f.isa(), host.isa);
}

}  // namespace

bool Resolution::complete() const {
  return root_parsed &&
         std::all_of(libs.begin(), libs.end(),
                     [](const ResolvedLib& l) { return l.path.has_value(); });
}

std::vector<std::string> Resolution::missing() const {
  std::vector<std::string> out;
  for (const ResolvedLib& lib : libs) {
    if (!lib.path) out.push_back(lib.name);
  }
  return out;
}

std::optional<std::string> Resolution::path_of(std::string_view needed_name) const {
  for (const ResolvedLib& lib : libs) {
    if (lib.name == needed_name) return lib.path;
  }
  return std::nullopt;
}

std::optional<std::string> search_library(const site::Site& host,
                                          std::string_view soname, int bits,
                                          const std::vector<std::string>& rpath,
                                          const std::vector<std::string>& extra_dirs,
                                          ResolverCache* cache) {
  std::vector<std::string> dirs;
  dirs.insert(dirs.end(), extra_dirs.begin(), extra_dirs.end());
  dirs.insert(dirs.end(), rpath.begin(), rpath.end());
  const auto ld_path = host.env.ld_library_path();
  dirs.insert(dirs.end(), ld_path.begin(), ld_path.end());
  const auto defaults = host.default_lib_dirs(bits);
  dirs.insert(dirs.end(), defaults.begin(), defaults.end());

  if (cache != nullptr) {
    if (const auto memo = cache->search(host, soname, bits, dirs)) {
      return *memo;
    }
  }
  std::optional<std::string> found;
  for (const auto& dir : dirs) {
    const std::string candidate = site::Vfs::join(dir, soname);
    const support::Bytes* data = host.vfs.read(candidate);
    if (data == nullptr) continue;
    if (!candidate_compatible(host, *data, bits)) continue;  // skip, keep looking
    found = host.vfs.resolve(candidate).value_or(candidate);
    break;
  }
  if (cache != nullptr) cache->store_search(host, soname, bits, dirs, found);
  return found;
}

Resolution resolve_libraries(const site::Site& host, std::string_view binary_path,
                             const std::vector<std::string>& extra_search_dirs,
                             ResolverCache* cache) {
  Resolution out;
  const support::Bytes* root_data = host.vfs.read(binary_path);
  if (root_data == nullptr) {
    out.root_error = "no such file: " + std::string(binary_path);
    return out;
  }
  // Parses `data` (the VFS content of `path`), through the cache's
  // write-stamp memo when one is supplied. `local` keeps uncached parses
  // alive for the duration of this resolution.
  std::deque<elf::ElfFile> local;
  const auto parse_object = [&](std::string_view path,
                                const support::Bytes& data)
      -> const elf::ElfFile* {
    if (cache != nullptr) return cache->parsed_elf(host, path, data);
    auto parsed = elf::ElfFile::parse(data);
    if (!parsed.ok()) return nullptr;
    local.push_back(std::move(parsed).take());
    return &local.back();
  };

  const elf::ElfFile* root = parse_object(binary_path, *root_data);
  if (root == nullptr) {
    out.root_error = elf::ElfFile::parse(*root_data).error();
    return out;
  }
  out.root_parsed = true;
  const int bits = root->bits();
  const std::vector<std::string> rpath = root->rpath();

  // BFS over NEEDED closure.
  struct Pending {
    std::string name;
    std::string requested_by;
  };
  std::deque<Pending> queue;
  std::set<std::string> enqueued;
  for (const auto& n : root->needed()) {
    queue.push_back({n, std::string(binary_path)});
    enqueued.insert(n);
  }

  // Objects whose version references must be checked: (path, parsed file).
  // The root binary is first.
  std::vector<std::pair<std::string, const elf::ElfFile*>> closure;
  closure.emplace_back(std::string(binary_path), root);

  // name -> resolved path for provider lookups during version checking.
  std::map<std::string, std::string, std::less<>> provider_paths;

  while (!queue.empty()) {
    const Pending item = queue.front();
    queue.pop_front();
    ResolvedLib lib{item.name, std::nullopt, item.requested_by};
    lib.path = search_library(host, item.name, bits, rpath, extra_search_dirs,
                              cache);
    if (lib.path) {
      provider_paths.emplace(item.name, *lib.path);
      const support::Bytes* data = host.vfs.read(*lib.path);
      if (data != nullptr) {
        if (const elf::ElfFile* parsed = parse_object(*lib.path, *data)) {
          for (const auto& n : parsed->needed()) {
            if (enqueued.insert(n).second) {
              queue.push_back({n, *lib.path});
            }
          }
          closure.emplace_back(*lib.path, parsed);
        }
      }
    }
    out.libs.push_back(std::move(lib));
  }

  // Version checks: every (file, version) reference must be defined by the
  // library that actually resolved for that file name.
  for (const auto& [object_path, object] : closure) {
    for (const auto& need : object->version_references()) {
      const auto provider_it = provider_paths.find(need.file);
      if (provider_it == provider_paths.end()) continue;  // missing lib: reported above
      const support::Bytes* provider_data = host.vfs.read(provider_it->second);
      if (provider_data == nullptr) continue;
      const elf::ElfFile* provider = parse_object(provider_it->second, *provider_data);
      if (provider == nullptr) continue;
      const auto& defs = provider->version_definitions();
      for (const auto& version : need.versions) {
        if (std::find(defs.begin(), defs.end(), version) == defs.end()) {
          out.version_errors.push_back({version, object_path, provider_it->second});
        }
      }
    }
  }
  return out;
}

}  // namespace feam::binutils
