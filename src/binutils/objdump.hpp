// Reimplementation of `objdump -p` (GNU binutils): renders the private
// headers of an ELF file as text, in the same layout the real tool uses.
//
// FEAM's Binary Description Component consumes this *text* — not the
// parsed ElfFile — mirroring the paper's implementation, which shelled out
// to objdump and scraped its output. ParsedObjdump is that scraper, and
// the render/scrape pair is round-trip tested.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "site/vfs.hpp"
#include "support/result.hpp"
#include "support/version.hpp"

namespace feam::binutils {

// `objdump -p <path>`; fails with the real tool's phrasing when the file
// is missing or not a recognized object file.
support::Result<std::string> objdump_p(const site::Vfs& vfs,
                                       std::string_view path);

// Structured view scraped back out of objdump text.
struct ParsedObjdump {
  std::string file_format;  // "elf64-x86-64"
  std::string architecture; // "i386:x86-64"
  int bits = 0;             // derived from file_format
  bool is_shared_object = false;
  std::vector<std::string> needed;
  std::optional<std::string> soname;
  std::vector<std::string> rpath;
  struct VersionRef {
    std::string file;
    std::vector<std::string> versions;
  };
  std::vector<VersionRef> version_references;
  std::vector<std::string> version_definitions;
};

std::optional<ParsedObjdump> parse_objdump_output(std::string_view text);

}  // namespace feam::binutils
