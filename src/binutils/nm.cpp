#include "binutils/nm.hpp"

#include "elf/file.hpp"

namespace feam::binutils {

support::Result<std::string> nm_dynamic(const site::Vfs& vfs,
                                        std::string_view path) {
  using R = support::Result<std::string>;
  const support::Bytes* data = vfs.read(path);
  if (data == nullptr) {
    return R::failure(support::ErrorCode::kFileNotFound,
                      "nm: '" + std::string(path) + "': No such file");
  }
  const auto parsed = elf::ElfFile::parse(*data);
  if (!parsed.ok()) {
    return R::failure(parsed.code(), "nm: " + std::string(path) +
                                        ": file format not recognized");
  }
  std::string out;
  for (const auto& sym : parsed.value().dynamic_symbols()) {
    out += sym.defined ? "0000000000001000 T " : "                 U ";
    out += sym.name;
    if (!sym.version.empty()) {
      out += '@';
      out += sym.version;
    }
    out += "\n";
  }
  return out;
}

}  // namespace feam::binutils
