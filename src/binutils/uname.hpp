// Reimplementation of `uname` over a Site: reports the hardware ISA
// (`uname -p`) and kernel identity (`uname -a`) that FEAM's Environment
// Discovery Component consults first (paper Section V.B).
#pragma once

#include <string>

#include "site/site.hpp"

namespace feam::binutils {

// `uname -p`: "x86_64", "i686", "ppc64", ...
std::string uname_p(const site::Site& host);

// `uname -a`: "Linux <name> <kernel> ... <arch> GNU/Linux".
std::string uname_a(const site::Site& host);

}  // namespace feam::binutils
