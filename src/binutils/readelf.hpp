// Reimplementation of `readelf -p .comment`: dumps the strings of the
// optional .comment section, which carries compiler/linker version-control
// stamps ("GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)"). FEAM's BDC uses
// it to learn what OS and C library a binary was *built* with.
#pragma once

#include <string>
#include <vector>

#include "site/vfs.hpp"
#include "support/result.hpp"

namespace feam::binutils {

// `readelf -p .comment <path>`.
support::Result<std::string> readelf_p_comment(const site::Vfs& vfs,
                                               std::string_view path);

// Scrapes the comment strings back out of readelf's text output.
std::vector<std::string> parse_comment_dump(std::string_view text);

}  // namespace feam::binutils
