// Shared-library resolution: the dynamic-loader search algorithm over a
// site's virtual filesystem. This is the single source of truth used by
// three consumers:
//   * the `ldd` reimplementation (renders the familiar "=> path" text),
//   * the execution simulator (toolchain::DynamicLoader), and
//   * FEAM's EDC when it checks which libraries are missing at a target.
//
// Search order per object, following ld.so:
//   1. DT_RPATH of the root executable (inherited by dependencies),
//   2. LD_LIBRARY_PATH from the site environment,
//   3. the site's default library directories for the binary's bitness.
// A candidate that exists but has the wrong ELF class/machine is skipped
// and the search continues — exactly ld.so's behaviour, and the mechanism
// that makes 32-bit-vs-64-bit library directories work.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "elf/file.hpp"
#include "site/site.hpp"
#include "support/result.hpp"

namespace feam::binutils {

struct ResolvedLib {
  std::string name;                  // DT_NEEDED value ("libmpi.so.0")
  std::optional<std::string> path;   // resolved path, or nullopt if missing
  std::string requested_by;          // which object asked for it
};

// "version `GLIBC_2.12' not found (required by /x) in /lib64/libc.so.6".
struct VersionError {
  std::string version;
  std::string required_by;  // object that references the version
  std::string provider;     // resolved library that fails to define it
};

// DT_NEEDED chains deeper than this are cut off with kDepDepthExceeded;
// no real loader stack goes anywhere near 64 levels.
inline constexpr int kMaxDepDepth = 64;

struct Resolution {
  // Transitive closure in breadth-first order, deduplicated by name.
  std::vector<ResolvedLib> libs;
  std::vector<VersionError> version_errors;
  bool root_parsed = false;  // false when the root binary is not valid ELF
  std::string root_error;    // parse failure message when !root_parsed
  // Set when the NEEDED graph itself is malformed: kDepCycle when a
  // library transitively needs itself, kDepDepthExceeded past kMaxDepDepth.
  // Resolution of the rest of the closure still completes.
  std::optional<support::Error> dep_error;
  std::vector<std::string> dep_cycles;  // rendered "libA -> libB -> libA"

  bool complete() const;
  std::vector<std::string> missing() const;
  // Path a given NEEDED name resolved to, if any.
  std::optional<std::string> path_of(std::string_view needed_name) const;
};

class ResolverCache;

// Resolves the transitive shared-library closure of the binary at
// `binary_path` within `host`. `extra_search_dirs` are prepended to the
// search order (used by FEAM's resolution model to test library-copy
// directories before committing to them). A non-null `cache` memoizes the
// per-library search steps (see resolver_cache.hpp); nullptr reproduces
// the uncached walk exactly.
Resolution resolve_libraries(const site::Site& host, std::string_view binary_path,
                             const std::vector<std::string>& extra_search_dirs = {},
                             ResolverCache* cache = nullptr);

// The single-library search step, exposed for FEAM's fallback searches:
// finds `soname` for a binary of `bits` bitness, honoring skip-on-wrong-class.
std::optional<std::string> search_library(const site::Site& host,
                                          std::string_view soname, int bits,
                                          const std::vector<std::string>& rpath,
                                          const std::vector<std::string>& extra_dirs,
                                          ResolverCache* cache = nullptr);

}  // namespace feam::binutils
