#include "binutils/file_cmd.hpp"

#include "elf/file.hpp"
#include "support/strings.hpp"

namespace feam::binutils {

std::string file_type(const site::Vfs& vfs, std::string_view path) {
  const std::string name(path);
  const support::Bytes* data = vfs.read(path);
  if (data == nullptr) {
    return name + ": cannot open (No such file or directory)";
  }
  if (data->empty()) return name + ": empty";

  if (elf::looks_like_elf(*data)) {
    const auto parsed = elf::ElfFile::parse(*data);
    if (!parsed.ok()) {
      return name + ": ELF (corrupt or unsupported: " + parsed.error() + ")";
    }
    const elf::ElfFile& f = parsed.value();
    std::string out = name + ": ELF " + std::to_string(f.bits()) + "-bit " +
                      (f.endian() == support::Endian::kLittle ? "LSB" : "MSB");
    out += f.kind() == elf::FileKind::kExecutable ? " executable"
                                                  : " shared object";
    out += std::string(", ") + elf::isa_name(f.isa());
    out += f.is_dynamic() ? ", dynamically linked" : ", statically linked";
    if (f.soname()) {
      out += ", SONAME ";
      out += *f.soname();
    }
    return out;
  }

  const std::string text(data->begin(),
                         data->begin() + std::min<std::size_t>(data->size(), 64));
  if (support::starts_with(text, "#!")) {
    const auto eol = text.find('\n');
    const std::string interp(support::trim(
        text.substr(2, eol == std::string::npos ? eol : eol - 2)));
    return name + ": " + interp + " script text executable";
  }
  // Printable ASCII -> text; else data.
  const bool printable = std::all_of(data->begin(), data->end(), [](std::uint8_t c) {
    return c == '\n' || c == '\t' || c == '\r' || (c >= 0x20 && c < 0x7f);
  });
  return name + (printable ? ": ASCII text" : ": data");
}

}  // namespace feam::binutils
