// Reimplementation of `file(1)` for the objects FEAM meets: ELF binaries
// (with class, endianness, machine, linkage), shell scripts, and opaque
// data. The one-line classification real administrators reach for first.
#pragma once

#include <string>

#include "site/vfs.hpp"

namespace feam::binutils {

// `file <path>` — always succeeds with a classification (like the real
// tool, which reports "data" rather than failing). A missing path reports
// "cannot open".
std::string file_type(const site::Vfs& vfs, std::string_view path);

}  // namespace feam::binutils
