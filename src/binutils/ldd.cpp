#include "binutils/ldd.hpp"

#include <cstdio>

#include "binutils/resolver_cache.hpp"
#include "elf/file.hpp"
#include "obs/provenance.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace feam::binutils {

namespace {

support::Result<std::string> ldd_impl(const site::Site& host,
                                      std::string_view path, bool verbose,
                                      ResolverCache* cache) {
  using R = support::Result<std::string>;
  if (!host.ldd_available) {
    return R::failure("bash: ldd: command not found");
  }
  const support::Bytes* data = host.vfs.read(path);
  if (data == nullptr) {
    return R::failure("ldd: " + std::string(path) +
                      ": No such file or directory");
  }
  const auto parsed = elf::ElfFile::parse(*data);
  if (!parsed.ok()) {
    return R::failure("\tnot a dynamic executable");
  }
  // Real ldd executes the binary's interpreter; a foreign-ISA binary is not
  // recognized as a dynamic executable at all.
  if (!elf::isa_executable_on(parsed.value().isa(), host.isa) ||
      !parsed.value().is_dynamic()) {
    return R::failure("\tnot a dynamic executable");
  }

  const Resolution res = resolve_libraries(host, path, {}, cache);
  std::string out;
  std::uint64_t fake_base = 0x2aaaaaaab000ULL;
  for (const auto& lib : res.libs) {
    out += "\t" + lib.name + " => ";
    if (lib.path) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " (0x%012llx)",
                    static_cast<unsigned long long>(fake_base));
      fake_base += 0x155000;
      out += *lib.path + buf;
    } else {
      out += "not found";
    }
    out += "\n";
  }

  if (verbose) {
    out += "\n\tVersion information:\n";
    out += "\t" + std::string(path) + ":\n";
    for (const auto& need : parsed.value().version_references()) {
      const auto provider = res.path_of(need.file);
      for (const auto& version : need.versions) {
        out += "\t\t";
        out += need.file;
        out += " (";
        out += version;
        out += ") => ";
        out += provider.value_or("not found");
        out += "\n";
      }
    }
  }
  return out;
}

}  // namespace

support::Result<std::string> ldd(const site::Site& host, std::string_view path,
                                 bool verbose, ResolverCache* cache) {
  // Provenance over the transcript itself: content-stamped, so a memoized
  // transcript and a fresh one for identical state record identically.
  const auto record_ldd = [&](const support::Result<std::string>& r) {
    if (!obs::provenance_active()) return;
    const std::string_view text = r.ok() ? r.value() : r.error();
    obs::record_evidence({"resolver", "ldd", host.name, std::string(path),
                          r.ok() ? std::to_string(parse_ldd_output(r.value())
                                                      .size()) +
                                       " entries"
                                 : "failed: " + r.error(),
                          support::fnv1a(text)});
  };
  if (cache != nullptr) {
    if (auto memo = cache->ldd_text(host, path, verbose)) {
      record_ldd(*memo);
      return *memo;
    }
  }
  const auto* injector = host.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  support::Result<std::string> result = ldd_impl(host, path, verbose, cache);
  // A transcript produced under injected faults reflects a view of the
  // site that never really existed; memoizing it would poison later runs
  // (the site generations it is keyed on did not change).
  const bool faulted =
      injector != nullptr && injector->fault_count() != faults_before;
  if (cache != nullptr && !faulted) {
    cache->store_ldd(host, path, verbose, result);
  }
  record_ldd(result);
  return result;
}

std::vector<LddEntry> parse_ldd_output(std::string_view text) {
  std::vector<LddEntry> out;
  for (const auto& line : support::split(text, '\n')) {
    const auto stripped = support::trim(line);
    const auto arrow = stripped.find(" => ");
    if (arrow == std::string_view::npos) continue;
    // Skip the "Version information" block entries, which are indented with
    // a library-name prefix containing a parenthesized version.
    if (stripped.find('(') != std::string_view::npos &&
        stripped.find(") => ") != std::string_view::npos) {
      continue;
    }
    LddEntry entry;
    entry.name = std::string(support::trim(stripped.substr(0, arrow)));
    auto rest = support::trim(stripped.substr(arrow + 4));
    if (rest == "not found") {
      entry.path = std::nullopt;
    } else {
      // Strip the "(0x...)" load address.
      const auto paren = rest.rfind(" (0x");
      if (paren != std::string_view::npos) rest = support::trim(rest.substr(0, paren));
      entry.path = std::string(rest);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace feam::binutils
