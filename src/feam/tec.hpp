// The Target Evaluation Component (TEC) of FEAM (paper Section V.C).
//
// Combines the BDC's binary description and the EDC's environment
// description into the four-determinant prediction of the paper's
// Figure 1, ordered as the paper orders them:
//   1. ISA compatibility (family + word size),
//   2. C library compatibility (target glibc >= required version),
//      — if either fails, evaluation stops there —
//   3. MPI stack compatibility: same implementation type (version is NOT
//      considered, Section III.B), usability-tested by compiling and
//      running "hello world" natively, and — when a source-phase bundle
//      is available — by running hello-world binaries from the guaranteed
//      environment under the candidate stack,
//   4. shared-library availability, with the resolution model (Section IV)
//      recursively validating and installing library copies from the
//      bundle for anything missing.
//
// The output is a Prediction: ready/not-ready, the per-determinant
// verdicts, the chosen stack, what was resolved, and a configuration
// script that reproduces the working environment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "feam/bundle.hpp"
#include "feam/description.hpp"
#include "feam/edc.hpp"
#include "obs/provenance.hpp"
#include "site/site.hpp"

namespace feam {

struct MigrationCaches;  // caches.hpp

enum class DeterminantKind : std::uint8_t {
  kIsa,
  kCLibrary,
  kMpiStack,
  kSharedLibraries,
};

const char* determinant_name(DeterminantKind kind);

// Short stable slug ("isa", "c_library", "mpi_stack", "shared_libraries");
// run records and provenance evidence key determinants by it.
const char* determinant_slug(DeterminantKind kind);

struct DeterminantResult {
  DeterminantKind kind = DeterminantKind::kIsa;
  bool evaluated = false;   // false when short-circuited by earlier failure
  bool compatible = false;
  std::string detail;
};

struct Prediction {
  bool ready = false;
  std::vector<DeterminantResult> determinants;

  // The matching, usability-tested MPI stack the TEC selected.
  std::optional<std::string> selected_stack_id;

  // Shared-library determinant details.
  std::vector<std::string> missing_libraries;     // before resolution
  std::vector<std::string> resolved_libraries;    // installed from copies
  std::vector<std::string> unresolved_libraries;  // copies unusable/absent

  // Directories the resolution model populated; execution must add them to
  // the library search path (the generated script does).
  std::vector<std::string> resolution_dirs;

  // The environment prepends that activate the selected stack (module
  // contents, or manual PATH/LD_LIBRARY_PATH entries on tool-less sites).
  std::vector<std::pair<std::string, std::string>> activation_prepends;

  // Shell script reproducing the matching configuration (paper V.C).
  std::string configuration_script;

  // Human-readable evaluation trace (the paper's output file "details the
  // reasons to the user").
  std::vector<std::string> log;

  // The evidence consulted to reach this verdict (obs/provenance.hpp):
  // BDC description stamps, EDC probe/stack observations, resolver search
  // and ldd chains, and the per-determinant verdicts themselves. Populated
  // when the evaluation ran under a ProvenanceScope (run_target_phase
  // installs one); serialized as the run record's `provenance` section.
  obs::EvidenceSet provenance;

  const DeterminantResult* determinant(DeterminantKind kind) const;
};

struct TecOptions {
  int hello_world_ranks = 2;
  std::string resolution_root = "/home/user/feam_resolved";
  // Launch command written into the configuration script (per-MPI-type
  // overrides come from the user's configuration file, paper Section V).
  std::string mpiexec_command = "mpiexec";
  // When false, the resolution model is skipped even if a bundle is
  // available (used by the ablation benchmarks).
  bool apply_resolution = true;
  // Ablation switch: validate library copies with the recursive prediction
  // before installing (paper behaviour) or install blindly.
  bool recursive_copy_validation = true;
  // Ablation switch: run the hello-world usability/compatibility tests
  // (paper III.B). Disabling trusts every advertised stack.
  bool run_usability_tests = true;
};

class Tec {
 public:
  // Evaluates execution readiness of `app` at `target`.
  //  * `binary_path`: location of the migrated binary at the target, or ""
  //    when only the bundle's description travelled (two-phase mode).
  //  * `bundle`: source-phase output; nullptr -> basic prediction.
  //  * `caches`: optional memoization bundle (see caches.hpp); the
  //    environment scan is served from the EDC memo when fresh. nullptr
  //    reproduces the uncached path exactly.
  // Mutates `target` only through user-level actions FEAM really takes:
  // loading modules during tests (undone afterwards) and writing library
  // copies under opts.resolution_root.
  static Prediction evaluate(site::Site& target, const BinaryDescription& app,
                             std::string_view binary_path, const Bundle* bundle,
                             const TecOptions& opts = {},
                             MigrationCaches* caches = nullptr);

  // Applies a ready prediction's configuration to the site (loads the
  // selected module) and returns the extra library directories execution
  // must use. The counterpart of the generated script.
  static std::vector<std::string> apply_configuration(
      site::Site& target, const Prediction& prediction);
};

}  // namespace feam
