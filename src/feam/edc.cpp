#include "feam/edc.hpp"

#include <algorithm>

#include "binutils/objdump.hpp"
#include "binutils/uname.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "toolchain/glibc.hpp"
#include "toolchain/launcher.hpp"

namespace feam {

namespace {

using support::Version;

std::optional<site::MpiImpl> impl_from_slug(std::string_view slug) {
  for (const auto impl : {site::MpiImpl::kOpenMpi, site::MpiImpl::kMpich2,
                          site::MpiImpl::kMvapich2}) {
    if (slug == site::mpi_impl_slug(impl)) return impl;
  }
  return std::nullopt;
}

std::optional<site::CompilerFamily> compiler_from_slug(std::string_view slug) {
  for (const auto fam : {site::CompilerFamily::kGnu, site::CompilerFamily::kIntel,
                         site::CompilerFamily::kPgi}) {
    if (slug == site::compiler_slug(fam)) return fam;
  }
  return std::nullopt;
}

// "openmpi", "1.4", "intel" out of a module name "openmpi/1.4-intel", a
// SoftEnv key "+openmpi-1.4-intel", or a prefix "/opt/openmpi-1.4-intel".
void parse_stack_id(std::string_view id, DiscoveredStack& stack) {
  std::string flat(id);
  if (!flat.empty() && flat.front() == '+') flat.erase(0, 1);
  std::replace(flat.begin(), flat.end(), '/', '-');
  const auto parts = support::split(flat, '-');
  if (parts.empty()) return;
  stack.impl = impl_from_slug(parts[0]);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (!stack.version) {
      if (const auto v = Version::parse(parts[i])) {
        stack.version = *v;
        continue;
      }
    }
    if (const auto fam = compiler_from_slug(parts[i])) stack.compiler = fam;
  }
}

// `mpicc -V` probing: the wrapper script embeds the compiler banner.
void probe_wrapper(const site::Site& s, DiscoveredStack& stack) {
  if (stack.prefix.empty()) return;
  const support::Bytes* wrapper =
      s.vfs.read(site::Vfs::join(stack.prefix + "/bin", "mpicc"));
  if (wrapper == nullptr) return;
  const std::string body(wrapper->begin(), wrapper->end());
  const auto pos = body.find("# COMPILER: ");
  if (pos == std::string::npos) return;
  const auto eol = body.find('\n', pos);
  const std::string banner =
      body.substr(pos + 12, eol == std::string::npos ? eol : eol - pos - 12);
  // "pgcc" must be tested before "gcc" — it contains it.
  if (support::contains(banner, "Intel")) {
    stack.compiler = site::CompilerFamily::kIntel;
  } else if (support::contains(banner, "pgcc") ||
             support::contains(banner, "PGI")) {
    stack.compiler = site::CompilerFamily::kPgi;
  } else if (support::contains(banner, "gcc") ||
             support::contains(banner, "GCC")) {
    stack.compiler = site::CompilerFamily::kGnu;
  }
  // The last whitespace token that parses as a version is the compiler
  // version ("gcc (GCC) 4.4.5" -> 4.4.5).
  for (const auto& token : support::split_ws(banner)) {
    if (const auto v = Version::parse(token)) stack.compiler_version = *v;
  }
}

// Reads the stack's install prefix out of a module/softenv file body
// ("prepend-path PATH /opt/openmpi-1.4-intel/bin").
std::string prefix_from_module_body(std::string_view body) {
  for (const auto& line : support::split(body, '\n')) {
    const auto fields = support::split_ws(line);
    if (fields.size() == 3 && fields[0] == "prepend-path" &&
        fields[1] == "PATH" && support::ends_with(fields[2], "/bin")) {
      return fields[2].substr(0, fields[2].size() - 4);
    }
  }
  return "";
}

// Shared constructor for the EDC's evidence items. Every stamp is derived
// from the observed content (never a Vfs version counter), so a memoized
// replay and a fresh scan of identical state record identical items.
void note_evidence(const site::Site& s, std::string kind, std::string subject,
                   std::string detail, std::uint64_t stamp) {
  obs::record_evidence({"edc", std::move(kind), s.name, std::move(subject),
                        std::move(detail), stamp});
}

void discover_clib(const site::Site& s, EnvironmentDescription& env) {
  // Locate the C library the way the BDC locates any library.
  std::string libc_path;
  for (const char* dir : {"/lib64", "/lib", "/usr/lib64", "/usr/lib"}) {
    const std::string candidate = site::Vfs::join(dir, "libc.so.6");
    if (s.vfs.is_file(candidate)) {
      libc_path = s.vfs.resolve(candidate).value_or(candidate);
      break;
    }
  }
  if (libc_path.empty()) return;

  // Primary: execute the C library binary and parse its banner.
  const auto run = toolchain::run_serial(s, libc_path);
  if (run.success()) {
    if (const auto v = toolchain::parse_glibc_banner(run.output)) {
      env.clib_version = *v;
      env.clib_discovery_method = "executed C library";
      return;
    }
  }
  // Fallback: the "library API" — the newest version node the library
  // defines, read from its version definitions.
  const auto dump = binutils::objdump_p(s.vfs, libc_path);
  if (!dump.ok()) return;
  const auto parsed = binutils::parse_objdump_output(dump.value());
  if (!parsed) return;
  std::optional<Version> newest;
  for (const auto& def : parsed->version_definitions) {
    if (const auto v = toolchain::parse_glibc_version(def)) {
      if (!newest || *v > *newest) newest = *v;
    }
  }
  env.clib_version = newest;
  env.clib_discovery_method = "library API";
}

// Filesystem fallback when no user-environment tool exists: search for MPI
// implementation libraries and derive stacks from path naming schemes
// ("/opt/openmpi-1.4.3-intel/lib/libmpi.so reveals Open MPI for Intel").
void discover_stacks_by_search(const site::Site& s,
                               EnvironmentDescription& env) {
  const auto is_mpi_lib = [](std::string_view base) {
    return support::starts_with(base, "libmpi.so") ||
           support::starts_with(base, "libmpich.so");
  };
  std::vector<std::string> hits = s.vfs.find("/opt", is_mpi_lib);
  for (const auto& root : {"/usr/lib64", "/usr/lib"}) {
    for (auto& hit : s.vfs.find(root, is_mpi_lib)) hits.push_back(std::move(hit));
  }
  for (const auto& hit : hits) {
    const std::string libdir = site::Vfs::dirname(hit);
    if (!support::ends_with(libdir, "/lib")) continue;
    const std::string prefix = libdir.substr(0, libdir.size() - 4);
    const bool seen = std::any_of(env.stacks.begin(), env.stacks.end(),
                                  [&](const DiscoveredStack& st) {
                                    return st.prefix == prefix;
                                  });
    if (seen) continue;
    DiscoveredStack stack;
    stack.prefix = prefix;
    stack.id = site::Vfs::basename(prefix);
    parse_stack_id(stack.id, stack);
    probe_wrapper(s, stack);
    if (stack.impl) env.stacks.push_back(std::move(stack));
  }
}

}  // namespace

std::string DiscoveredStack::display() const {
  std::string out = impl ? site::mpi_impl_name(*impl) : "unknown MPI";
  if (version) out += " v" + version->str();
  if (compiler) {
    out += " (";
    out += site::compiler_letter(*compiler);
    out += ")";
  }
  return out;
}

std::vector<const DiscoveredStack*> EnvironmentDescription::stacks_of(
    site::MpiImpl impl) const {
  std::vector<const DiscoveredStack*> out;
  for (const auto& stack : stacks) {
    if (stack.impl == impl) out.push_back(&stack);
  }
  return out;
}

EnvironmentDescription Edc::discover(const site::Site& s) {
  obs::Span span("edc.discover", {{"site", s.name}});
  obs::ScopedTimer timer(obs::histogram("edc.discover_ns"));
  obs::counter("edc.discover_calls").add();

  EnvironmentDescription env;

  env.site_name = s.name;
  env.isa = binutils::uname_p(s);
  env.bits = support::ends_with(env.isa, "64") ? 64 : 32;
  if (obs::provenance_active()) {
    note_evidence(s, "probe", "uname -p", env.isa, support::fnv1a(env.isa));
  }

  if (const auto* proc = s.vfs.read("/proc/version")) {
    const std::string text(proc->begin(), proc->end());
    const auto fields = support::split_ws(text);
    if (fields.size() >= 3 && fields[0] == "Linux") {
      env.os_type = "Linux " + fields[2];
    }
    if (obs::provenance_active()) {
      note_evidence(s, "file", "/proc/version", env.os_type,
                    support::fnv1a(text));
    }
  } else if (obs::provenance_active()) {
    note_evidence(s, "file", "/proc/version", "absent", 0);
  }
  for (const char* release_file :
       {"/etc/redhat-release", "/etc/SuSE-release", "/etc/system-release"}) {
    if (const auto* data = s.vfs.read(release_file)) {
      env.distro = std::string(support::trim(
          std::string_view(reinterpret_cast<const char*>(data->data()),
                           data->size())));
      if (obs::provenance_active()) {
        note_evidence(s, "file", release_file, env.distro,
                      support::fnv1a(env.distro));
      }
      break;
    }
    if (obs::provenance_active()) {
      note_evidence(s, "file", release_file, "absent", 0);
    }
  }

  discover_clib(s, env);
  if (obs::provenance_active()) {
    const std::string seen =
        env.clib_version
            ? env.clib_discovery_method + " -> " + env.clib_version->str()
            : "not found";
    note_evidence(s, "probe", "libc", seen, support::fnv1a(seen));
  }

  // User-environment management tool detection by configuration presence.
  if (s.vfs.exists("/usr/bin/modulecmd") &&
      s.vfs.is_dir("/usr/share/Modules/modulefiles")) {
    env.user_env_tool = site::UserEnvTool::kModules;
    // `module avail`.
    for (const auto& impl_dir : s.vfs.list("/usr/share/Modules/modulefiles")) {
      const std::string dir =
          site::Vfs::join("/usr/share/Modules/modulefiles", impl_dir);
      for (const auto& version_file : s.vfs.list(dir)) {
        DiscoveredStack stack;
        stack.id = impl_dir + "/" + version_file;
        parse_stack_id(stack.id, stack);
        if (const auto* body = s.vfs.read(site::Vfs::join(dir, version_file))) {
          stack.prefix = prefix_from_module_body(
              std::string(body->begin(), body->end()));
        }
        probe_wrapper(s, stack);
        const auto& loaded = s.loaded_modules();
        stack.currently_loaded =
            std::find(loaded.begin(), loaded.end(), stack.id) != loaded.end();
        if (stack.impl) env.stacks.push_back(std::move(stack));
      }
    }
  } else if (s.vfs.exists("/usr/bin/soft") && s.vfs.is_dir("/etc/softenv")) {
    env.user_env_tool = site::UserEnvTool::kSoftEnv;
    for (const auto& key : s.vfs.list("/etc/softenv")) {
      DiscoveredStack stack;
      stack.id = key;
      parse_stack_id(key, stack);
      if (const auto* body = s.vfs.read(site::Vfs::join("/etc/softenv", key))) {
        stack.prefix =
            prefix_from_module_body(std::string(body->begin(), body->end()));
      }
      probe_wrapper(s, stack);
      if (stack.impl) env.stacks.push_back(std::move(stack));
    }
  } else {
    env.user_env_tool = site::UserEnvTool::kNone;
    discover_stacks_by_search(s, env);
  }

  // Currently accessible stacks by LD_LIBRARY_PATH inspection (covers
  // SoftEnv and tool-less sites).
  for (auto& stack : env.stacks) {
    if (stack.currently_loaded || stack.prefix.empty()) continue;
    for (const auto& dir : s.env.ld_library_path()) {
      if (dir == stack.prefix + "/lib") stack.currently_loaded = true;
    }
  }

  if (obs::provenance_active()) {
    const char* tool = env.user_env_tool == site::UserEnvTool::kModules
                           ? "modules"
                           : env.user_env_tool == site::UserEnvTool::kSoftEnv
                                 ? "softenv"
                                 : "none";
    note_evidence(s, "probe", "user_env_tool", tool, support::fnv1a(tool));
    const std::string ld_path = support::join(s.env.ld_library_path(), ":");
    note_evidence(s, "env", "LD_LIBRARY_PATH", ld_path,
                  support::fnv1a(ld_path));
    // One item per discovered stack, stamped on everything a verdict can
    // depend on: identity, install prefix, and whether it is selected.
    for (const auto& stack : env.stacks) {
      const std::string detail = stack.display() + " prefix=" + stack.prefix +
                                 (stack.currently_loaded ? " [loaded]" : "");
      note_evidence(s, "stack", stack.id, detail, support::fnv1a(detail));
    }
  }
  span.add_field("stacks", std::to_string(env.stacks.size()));
  return env;
}

}  // namespace feam
