#include "feam/bundle.hpp"

namespace feam {

const LibraryCopy* Bundle::find_library(std::string_view name) const {
  for (const auto& lib : libraries) {
    if (lib.name == name) return &lib;
  }
  return nullptr;
}

std::size_t Bundle::total_bytes() const {
  std::size_t total = 0;
  for (const auto& lib : libraries) total += lib.content.size();
  for (const auto& hw : hello_worlds) total += hw.content.size();
  return total;
}

support::Json Bundle::manifest() const {
  support::Json j;
  j.set("application", application.to_json());
  support::Json::Array libs;
  for (const auto& lib : libraries) {
    support::Json entry;
    entry.set("name", lib.name);
    entry.set("origin_path", lib.origin_path);
    entry.set("bytes", lib.content.size());
    entry.set("description", lib.description.to_json());
    libs.push_back(std::move(entry));
  }
  j.set("libraries", support::Json(std::move(libs)));
  support::Json::Array hellos;
  for (const auto& hw : hello_worlds) {
    support::Json entry;
    entry.set("name", hw.name);
    entry.set("language", toolchain::language_name(hw.language));
    entry.set("bytes", hw.content.size());
    hellos.push_back(std::move(entry));
  }
  j.set("hello_worlds", support::Json(std::move(hellos)));
  j.set("total_bytes", total_bytes());
  return j;
}

}  // namespace feam
