// The Environment Discovery Component (EDC) of FEAM (paper Section V.B).
//
// Gathers everything in Figure 4 about a computing site:
//   * ISA format          - `uname -p`
//   * operating system    - /proc/version, confirmed by /etc/*release
//   * C library version   - by executing the C library binary and parsing
//                           its banner; falls back to the library API
//                           (version definitions) when it cannot be run
//   * available MPI stacks - via Environment Modules / SoftEnv when
//                           present, else filesystem search for libmpi*/
//                           libmpich* and mpicc-style wrapper probing
//                           (path naming schemes, `mpicc -V` banners)
//   * currently accessible stacks - `module list` / PATH+LD_LIBRARY_PATH
//
// Discovery is honest: every fact comes from the site's filesystem,
// environment, or tool surface — never from Site's configuration fields.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "site/site.hpp"
#include "support/version.hpp"

namespace feam {

// One MPI stack the EDC found, with everything it could learn about it.
struct DiscoveredStack {
  std::string id;  // module name, SoftEnv key, or prefix-derived id
  std::optional<site::MpiImpl> impl;
  std::optional<support::Version> version;
  std::optional<site::CompilerFamily> compiler;
  std::optional<support::Version> compiler_version;
  std::string prefix;                 // install prefix, when determinable
  bool currently_loaded = false;

  std::string display() const;
};

struct EnvironmentDescription {
  std::string site_name;  // which site was described (discovery provenance)
  std::string isa;        // uname -p output
  int bits = 0;           // word size implied by the ISA
  std::string os_type;    // "Linux <kernel>"
  std::string distro;     // from /etc/*release
  std::optional<support::Version> clib_version;
  std::string clib_discovery_method;  // "executed C library" | "library API"
  site::UserEnvTool user_env_tool = site::UserEnvTool::kNone;
  std::vector<DiscoveredStack> stacks;

  // Stacks whose implementation matches, for the TEC's compatibility walk.
  std::vector<const DiscoveredStack*> stacks_of(site::MpiImpl impl) const;
};

class Edc {
 public:
  static EnvironmentDescription discover(const site::Site& s);
};

}  // namespace feam
