#include "feam/phases.hpp"

#include <set>

#include "feam/bdc.hpp"
#include "feam/caches.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"
#include "toolchain/linker.hpp"

namespace feam {

namespace {

// Libraries never copied: the C library itself and the dynamic loader
// (paper Section V.A: "We copy each shared library except for the C
// library").
bool never_copy(std::string_view name) {
  return support::starts_with(name, "libc.so") ||
         support::starts_with(name, "ld-linux");
}

// Appends a structured event to the phase output and mirrors it to the
// process-wide collector (trace files show the same trail the user sees).
void note(SourcePhaseOutput& out, obs::Level level, std::string name,
          std::string message, obs::Fields fields = {}) {
  obs::Event event;
  event.level = level;
  event.name = std::move(name);
  event.message = std::move(message);
  event.fields = std::move(fields);
  obs::emit(event);
  out.events.push_back(std::move(event));
}

}  // namespace

std::vector<std::string> SourcePhaseOutput::render_text() const {
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const auto& event : events) lines.push_back(event.message);
  return lines;
}

support::Result<SourcePhaseOutput> run_source_phase(
    site::Site& guaranteed, std::string_view binary_path,
    const FeamConfig& config, MigrationCaches* caches) {
  using R = support::Result<SourcePhaseOutput>;

  obs::Span phase_span("feam.source_phase",
                       {{"site", guaranteed.name},
                        {"binary", std::string(binary_path)}});
  obs::ScopedTimer phase_timer(obs::histogram("phase.source_ns"));
  obs::counter("phase.source_runs").add();

  SourcePhaseOutput out;
  auto described = caches != nullptr
                       ? caches->bdc.describe(guaranteed, binary_path)
                       : Bdc::describe(guaranteed, binary_path);
  if (!described.ok()) return R::failure(described.full_error());
  out.application = std::move(described).take();
  out.environment = caches != nullptr ? caches->edc.discover(guaranteed)
                                      : Edc::discover(guaranteed);
  out.bundle.application = out.application;
  out.bundle.source_environment = out.environment;

  // Confirm the currently selected stack matches the stack the binary was
  // compiled with (paper V.B).
  const DiscoveredStack* selected = nullptr;
  for (const auto& stack : out.environment.stacks) {
    if (stack.currently_loaded) selected = &stack;
  }
  if (out.application.mpi_impl) {
    if (selected == nullptr) {
      note(out, obs::Level::kWarn, "source.stack_check",
           "warning: no MPI stack selected in this shell");
    } else if (selected->impl != out.application.mpi_impl) {
      note(out, obs::Level::kWarn, "source.stack_check",
           "warning: selected stack (" + selected->display() +
               ") does not match the binary's implementation (" +
               site::mpi_impl_name(*out.application.mpi_impl) + ")",
           {{"selected", selected->display()},
            {"binary_impl", site::mpi_impl_name(*out.application.mpi_impl)}});
    } else {
      note(out, obs::Level::kInfo, "source.stack_check",
           "selected stack matches binary: " + selected->display(),
           {{"selected", selected->display()}});
    }
  }

  // Compile the hello worlds up front: beyond travelling in the bundle,
  // a locally compiled hello world is the BDC's last-resort library
  // locator (paper V.A: "If a locally compiled 'hello world' program is
  // available, the ldd utility is used to reveal the locations of commonly
  // linked against shared libraries").
  const site::MpiStackInstall* selected_install = nullptr;
  if (selected != nullptr) {
    for (const auto& stack : guaranteed.stacks) {
      if (stack.prefix == selected->prefix) selected_install = &stack;
    }
  }
  // Scratch paths carry the source binary's basename so concurrent source
  // phases for different binaries at one site never share (or remove) each
  // other's probes; same-binary phases are serialized by the binary lease.
  const std::string scratch_nonce = site::Vfs::basename(binary_path);
  std::string hello_world_path;
  if (selected_install != nullptr) {
    obs::Span hw_span("source.compile_hello_worlds");
    for (const auto lang :
         {toolchain::Language::kC, toolchain::Language::kFortran}) {
      const auto program = toolchain::mpi_hello_world(lang);
      const std::string path =
          "/tmp/feam_src_" + program.name + "." + scratch_nonce;
      const auto compiled = toolchain::compile_mpi_program(
          guaranteed, program, *selected_install, path);
      if (!compiled.ok()) {
        note(out, obs::Level::kWarn, "source.hello_world",
             "hello world (" + std::string(toolchain::language_name(lang)) +
                 ") did not compile: " + compiled.error(),
             {{"language", std::string(toolchain::language_name(lang))}});
        continue;
      }
      if (const auto* bytes = guaranteed.vfs.read(path)) {
        out.bundle.hello_worlds.push_back({lang, program.name, *bytes});
      }
      if (hello_world_path.empty()) hello_world_path = path;
    }
    hw_span.add_field("compiled",
                      std::to_string(out.bundle.hello_worlds.size()));
  }

  // Gather copies and descriptions of the transitive library closure.
  {
    obs::Span gather_span("source.gather_libraries");
    std::set<std::string> visited;
    std::vector<std::string> queue = out.application.required_libraries;
    std::string current_path(binary_path);
    while (!queue.empty()) {
      const std::string name = queue.back();
      queue.pop_back();
      if (!visited.insert(name).second) continue;
      if (never_copy(name)) continue;

      const auto located = Bdc::locate_libraries(
          guaranteed, current_path, {name}, hello_world_path,
          caches != nullptr ? &caches->resolver : nullptr);
      if (located.empty() || !located.front().second) {
        note(out, obs::Level::kWarn, "source.gather",
             "could not locate " + name + " for copying",
             {{"library", name}});
        continue;
      }
      const std::string& lib_path = *located.front().second;
      const support::Bytes* content = guaranteed.vfs.read(lib_path);
      if (content == nullptr) {
        note(out, obs::Level::kWarn, "source.gather",
             "could not read " + lib_path, {{"path", lib_path}});
        continue;
      }
      auto lib_desc = caches != nullptr
                          ? caches->bdc.describe(guaranteed, lib_path)
                          : Bdc::describe(guaranteed, lib_path);
      if (!lib_desc.ok()) {
        note(out, obs::Level::kWarn, "source.gather",
             "could not describe " + lib_path + ": " + lib_desc.error(),
             {{"path", lib_path}});
        continue;
      }
      for (const auto& dep : lib_desc.value().required_libraries) {
        queue.push_back(dep);
      }
      out.bundle.libraries.push_back(
          {name, lib_path, *content, std::move(lib_desc).take()});
    }
    gather_span.add_field("libraries",
                          std::to_string(out.bundle.libraries.size()));
    obs::counter("source.libraries_gathered")
        .add(out.bundle.libraries.size());
  }

  // Remove the scratch hello-world binaries now that gathering is done.
  for (const auto lang :
       {toolchain::Language::kC, toolchain::Language::kFortran}) {
    guaranteed.vfs.remove("/tmp/feam_src_" +
                          toolchain::mpi_hello_world(lang).name + "." +
                          scratch_nonce);
  }

  note(out, obs::Level::kInfo, "source.bundle",
       "bundle size: " + support::human_size(out.bundle.total_bytes()),
       {{"bytes", std::to_string(out.bundle.total_bytes())},
        {"libraries", std::to_string(out.bundle.libraries.size())},
        {"hello_worlds", std::to_string(out.bundle.hello_worlds.size())}});
  (void)config;
  return out;
}

support::Result<TargetPhaseOutput> run_target_phase(
    site::Site& target, std::string_view binary_path,
    const SourcePhaseOutput* source, const FeamConfig& config,
    const TecOptions& tec_options, MigrationCaches* caches) {
  using R = support::Result<TargetPhaseOutput>;

  obs::Span phase_span("feam.target_phase",
                       {{"site", target.name},
                        {"binary", std::string(binary_path)},
                        {"mode", source != nullptr ? "extended" : "basic"}});
  obs::ScopedTimer phase_timer(obs::histogram("phase.target_ns"));
  obs::counter("phase.target_runs").add();

  TargetPhaseOutput out;
  // Phase-level evidence scope: the BDC describe and EDC discovery below run
  // before Tec::evaluate installs the prediction's own scope, so their
  // evidence lands here and is merged into the prediction afterwards (the
  // EvidenceSet's sort+dedup makes the double coverage harmless).
  obs::EvidenceSet phase_evidence;
  {
    obs::ProvenanceScope provenance_scope(phase_evidence);
    if (!binary_path.empty() && target.vfs.is_file(binary_path)) {
      auto described = caches != nullptr
                           ? caches->bdc.describe(target, binary_path)
                           : Bdc::describe(target, binary_path);
      if (!described.ok()) return R::failure(described.full_error());
      out.application = std::move(described).take();
    } else if (source != nullptr) {
      out.application = source->application;  // description travelled instead
    } else {
      return R::failure(
          "target phase requires either the binary at the target site or a "
          "source-phase bundle");
    }

    out.environment = caches != nullptr ? caches->edc.discover(target)
                                        : Edc::discover(target);
    TecOptions opts = tec_options;
    opts.hello_world_ranks = config.hello_world_ranks;
    if (out.application.mpi_impl) {
      opts.mpiexec_command = config.mpiexec_for(*out.application.mpi_impl);
    }
    out.prediction = Tec::evaluate(target, out.application, binary_path,
                                   source != nullptr ? &source->bundle : nullptr,
                                   opts, caches);
  }
  out.prediction.provenance.merge(phase_evidence);
  phase_span.add_field("ready", out.prediction.ready ? "true" : "false");
  return out;
}

}  // namespace feam
