// FEAM's user-supplied configuration file (paper Section V): before
// running FEAM, the user specifies a serial and a parallel submission
// script for the site — the only site knowledge FEAM requires — plus,
// when a stack does not launch with plain `mpiexec`, the execution
// command per MPI type (e.g. MVAPICH2 1.x clusters used `mpirun_rsh`).
//
// File format: "key = value" lines, '#' comments. Keys:
//   serial_submission_script   = serial.pbs
//   parallel_submission_script = parallel.pbs
//   hello_world_ranks          = 2
//   mpiexec                    = mpiexec           (default command)
//   mpiexec.openmpi            = orterun           (per-type override)
//   mpiexec.mvapich2           = mpirun_rsh
//   mpiexec.mpich2             = mpiexec
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "site/ids.hpp"

namespace feam {

struct FeamConfigFile {
  std::string serial_submission_script = "serial.pbs";
  std::string parallel_submission_script = "parallel.pbs";
  int hello_world_ranks = 2;
  std::string default_mpiexec = "mpiexec";
  std::map<site::MpiImpl, std::string> mpiexec_by_type;

  // The launch command for a given implementation (per-type override or
  // the default).
  const std::string& mpiexec_for(site::MpiImpl impl) const;

  std::string render() const;
  // nullopt on malformed lines or unknown keys (FEAM refuses to guess at
  // user configuration).
  static std::optional<FeamConfigFile> parse(std::string_view text);
};

}  // namespace feam
