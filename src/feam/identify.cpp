#include "feam/identify.hpp"

#include "support/strings.hpp"

namespace feam {

std::optional<site::MpiImpl> identify_mpi(
    const std::vector<std::string_view>& needed_libraries) {
  bool mpich = false;       // libmpich / libmpichf90
  bool openmpi = false;     // libmpi.so / libmpi_f77 / libmpi_cxx
  bool infiniband = false;  // libibverbs / libibumad
  bool nsl = false, util = false;

  for (const auto& name : needed_libraries) {
    if (support::starts_with(name, "libmpich")) {
      mpich = true;
    } else if (support::starts_with(name, "libmpi.so") ||
               support::starts_with(name, "libmpi_f77") ||
               support::starts_with(name, "libmpi_cxx")) {
      openmpi = true;
    } else if (support::starts_with(name, "libibverbs") ||
               support::starts_with(name, "libibumad")) {
      infiniband = true;
    } else if (support::starts_with(name, "libnsl")) {
      nsl = true;
    } else if (support::starts_with(name, "libutil")) {
      util = true;
    }
  }

  // Table I, in precedence order: libmpich + InfiniBand identifiers is
  // MVAPICH2; libmpich alone ("and not other identifiers") is MPICH2;
  // libmpi (supported by the libnsl/libutil pairing) is Open MPI.
  if (mpich && infiniband) return site::MpiImpl::kMvapich2;
  if (mpich) return site::MpiImpl::kMpich2;
  if (openmpi || (nsl && util && infiniband)) return site::MpiImpl::kOpenMpi;
  return std::nullopt;
}

}  // namespace feam
