#include "feam/description.hpp"

#include "support/strings.hpp"

namespace feam {

using support::Json;
using support::Version;

std::optional<Version> soname_version(std::string_view soname) {
  const auto pos = soname.find(".so.");
  if (pos == std::string_view::npos) return std::nullopt;
  return Version::parse(soname.substr(pos + 4));
}

Json BinaryDescription::to_json() const {
  Json j;
  j.set("path", path);
  j.set("file_format", file_format);
  j.set("architecture", architecture);
  j.set("bits", bits);
  j.set("is_shared_library", is_shared_library);
  if (soname) j.set("soname", *soname);
  if (library_version) j.set("library_version", library_version->str());

  Json::Array needed;
  for (const auto& lib : required_libraries) needed.emplace_back(lib);
  j.set("required_libraries", Json(std::move(needed)));

  Json::Array refs;
  for (const auto& ref : version_references) {
    Json entry;
    entry.set("file", ref.file);
    Json::Array versions;
    for (const auto& v : ref.versions) versions.emplace_back(v);
    entry.set("versions", Json(std::move(versions)));
    refs.push_back(std::move(entry));
  }
  j.set("version_references", Json(std::move(refs)));

  if (required_clib_version) {
    j.set("required_clib_version", required_clib_version->str());
  }
  if (build_compiler) j.set("build_compiler", *build_compiler);
  if (build_os) j.set("build_os", *build_os);
  if (build_clib_version) j.set("build_clib_version", build_clib_version->str());
  if (mpi_impl) j.set("mpi_impl", site::mpi_impl_slug(*mpi_impl));
  return j;
}

std::optional<BinaryDescription> BinaryDescription::from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  BinaryDescription d;
  d.path = j.get_string("path");
  d.file_format = j.get_string("file_format");
  if (d.file_format.empty()) return std::nullopt;
  d.architecture = j.get_string("architecture");
  d.bits = static_cast<int>(j.get_int("bits"));
  d.is_shared_library = j.get_bool("is_shared_library");
  if (j.has("soname")) d.soname = j.get_string("soname");
  if (j.has("library_version")) {
    d.library_version = Version::parse(j.get_string("library_version"));
  }
  for (const auto& lib : j["required_libraries"].as_array()) {
    if (lib.is_string()) d.required_libraries.push_back(lib.as_string());
  }
  for (const auto& ref : j["version_references"].as_array()) {
    VersionRef out{ref.get_string("file"), {}};
    for (const auto& v : ref["versions"].as_array()) {
      if (v.is_string()) out.versions.push_back(v.as_string());
    }
    d.version_references.push_back(std::move(out));
  }
  if (j.has("required_clib_version")) {
    d.required_clib_version = Version::parse(j.get_string("required_clib_version"));
  }
  if (j.has("build_compiler")) d.build_compiler = j.get_string("build_compiler");
  if (j.has("build_os")) d.build_os = j.get_string("build_os");
  if (j.has("build_clib_version")) {
    d.build_clib_version = Version::parse(j.get_string("build_clib_version"));
  }
  if (j.has("mpi_impl")) {
    const std::string slug = j.get_string("mpi_impl");
    for (const auto impl : {site::MpiImpl::kOpenMpi, site::MpiImpl::kMpich2,
                            site::MpiImpl::kMvapich2}) {
      if (slug == site::mpi_impl_slug(impl)) d.mpi_impl = impl;
    }
  }
  return d;
}

}  // namespace feam
