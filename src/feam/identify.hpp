// MPI implementation identification from link-level dependencies — the
// paper's Table I. MPI is an interface specification, not a link-level
// one, so each implementation leaves a distinct fingerprint in DT_NEEDED:
//
//   MVAPICH2 : libmpich/libmpichf90 AND libibverbs/libibumad
//   Open MPI : libmpi (applications also carry libnsl, libutil)
//   MPICH2   : libmpich/libmpichf90 and no InfiniBand identifiers
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "site/ids.hpp"

namespace feam {

// Identifies the implementation an application or library was compiled
// with from its DT_NEEDED list; nullopt when no MPI identifier is present
// (a serial binary). Takes views so a freshly parsed ElfFile's needed()
// list can be classified without materializing strings.
std::optional<site::MpiImpl> identify_mpi(
    const std::vector<std::string_view>& needed_libraries);

}  // namespace feam
