// BinaryDescription: the information FEAM's Binary Description Component
// gathers about an application binary or shared library (paper Figure 3):
//
//   - ISA and file format of the binary
//   - library name and version, if the binary is a shared library
//   - required shared libraries
//   - C library version requirements
//   - MPI stack, operating system, and C library version used to build it
//
// Serializes to/from JSON so source-phase output can be bundled, copied to
// a target site, and consumed there without the binary being present.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "site/ids.hpp"
#include "support/json.hpp"
#include "support/version.hpp"

namespace feam {

struct BinaryDescription {
  std::string path;             // where the binary was described
  std::string file_format;      // "elf64-x86-64" (objdump's BFD name)
  std::string architecture;     // "i386:x86-64"
  int bits = 0;                 // 32 or 64 (used for library selection)
  bool is_shared_library = false;

  // For shared libraries: the official shared object name from DT_SONAME
  // and the version embedded in it ("libmpich.so.1.2" -> 1.2).
  std::optional<std::string> soname;
  std::optional<support::Version> library_version;

  // DT_NEEDED, in link order.
  std::vector<std::string> required_libraries;

  // Version references grouped by providing library.
  struct VersionRef {
    std::string file;
    std::vector<std::string> versions;
  };
  std::vector<VersionRef> version_references;

  // The *required* C library version: the newest GLIBC_* node the binary
  // actually references — not the version it was built with (III.C).
  std::optional<support::Version> required_clib_version;

  // Build-environment facts recovered from the .comment section.
  std::optional<std::string> build_compiler;       // "GCC: (GNU) 4.1.2"
  std::optional<std::string> build_os;             // "CentOS 4.9"
  std::optional<support::Version> build_clib_version;

  // Link-level MPI identification (Table I); nullopt for serial binaries
  // and for libraries that are not MPI libraries.
  std::optional<site::MpiImpl> mpi_impl;

  support::Json to_json() const;
  static std::optional<BinaryDescription> from_json(const support::Json& j);
};

// Extracts the embedded version from a shared object name:
// "libmpich.so.1.2" -> 1.2, "libgfortran.so.1" -> 1; nullopt when the
// soname carries no version suffix ("libimf.so").
std::optional<support::Version> soname_version(std::string_view soname);

}  // namespace feam
