// FEAM's two phases (paper Figure 2).
//
// Source phase (optional, run once per binary at a guaranteed execution
// environment): BDC describes the binary, EDC describes the environment
// and confirms the selected MPI stack matches, shared-library copies are
// gathered, and hello-world programs are compiled with the application's
// stack. The output bundle travels to each target site.
//
// Target phase (required, run at every target site): BDC describes the
// migrated binary (or the bundle's description stands in when the binary
// did not travel), EDC describes the target, and the TEC produces the
// prediction plus the matching configuration.
#pragma once

#include <optional>
#include <string>

#include "feam/bundle.hpp"
#include "feam/config.hpp"
#include "feam/tec.hpp"
#include "obs/event.hpp"
#include "site/site.hpp"
#include "support/result.hpp"

namespace feam {

struct MigrationCaches;  // caches.hpp

// User-provided configuration (paper Section V): the only site knowledge
// FEAM requires from the user is how to submit jobs, plus the execution
// command if a stack does not use plain `mpiexec`. See config.hpp for the
// file format.
using FeamConfig = FeamConfigFile;

struct SourcePhaseOutput {
  BinaryDescription application;
  EnvironmentDescription environment;
  Bundle bundle;

  // Structured record of what the phase observed and decided (stack-match
  // confirmation, gather failures, bundle size). Each event also reaches
  // the process-wide obs collector when tracing is enabled.
  std::vector<obs::Event> events;

  // Text bridge: the events' human-readable messages, one line each —
  // what the CLI prints (and what `log` used to hold).
  std::vector<std::string> render_text() const;
};

// Runs the source phase at a guaranteed execution environment for the
// binary at `binary_path`. Fails only when the binary cannot be described.
// `caches` (optional, see caches.hpp) memoizes the application/library
// descriptions and the environment scan; nullptr is the uncached path.
support::Result<SourcePhaseOutput> run_source_phase(
    site::Site& guaranteed, std::string_view binary_path,
    const FeamConfig& config = {}, MigrationCaches* caches = nullptr);

struct TargetPhaseOutput {
  BinaryDescription application;
  EnvironmentDescription environment;
  Prediction prediction;
};

// Runs the target phase. `binary_path` may be empty when the binary did
// not travel (then `source` must be provided). `source` == nullptr gives
// the basic prediction; with it, the extended prediction and resolution.
support::Result<TargetPhaseOutput> run_target_phase(
    site::Site& target, std::string_view binary_path,
    const SourcePhaseOutput* source = nullptr, const FeamConfig& config = {},
    const TecOptions& tec_options = {}, MigrationCaches* caches = nullptr);

}  // namespace feam
