#include "feam/bdc.hpp"

#include <algorithm>

#include "binutils/ldd.hpp"
#include "binutils/objdump.hpp"
#include "binutils/readelf.hpp"
#include "feam/identify.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "toolchain/glibc.hpp"

namespace feam {

namespace {

using support::Version;

// "GCC: (GNU) 4.1.2 (CentOS 4.9)" -> compiler "GCC: (GNU) 4.1.2",
// build OS "CentOS 4.9". The trailing parenthetical carries the distro
// stamp (Red Hat / SUSE compiler packages embed it).
void parse_compiler_comment(const std::string& comment,
                            BinaryDescription& out) {
  const auto open = comment.rfind('(');
  const auto close = comment.rfind(')');
  if (open != std::string::npos && close != std::string::npos && close > open &&
      close == comment.size() - 1 && open > 0) {
    out.build_compiler = std::string(support::trim(comment.substr(0, open)));
    out.build_os = comment.substr(open + 1, close - open - 1);
  } else {
    out.build_compiler = comment;
  }
}

}  // namespace

std::uint64_t description_stamp(const BinaryDescription& d) {
  using support::fnv1a_mix;
  // Every field except `path` participates; absent optionals fold a fixed
  // marker so "no soname" and soname "-" cannot collide with each other's
  // neighbours.
  std::uint64_t h = support::fnv1a(d.file_format);
  h = fnv1a_mix(h, d.architecture);
  h = fnv1a_mix(h, static_cast<std::uint64_t>(d.bits));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(d.is_shared_library ? 1 : 0));
  h = fnv1a_mix(h, d.soname ? std::string_view(*d.soname) : "\x01");
  h = fnv1a_mix(h, d.library_version ? d.library_version->str() : "\x01");
  h = fnv1a_mix(h, static_cast<std::uint64_t>(d.required_libraries.size()));
  for (const auto& lib : d.required_libraries) h = fnv1a_mix(h, lib);
  for (const auto& ref : d.version_references) {
    h = fnv1a_mix(h, ref.file);
    for (const auto& v : ref.versions) h = fnv1a_mix(h, v);
  }
  h = fnv1a_mix(h, d.required_clib_version ? d.required_clib_version->str()
                                           : "\x01");
  h = fnv1a_mix(h, d.build_compiler ? std::string_view(*d.build_compiler)
                                    : "\x01");
  h = fnv1a_mix(h, d.build_os ? std::string_view(*d.build_os) : "\x01");
  h = fnv1a_mix(h, d.build_clib_version ? d.build_clib_version->str() : "\x01");
  h = fnv1a_mix(h, d.mpi_impl ? site::mpi_impl_slug(*d.mpi_impl) : "\x01");
  return h;
}

obs::Evidence description_evidence(std::string_view site_name,
                                   std::string_view path,
                                   const BinaryDescription& d) {
  return {"bdc", "binary", std::string(site_name), std::string(path),
          d.file_format + ", " +
              std::to_string(d.required_libraries.size()) + " needed",
          description_stamp(d)};
}

support::Result<BinaryDescription> Bdc::describe(const site::Site& s,
                                                 std::string_view path) {
  using R = support::Result<BinaryDescription>;

  obs::Span span("bdc.describe", {{"path", std::string(path)}});
  obs::ScopedTimer timer(obs::histogram("bdc.parse_ns"));
  obs::counter("bdc.describe_calls").add();

  const auto dump = binutils::objdump_p(s.vfs, path);
  if (!dump.ok()) {
    return R::failure(dump.code(), "BDC: " + dump.error());
  }
  const auto parsed = binutils::parse_objdump_output(dump.value());
  if (!parsed) {
    return R::failure("BDC: could not interpret objdump output for " +
                      std::string(path));
  }

  BinaryDescription d;
  d.path = std::string(path);
  d.file_format = parsed->file_format;
  d.architecture = parsed->architecture;
  d.bits = parsed->bits;
  d.is_shared_library = parsed->is_shared_object;
  d.required_libraries = parsed->needed;
  if (parsed->soname) {
    d.soname = parsed->soname;
    d.library_version = soname_version(*parsed->soname);
  }
  for (const auto& ref : parsed->version_references) {
    d.version_references.push_back({ref.file, ref.versions});
  }

  // Required C library version: the newest GLIBC_* node referenced
  // anywhere (Version References); for libraries, their own Version
  // Definitions can also carry GLIBC nodes (glibc satellites) — the paper
  // considers both sections.
  std::optional<Version> newest;
  const auto consider = [&](const std::string& node) {
    if (const auto v = toolchain::parse_glibc_version(node)) {
      if (!newest || *v > *newest) newest = *v;
    }
  };
  for (const auto& ref : parsed->version_references) {
    for (const auto& version : ref.versions) consider(version);
  }
  for (const auto& def : parsed->version_definitions) consider(def);
  d.required_clib_version = newest;

  // .comment stamps.
  if (const auto comments = binutils::readelf_p_comment(s.vfs, path);
      comments.ok()) {
    for (const auto& comment : binutils::parse_comment_dump(comments.value())) {
      if (support::starts_with(comment, "GCC:") ||
          support::starts_with(comment, "Intel") ||
          support::starts_with(comment, "PGI")) {
        parse_compiler_comment(comment, d);
      } else if (const auto pos = comment.find("glibc ");
                 pos != std::string::npos) {
        d.build_clib_version = Version::parse(
            support::trim(std::string_view(comment).substr(pos + 6)));
      }
    }
  }

  // For shared libraries, the library's own soname participates in the
  // identification (an MPI implementation library identifies itself even
  // though it does not link against another copy of itself).
  std::vector<std::string_view> identity(d.required_libraries.begin(),
                                         d.required_libraries.end());
  if (d.soname) identity.push_back(*d.soname);
  d.mpi_impl = identify_mpi(identity);

  if (obs::provenance_active()) {
    obs::record_evidence(description_evidence(s.name, path, d));
  }
  return d;
}

std::vector<std::pair<std::string, std::optional<std::string>>>
Bdc::locate_libraries(const site::Site& s, std::string_view path,
                      const std::vector<std::string>& needed,
                      std::string_view hello_world_path,
                      binutils::ResolverCache* cache) {
  obs::ScopedTimer timer(obs::histogram("bdc.locate_ns"));
  obs::counter("bdc.locate_calls").add();
  std::vector<std::pair<std::string, std::optional<std::string>>> out;
  for (const auto& name : needed) out.emplace_back(name, std::nullopt);

  const auto fill_from_ldd = [&](std::string_view target) {
    const auto text = binutils::ldd(s, target, false, cache);
    if (!text.ok()) return;
    for (const auto& entry : binutils::parse_ldd_output(text.value())) {
      if (!entry.path) continue;
      for (auto& [name, location] : out) {
        if (name == entry.name && !location) location = entry.path;
      }
    }
  };

  // Primary: ldd on the binary itself.
  fill_from_ldd(path);

  // Fallback 1: locate (filename index).
  if (s.locate_available) {
    for (auto& [name, location] : out) {
      if (location) continue;
      for (const auto& hit : s.vfs.locate(name)) {
        if (site::Vfs::basename(hit) == name && s.vfs.is_file(hit)) {
          location = s.vfs.resolve(hit).value_or(hit);
          break;
        }
      }
    }
  }

  // Fallback 2: find over common library locations + LD_LIBRARY_PATH.
  std::vector<std::string> roots = {"/lib", "/lib64", "/usr/lib",
                                    "/usr/lib64", "/usr/local/lib",
                                    "/usr/local/lib64", "/opt"};
  for (const auto& dir : s.env.ld_library_path()) roots.push_back(dir);
  for (auto& [name, location] : out) {
    if (location) continue;
    for (const auto& root : roots) {
      const auto hits =
          s.vfs.find(root, [&](std::string_view base) { return base == name; });
      for (const auto& hit : hits) {
        if (s.vfs.is_file(hit)) {
          location = s.vfs.resolve(hit).value_or(hit);
          break;
        }
      }
      if (location) break;
    }
  }

  // Fallback 3: the ldd output of a locally compiled hello-world program
  // reveals where commonly linked libraries live.
  if (!hello_world_path.empty()) {
    fill_from_ldd(hello_world_path);
  }
  return out;
}

}  // namespace feam
