#include "feam/bundle_archive.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace feam {

namespace {

using support::ByteReader;
using support::Bytes;
using support::ByteWriter;
using support::Endian;

constexpr std::string_view kMagic = "FEAMBNDL";
constexpr std::uint32_t kVersion = 1;

}  // namespace

support::Bytes pack_bundle(const Bundle& bundle) {
  obs::Span span("bundle.pack",
                 {{"libraries", std::to_string(bundle.libraries.size())},
                  {"hello_worlds",
                   std::to_string(bundle.hello_worlds.size())}});
  obs::ScopedTimer timer(obs::histogram("bundle.pack_ns"));

  // Manifest: the standard bundle manifest plus the environment facts the
  // target side may want to display.
  support::Json manifest = bundle.manifest();
  support::Json env;
  env.set("site", bundle.source_environment.site_name);
  env.set("isa", bundle.source_environment.isa);
  env.set("distro", bundle.source_environment.distro);
  if (bundle.source_environment.clib_version) {
    env.set("clib_version", bundle.source_environment.clib_version->str());
  }
  manifest.set("source_environment", env);
  const std::string manifest_text = manifest.dump();

  ByteWriter w(Endian::kLittle);
  w.bytes(kMagic);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(manifest_text.size()));
  w.bytes(manifest_text);
  w.u32(static_cast<std::uint32_t>(bundle.libraries.size() +
                                   bundle.hello_worlds.size()));
  const auto entry = [&](const std::string& name, const Bytes& content) {
    w.u32(static_cast<std::uint32_t>(name.size()));
    w.bytes(name);
    w.u32(static_cast<std::uint32_t>(content.size()));
    w.bytes(content);
  };
  for (const auto& lib : bundle.libraries) entry(lib.name, lib.content);
  for (const auto& hw : bundle.hello_worlds) entry(hw.name, hw.content);
  support::Bytes archive = w.take();
  span.add_field("bytes", std::to_string(archive.size()));
  obs::counter("bundle.pack_bytes").add(archive.size());
  obs::emit(obs::Level::kDebug, "bundle.pack",
            "packed bundle: " + std::to_string(archive.size()) + " bytes",
            {{"bytes", std::to_string(archive.size())},
             {"libraries", std::to_string(bundle.libraries.size())}});
  return archive;
}

support::Result<Bundle> unpack_bundle(const support::Bytes& archive) {
  using R = support::Result<Bundle>;
  obs::Span span("bundle.unpack",
                 {{"bytes", std::to_string(archive.size())}});
  obs::ScopedTimer timer(obs::histogram("bundle.unpack_ns"));
  obs::counter("bundle.unpack_bytes").add(archive.size());
  ByteReader r(archive, Endian::kLittle);

  // Magic + version.
  if (archive.size() < kMagic.size() + 8) return R::failure("archive truncated");
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (archive[i] != static_cast<std::uint8_t>(kMagic[i])) {
      return R::failure("not a FEAM bundle (bad magic)");
    }
  }
  std::size_t pos = kMagic.size();
  const auto version = r.u32(pos);
  pos += 4;
  if (!version || *version != kVersion) {
    return R::failure("unsupported bundle version");
  }

  const auto read_block = [&](std::size_t& cursor) -> std::optional<Bytes> {
    const auto len = r.u32(cursor);
    if (!len) return std::nullopt;
    cursor += 4;
    if (cursor + *len > archive.size()) return std::nullopt;
    Bytes out(archive.begin() + static_cast<std::ptrdiff_t>(cursor),
              archive.begin() + static_cast<std::ptrdiff_t>(cursor + *len));
    cursor += *len;
    return out;
  };

  const auto manifest_bytes = read_block(pos);
  if (!manifest_bytes) return R::failure("archive truncated in manifest");
  const auto manifest = support::Json::parse(
      std::string(manifest_bytes->begin(), manifest_bytes->end()));
  if (!manifest) return R::failure("bundle manifest is not valid JSON");

  Bundle bundle;
  auto app = BinaryDescription::from_json((*manifest)["application"]);
  if (!app) return R::failure("bundle manifest lacks an application description");
  bundle.application = std::move(*app);
  const auto& env = (*manifest)["source_environment"];
  bundle.source_environment.site_name = env.get_string("site");
  bundle.source_environment.isa = env.get_string("isa");
  bundle.source_environment.distro = env.get_string("distro");
  if (env.has("clib_version")) {
    bundle.source_environment.clib_version =
        support::Version::parse(env.get_string("clib_version"));
  }

  const auto count = r.u32(pos);
  if (!count) return R::failure("archive truncated at payload count");
  pos += 4;

  // Payload entries, matched against the manifest by position.
  const auto& manifest_libs = (*manifest)["libraries"].as_array();
  const auto& manifest_hellos = (*manifest)["hello_worlds"].as_array();
  if (*count != manifest_libs.size() + manifest_hellos.size()) {
    return R::failure("payload count disagrees with manifest");
  }
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto name_bytes = read_block(pos);
    if (!name_bytes) return R::failure("archive truncated in entry name");
    const std::string name(name_bytes->begin(), name_bytes->end());
    auto content = read_block(pos);
    if (!content) return R::failure("archive truncated in entry content");

    if (i < manifest_libs.size()) {
      const auto& meta = manifest_libs[i];
      if (meta.get_string("name") != name) {
        return R::failure("payload order disagrees with manifest");
      }
      auto desc = BinaryDescription::from_json(meta["description"]);
      if (!desc) return R::failure("library entry lacks a description");
      bundle.libraries.push_back({name, meta.get_string("origin_path"),
                                  std::move(*content), std::move(*desc)});
    } else {
      const auto& meta = manifest_hellos[i - manifest_libs.size()];
      if (meta.get_string("name") != name) {
        return R::failure("payload order disagrees with manifest");
      }
      HelloWorldCopy hw;
      hw.name = name;
      const std::string lang = meta.get_string("language");
      hw.language = lang == "Fortran" ? toolchain::Language::kFortran
                    : lang == "C++"   ? toolchain::Language::kCxx
                                      : toolchain::Language::kC;
      hw.content = std::move(*content);
      bundle.hello_worlds.push_back(std::move(hw));
    }
  }
  if (pos != archive.size()) return R::failure("trailing bytes after payload");
  return bundle;
}

}  // namespace feam
