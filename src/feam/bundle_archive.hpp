// On-disk form of a source-phase bundle: a single archive file the user
// copies to each target site (paper Section V: "The output from a source
// phase is bundled for the user and must be copied to each target site").
//
// Format (all integers little-endian):
//   magic   "FEAMBNDL"            8 bytes
//   version u32                   currently 1
//   mlen    u32, manifest JSON    bundle + application + environment
//                                 descriptions (no file contents)
//   count   u32                   number of payload entries
//   entries: nlen u32, name bytes, clen u32, content bytes
// Payload entries carry library copies first (in manifest order), then
// hello worlds. Unpacking validates the magic, version, bounds of every
// length field, and consistency between manifest and payload.
#pragma once

#include "feam/bundle.hpp"
#include "support/byte_io.hpp"
#include "support/result.hpp"

namespace feam {

// Serializes the bundle into one archive blob. Deterministic: equal
// bundles produce byte-identical archives.
support::Bytes pack_bundle(const Bundle& bundle);

// Parses an archive back. Fails on truncation, bad magic/version, or a
// manifest/payload mismatch. The source_environment is restored only
// partially (the fields the manifest carries); resolution and hello-world
// tests need nothing more.
support::Result<Bundle> unpack_bundle(const support::Bytes& archive);

}  // namespace feam
