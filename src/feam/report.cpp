#include "feam/report.hpp"

#include "support/strings.hpp"

namespace feam {

namespace {

void describe_binary(std::string& out, const BinaryDescription& app) {
  out += "application binary: " + app.path + "\n";
  out += "  file format ............. " + app.file_format + " (" +
         std::to_string(app.bits) + "-bit " + app.architecture + ")\n";
  if (app.mpi_impl) {
    out += "  MPI implementation ...... " +
           std::string(site::mpi_impl_name(*app.mpi_impl)) + "\n";
  } else {
    out += "  MPI implementation ...... (none detected)\n";
  }
  out += "  required libraries ...... " +
         (app.required_libraries.empty()
              ? "(none — statically linked)"
              : support::join(app.required_libraries, ", ")) +
         "\n";
  out += "  required C library ...... " +
         (app.required_clib_version ? app.required_clib_version->str()
                                    : "(none)") +
         "\n";
  if (app.build_os) out += "  built on ................ " + *app.build_os + "\n";
  if (app.build_clib_version) {
    out += "  built against glibc ..... " + app.build_clib_version->str() + "\n";
  }
  if (app.build_compiler) {
    out += "  compiler ................ " + *app.build_compiler + "\n";
  }
}

void describe_environment(std::string& out, const EnvironmentDescription& env) {
  out += "target environment:\n";
  out += "  ISA ..................... " + env.isa + "\n";
  out += "  operating system ........ " + env.distro +
         (env.os_type.empty() ? "" : " (" + env.os_type + ")") + "\n";
  out += "  C library ............... " +
         (env.clib_version ? env.clib_version->str() : "unknown") + " (via " +
         env.clib_discovery_method + ")\n";
  out += "  user-environment tool ... " +
         std::string(site::user_env_tool_name(env.user_env_tool)) + "\n";
  out += "  MPI stacks .............. ";
  std::vector<std::string> stacks;
  for (const auto& stack : env.stacks) stacks.push_back(stack.display());
  out += (stacks.empty() ? "(none)" : support::join(stacks, "; ")) + "\n";
}

}  // namespace

std::string render_target_report(const TargetPhaseOutput& output) {
  std::string out = "=== FEAM target phase report ===\n\n";
  describe_binary(out, output.application);
  out += "\n";
  describe_environment(out, output.environment);

  out += "\ndeterminants:\n";
  for (const auto& det : output.prediction.determinants) {
    out += "  [";
    out += !det.evaluated ? "-" : det.compatible ? "x" : " ";
    out += "] ";
    out += determinant_name(det.kind);
    out += ": ";
    out += !det.evaluated ? "not evaluated" : det.detail;
    out += "\n";
  }

  if (!output.prediction.missing_libraries.empty()) {
    out += "\nshared library resolution:\n";
    out += "  missing ....... " +
           support::join(output.prediction.missing_libraries, ", ") + "\n";
    out += "  resolved ...... " +
           (output.prediction.resolved_libraries.empty()
                ? "(none)"
                : support::join(output.prediction.resolved_libraries, ", ")) +
           "\n";
    if (!output.prediction.unresolved_libraries.empty()) {
      out += "  unresolved .... " +
             support::join(output.prediction.unresolved_libraries, ", ") + "\n";
    }
  }

  if (!output.prediction.log.empty()) {
    out += "\nevaluation trace:\n";
    for (const auto& line : output.prediction.log) {
      out += "  " + line + "\n";
    }
  }

  out += "\nprediction: ";
  out += output.prediction.ready ? "READY — execution is predicted to succeed"
                                 : "NOT READY — execution cannot occur";
  out += "\n";
  if (output.prediction.ready) {
    out += "\nmatching configuration script:\n";
    out += output.prediction.configuration_script;
  }
  return out;
}

std::string render_source_report(const SourcePhaseOutput& output) {
  std::string out = "=== FEAM source phase report ===\n\n";
  describe_binary(out, output.application);
  out += "\ngathered library copies:\n";
  if (output.bundle.libraries.empty()) {
    out += "  (none)\n";
  }
  for (const auto& lib : output.bundle.libraries) {
    out += "  " + lib.name + " (" + support::human_size(lib.content.size()) +
           ") from " + lib.origin_path + "\n";
  }
  out += "hello worlds: " + std::to_string(output.bundle.hello_worlds.size()) +
         "\n";
  out += "bundle size: " + support::human_size(output.bundle.total_bytes()) +
         "\n";
  if (!output.events.empty()) {
    out += "\nlog:\n";
    for (const auto& line : output.render_text()) out += "  " + line + "\n";
  }
  return out;
}

}  // namespace feam
