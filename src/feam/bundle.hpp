// The source-phase bundle (paper Sections IV, V): descriptions and copies
// of every shared library an application is linked against (except the C
// library), plus MPI "hello world" binaries compiled in the guaranteed
// execution environment with the application's own MPI stack. The bundle
// is what a user copies to each target site to enable FEAM's resolution
// model and extended compatibility tests.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "feam/description.hpp"
#include "feam/edc.hpp"
#include "support/byte_io.hpp"
#include "support/json.hpp"
#include "toolchain/compiler.hpp"

namespace feam {

struct LibraryCopy {
  std::string name;         // NEEDED name / soname ("libmpi.so.0")
  std::string origin_path;  // where it lived in the guaranteed environment
  support::Bytes content;
  BinaryDescription description;
};

struct HelloWorldCopy {
  toolchain::Language language = toolchain::Language::kC;
  std::string name;  // "hello_mpi_c"
  support::Bytes content;
};

class Bundle {
 public:
  BinaryDescription application;
  EnvironmentDescription source_environment;
  std::vector<LibraryCopy> libraries;
  std::vector<HelloWorldCopy> hello_worlds;

  const LibraryCopy* find_library(std::string_view name) const;

  // Total payload size — the paper reports ~45M for a bundle covering all
  // test binaries at a site (Section VI.C).
  std::size_t total_bytes() const;

  // Self-describing manifest (descriptions and sizes; contents travel as
  // separate files, as in the original tool's tarball).
  support::Json manifest() const;
};

}  // namespace feam
