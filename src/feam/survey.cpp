#include "feam/survey.hpp"

#include <algorithm>
#include <utility>

#include "feam/caches.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "site/lease.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace feam {

std::size_t SurveyReport::ready_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [](const SurveyEntry& e) { return e.ready; }));
}

std::string SurveyReport::render() const {
  support::TextTable table({"#", "Site", "Verdict", "Detail"});
  int rank = 1;
  for (const auto& entry : entries) {
    std::string verdict = entry.ready ? "READY" : "not ready";
    if (entry.ready && entry.resolved_copies > 0) {
      verdict += " (" + std::to_string(entry.resolved_copies) + " copies)";
    }
    table.add_row({std::to_string(rank++), entry.site_name, verdict,
                   entry.ready ? entry.reason
                               : entry.blocking_determinant + ": " +
                                     entry.reason});
  }
  return table.render();
}

namespace {

// Assesses one site. When other workers may touch the site concurrently,
// the caller must lease the probe subtrees (binary path and the default
// resolution root) and wrap the call in a shell session. The site is
// restored exactly as found: migrated binary and resolution directories
// removed (including the default resolution root, which may exist even
// when the phase errored after partial resolution), loaded modules
// reinstated.
SurveyEntry assess_site(site::Site& s, const std::string& path,
                        const support::Bytes& binary_bytes,
                        const SourcePhaseOutput* source,
                        const FeamConfig& config,
                        MigrationCaches* caches) {
  obs::Span site_span("survey.site", {{"site", s.name}});
  obs::counter("survey.sites_assessed").add();
  const std::vector<std::string> modules_before = s.loaded_modules();
  s.vfs.write_file(path, binary_bytes);
  const auto result =
      run_target_phase(s, path, source, config, TecOptions{}, caches);
  SurveyEntry entry;
  entry.site_name = s.name;
  if (!result.ok()) {
    entry.blocking_determinant = "error";
    entry.reason = result.error();
  } else {
    entry.prediction = result.value().prediction;
    entry.ready = entry.prediction.ready;
    entry.resolved_copies = entry.prediction.resolved_libraries.size();
    if (entry.ready) {
      entry.reason = entry.resolved_copies == 0
                         ? "all determinants compatible"
                         : "compatible after resolving " +
                               std::to_string(entry.resolved_copies) +
                               " libraries";
    } else {
      for (const auto& det : entry.prediction.determinants) {
        if (det.evaluated && !det.compatible) {
          entry.blocking_determinant = determinant_name(det.kind);
          entry.reason = det.detail;
          break;
        }
      }
      if (entry.blocking_determinant.empty()) {
        entry.blocking_determinant = "unknown";
        entry.reason = "no determinant reported failure";
      }
    }
  }
  // Leave the site as found.
  s.vfs.remove(path);
  for (const auto& dir : entry.prediction.resolution_dirs) s.vfs.remove(dir);
  s.vfs.remove(TecOptions{}.resolution_root);
  if (s.loaded_modules() != modules_before) {
    s.unload_all_modules();
    for (const auto& name : modules_before) s.load_module(name);
  }
  site_span.add_field("ready", entry.ready ? "true" : "false");
  obs::emit(obs::Level::kInfo, "survey.verdict",
            entry.site_name + ": " + (entry.ready ? "ready" : "not ready"),
            {{"site", entry.site_name},
             {"ready", entry.ready ? "true" : "false"},
             {"blocking", entry.blocking_determinant},
             {"reason", entry.reason}});
  return entry;
}

}  // namespace

SurveyReport survey_sites(std::span<site::Site* const> sites,
                          std::string_view binary_name,
                          const support::Bytes& binary_bytes,
                          const SourcePhaseOutput* source,
                          const FeamConfig& config,
                          const SurveyOptions& options) {
  SurveyReport report;
  obs::Span survey_span("feam.survey",
                        {{"binary", std::string(binary_name)},
                         {"sites", std::to_string(sites.size())},
                         {"jobs", std::to_string(options.jobs)}});
  const std::string path = "/home/user/" + std::string(binary_name);

  // Input-order result slots: the report is independent of completion
  // order, so every job count produces the same ranking.
  std::vector<SurveyEntry> entries(sites.size());
  if (options.jobs > 1 && sites.size() > 1) {
    support::ThreadPool pool(options.jobs, obs::pool_task_recorder());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      pool.submit([&, i] {
        site::Site& s = *sites[i];
        // Survey fans out across *distinct* sites, so these leases are
        // uncontended within one survey; they exist to coordinate with any
        // concurrent migration writing the same probe subtree, and the
        // shell session keeps module churn private to this worker.
        site::SubtreeLeases lease(
            {{&s, path}, {&s, TecOptions{}.resolution_root}});
        site::ShellSession shell(s);
        entries[i] = assess_site(s, path, binary_bytes, source, config,
                                 options.caches);
      });
    }
    pool.wait();
  } else {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      entries[i] = assess_site(*sites[i], path, binary_bytes, source, config,
                               options.caches);
    }
  }
  report.entries = std::move(entries);

  // Rank: ready first (fewer copies to ship first), then blocked sites
  // alphabetically by determinant for a stable, readable report.
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const SurveyEntry& a, const SurveyEntry& b) {
                     if (a.ready != b.ready) return a.ready;
                     if (a.ready) return a.resolved_copies < b.resolved_copies;
                     return a.blocking_determinant < b.blocking_determinant;
                   });
  return report;
}

}  // namespace feam
