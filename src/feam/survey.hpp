// Multi-site assessment: the workflow the paper's conclusion motivates —
// "For scientists who do not have much experience, time, or support to
// explore new computing sites ... FEAM provides an efficient automated
// solution for quickly assessing many new computing sites."
//
// Given a binary (and optionally its source-phase bundle), runs the target
// phase at every candidate site and ranks the verdicts: ready sites first
// (fewest resolved copies first — less to ship), then not-ready sites
// grouped by the determinant that blocked them.
//
// Sites are independent, so with `SurveyOptions::jobs > 1` the assessments
// fan out across a thread pool — each worker holds its site's lease for
// the whole assessment, and results land in input-order slots, so the
// report is identical at any job count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "feam/phases.hpp"
#include "site/site.hpp"
#include "support/byte_io.hpp"

namespace feam {

struct SurveyEntry {
  std::string site_name;
  bool ready = false;
  std::string blocking_determinant;  // empty when ready
  std::string reason;
  std::size_t resolved_copies = 0;   // libraries resolution had to install
  Prediction prediction;
};

struct SurveyReport {
  std::vector<SurveyEntry> entries;  // ranked best-first
  std::size_t ready_count() const;
  std::string render() const;
};

struct SurveyOptions {
  // Worker threads assessing sites concurrently; 1 = inline sequential.
  int jobs = 1;
  // Optional memoization bundle (caches.hpp); nullptr = uncached.
  MigrationCaches* caches = nullptr;
};

// Surveys `sites` for the binary `binary_bytes` (written to each site as
// /home/user/<binary_name>). `source` enables the extended prediction and
// resolution. Sites are evaluated independently; each is restored exactly
// as found — migrated binary removed, resolution directories removed, and
// the module load state reinstated — even when the target phase errors.
SurveyReport survey_sites(std::span<site::Site* const> sites,
                          std::string_view binary_name,
                          const support::Bytes& binary_bytes,
                          const SourcePhaseOutput* source = nullptr,
                          const FeamConfig& config = {},
                          const SurveyOptions& options = {});

}  // namespace feam
