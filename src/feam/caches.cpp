#include "feam/caches.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "feam/bdc.hpp"
#include "obs/metrics.hpp"

namespace feam {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

// FNV-1a folding 64-bit words, then the tail byte-wise.
std::uint64_t fnv_region(std::uint64_t h, const std::uint8_t* p,
                         std::size_t n) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kFnvPrime;
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    h = (h ^ *p++) * kFnvPrime;
  }
  return h;
}

// Footprint estimates for the cache.bytes{cache=...} gauges: the payload
// bytes an entry retains (string/vector contents plus the fixed struct),
// not allocator-exact sizes — stable across allocators, cheap to compute,
// and honest about what dominates (the retained binary bytes and the
// per-stack strings).
std::uint64_t string_bytes(const std::string& s) {
  return sizeof(std::string) + s.size();
}

std::uint64_t description_bytes(const BinaryDescription& d) {
  std::uint64_t total = sizeof(BinaryDescription);
  total += d.path.size() + d.file_format.size() + d.architecture.size();
  if (d.soname) total += d.soname->size();
  for (const auto& lib : d.required_libraries) total += string_bytes(lib);
  for (const auto& ref : d.version_references) {
    total += string_bytes(ref.file) + sizeof(ref.versions);
    for (const auto& v : ref.versions) total += string_bytes(v);
  }
  if (d.build_compiler) total += d.build_compiler->size();
  if (d.build_os) total += d.build_os->size();
  return total;
}

std::uint64_t environment_bytes(const EnvironmentDescription& e) {
  std::uint64_t total = sizeof(EnvironmentDescription);
  total += e.site_name.size() + e.isa.size() + e.os_type.size() +
           e.distro.size() + e.clib_discovery_method.size();
  for (const auto& stack : e.stacks) {
    total += sizeof(DiscoveredStack) + stack.id.size() + stack.prefix.size();
  }
  return total;
}

}  // namespace

std::uint64_t content_hash(const support::Bytes& bytes) {
  // Constant-work sampled hash: the size plus the head, tail, and a few
  // evenly spaced interior windows. Multi-megabyte binaries hash in a
  // bounded ~10 KiB of reads, so a cache lookup costs the same for a
  // 100 KiB tool and a 50 MiB bundle library. The cache always verifies
  // candidate hits with a full byte compare, so the hash only has to
  // distribute well — sampling cannot cause a wrong answer, only a
  // (vanishingly rare) extra compare.
  constexpr std::size_t kWindow = 512;
  constexpr std::size_t kInteriorWindows = 14;
  constexpr std::size_t kSmall = 8 * 1024;

  std::uint64_t h = (kFnvBasis ^ bytes.size()) * kFnvPrime;
  const std::uint8_t* data = bytes.data();
  if (bytes.size() <= kSmall) {
    return fnv_region(h, data, bytes.size());
  }
  h = fnv_region(h, data, 2 * kWindow);                       // head
  h = fnv_region(h, data + bytes.size() - 2 * kWindow, 2 * kWindow);  // tail
  const std::size_t span = bytes.size() - kWindow;
  for (std::size_t i = 0; i < kInteriorWindows; ++i) {
    const std::size_t offset = (span * (i + 1)) / (kInteriorWindows + 1);
    h = fnv_region(h, data + offset, kWindow);
  }
  return h;
}

BdcCache::BdcCache()
    : hash_(content_hash),
      footprint_gauge_(obs::gauge("cache.bytes", {.cache = "bdc"})) {}

BdcCache::BdcCache(HashFn hash)
    : hash_(std::move(hash)),
      footprint_gauge_(obs::gauge("cache.bytes", {.cache = "bdc"})) {}

BdcCache::~BdcCache() { footprint_gauge_.sub(footprint_); }

support::Result<BinaryDescription> BdcCache::describe(const site::Site& s,
                                                      std::string_view path) {
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  const support::Bytes* bytes = s.vfs.read(path);
  if (injector != nullptr && injector->fault_count() != faults_before) {
    // The read was touched by fault injection: the bytes (or their
    // absence) don't match the file's write stamp, so neither the fast
    // path nor the content-addressed store may see them. Fall through to
    // the uncached component, whose result the caller attributes.
    return Bdc::describe(s, path);
  }
  if (bytes == nullptr) {
    // Let the component produce its usual diagnostic for a missing file.
    return Bdc::describe(s, path);
  }
  const std::uint64_t version = s.vfs.file_version(path).value_or(0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Fast path: the file has not been rewritten since we last described
    // it at this location — no hashing, no byte compare.
    const auto stamped =
        by_file_.find(std::make_pair(s.lease_id(), std::string(path)));
    if (stamped != by_file_.end() && stamped->second.version == version) {
      ++hits_;
      legacy_hits_.add();
      labeled_hits_.at(s.name).add();
      bytes_saved_.add(bytes->size());
      return stamped->second.description;
    }
  }
  const std::uint64_t key = hash_(*bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.bytes == *bytes) {
          ++hits_;
          legacy_hits_.add();
          labeled_hits_.at(s.name).add();
          bytes_saved_.add(bytes->size());
          BinaryDescription d = entry.description;
          d.path = std::string(path);
          store_stamp_locked(s.lease_id(), path, FileStamp{version, d});
          return d;
        }
      }
    }
  }
  // Miss (or collision): parse outside the lock — the caller holds the
  // site lease, so the bytes cannot change underneath us.
  support::Result<BinaryDescription> described = Bdc::describe(s, path);
  // The component re-reads the file itself; if any of those reads were
  // faulted, the description doesn't correspond to `*bytes` and must not
  // be memoized under its hash.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return described;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  legacy_misses_.add();
  labeled_misses_.at(s.name).add();
  if (described.ok()) {
    entries_[key].push_back(Entry{*bytes, described.value()});
    grow_footprint_locked(sizeof(Entry) + bytes->size() +
                          description_bytes(described.value()));
    store_stamp_locked(s.lease_id(), path, FileStamp{version, described.value()});
  }
  return described;
}

void BdcCache::store_stamp_locked(std::uint64_t lease_id,
                                  std::string_view path, FileStamp stamp) {
  const std::uint64_t added =
      sizeof(FileStamp) + path.size() + description_bytes(stamp.description);
  auto key = std::make_pair(lease_id, std::string(path));
  const auto it = by_file_.find(key);
  if (it != by_file_.end()) {
    shrink_footprint_locked(sizeof(FileStamp) + path.size() +
                            description_bytes(it->second.description));
    it->second = std::move(stamp);
  } else {
    by_file_.emplace(std::move(key), std::move(stamp));
  }
  grow_footprint_locked(added);
}

void BdcCache::grow_footprint_locked(std::uint64_t bytes) {
  footprint_ += bytes;
  footprint_gauge_.add(bytes);
}

void BdcCache::shrink_footprint_locked(std::uint64_t bytes) {
  footprint_ = footprint_ >= bytes ? footprint_ - bytes : 0;
  footprint_gauge_.sub(bytes);
}

std::uint64_t BdcCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t BdcCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

EdcMemo::EdcMemo()
    : footprint_gauge_(obs::gauge("cache.bytes", {.cache = "edc"})) {}

EdcMemo::~EdcMemo() { footprint_gauge_.sub(footprint_); }

EnvironmentDescription EdcMemo::discover(const site::Site& s) {
  const auto key = std::make_pair(s.lease_id(), s.discovery_fingerprint());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      legacy_hits_.add();
      labeled_hits_.at(s.name).add();
      return it->second.description;
    }
  }
  // Scan with the memo unlocked so other sites discover concurrently; the
  // caller's site lease guarantees no concurrent scan of *this* site.
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  EnvironmentDescription description = Edc::discover(s);
  // A scan that hit injected faults saw a degraded view of an unchanged
  // site; memoizing it would serve that view to every later migration.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return description;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  legacy_misses_.add();
  labeled_misses_.at(s.name).add();
  auto [it, fresh] = entries_.emplace(key, Entry{});
  if (!fresh) {
    const std::uint64_t old_bytes =
        sizeof(Entry) + environment_bytes(it->second.description);
    footprint_ = footprint_ >= old_bytes ? footprint_ - old_bytes : 0;
    footprint_gauge_.sub(old_bytes);
  }
  it->second = Entry{description};
  const std::uint64_t new_bytes = sizeof(Entry) + environment_bytes(description);
  footprint_ += new_bytes;
  footprint_gauge_.add(new_bytes);
  return description;
}

std::uint64_t EdcMemo::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t EdcMemo::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace feam
