#include "feam/caches.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "feam/bdc.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "support/rng.hpp"

namespace feam {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

// FNV-1a folding 64-bit words, then the tail byte-wise.
std::uint64_t fnv_region(std::uint64_t h, const std::uint8_t* p,
                         std::size_t n) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kFnvPrime;
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    h = (h ^ *p++) * kFnvPrime;
  }
  return h;
}

// Footprint estimates for the cache.bytes{cache=...} gauges: the payload
// bytes an entry retains (string/vector contents plus the fixed struct),
// not allocator-exact sizes — stable across allocators, cheap to compute,
// and honest about what dominates (the retained binary bytes and the
// per-stack strings).
std::uint64_t string_bytes(const std::string& s) {
  return sizeof(std::string) + s.size();
}

std::uint64_t description_bytes(const BinaryDescription& d) {
  std::uint64_t total = sizeof(BinaryDescription);
  total += d.path.size() + d.file_format.size() + d.architecture.size();
  if (d.soname) total += d.soname->size();
  for (const auto& lib : d.required_libraries) total += string_bytes(lib);
  for (const auto& ref : d.version_references) {
    total += string_bytes(ref.file) + sizeof(ref.versions);
    for (const auto& v : ref.versions) total += string_bytes(v);
  }
  if (d.build_compiler) total += d.build_compiler->size();
  if (d.build_os) total += d.build_os->size();
  return total;
}

std::uint64_t environment_bytes(const EnvironmentDescription& e) {
  std::uint64_t total = sizeof(EnvironmentDescription);
  total += e.site_name.size() + e.isa.size() + e.os_type.size() +
           e.distro.size() + e.clib_discovery_method.size();
  for (const auto& stack : e.stacks) {
    total += sizeof(DiscoveredStack) + stack.id.size() + stack.prefix.size();
  }
  return total;
}

}  // namespace

std::uint64_t content_hash(const support::Bytes& bytes) {
  // Constant-work sampled hash: the size plus the head, tail, and a few
  // evenly spaced interior windows. Multi-megabyte binaries hash in a
  // bounded ~10 KiB of reads, so a cache lookup costs the same for a
  // 100 KiB tool and a 50 MiB bundle library. The cache always verifies
  // candidate hits with a full byte compare, so the hash only has to
  // distribute well — sampling cannot cause a wrong answer, only a
  // (vanishingly rare) extra compare.
  constexpr std::size_t kWindow = 512;
  constexpr std::size_t kInteriorWindows = 14;
  constexpr std::size_t kSmall = 8 * 1024;

  std::uint64_t h = (kFnvBasis ^ bytes.size()) * kFnvPrime;
  const std::uint8_t* data = bytes.data();
  if (bytes.size() <= kSmall) {
    return fnv_region(h, data, bytes.size());
  }
  h = fnv_region(h, data, 2 * kWindow);                       // head
  h = fnv_region(h, data + bytes.size() - 2 * kWindow, 2 * kWindow);  // tail
  const std::size_t span = bytes.size() - kWindow;
  for (std::size_t i = 0; i < kInteriorWindows; ++i) {
    const std::size_t offset = (span * (i + 1)) / (kInteriorWindows + 1);
    h = fnv_region(h, data + offset, kWindow);
  }
  return h;
}

BdcCache::BdcCache()
    : hash_(content_hash),
      footprint_gauge_(obs::gauge("cache.bytes", {.cache = "bdc"})) {}

BdcCache::BdcCache(HashFn hash)
    : hash_(std::move(hash)),
      footprint_gauge_(obs::gauge("cache.bytes", {.cache = "bdc"})) {}

BdcCache::~BdcCache() {
  footprint_gauge_.sub(footprint_.load(std::memory_order_relaxed));
}

void BdcCache::count_hit(const site::Site&,
                         const obs::SeriesHandle& site_hits,
                         std::uint64_t bytes_size) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  legacy_hits_.add();
  site_hits.add();
  bytes_saved_.add(bytes_size);
}

support::Result<BinaryDescription> BdcCache::describe(const site::Site& s,
                                                      std::string_view path) {
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  const support::Bytes* bytes = s.vfs.read(path);
  if (injector != nullptr && injector->fault_count() != faults_before) {
    // The read was touched by fault injection: the bytes (or their
    // absence) don't match the file's write stamp, so neither the fast
    // path nor the content-addressed store may see them. Fall through to
    // the uncached component, whose result the caller attributes.
    return Bdc::describe(s, path);
  }
  if (bytes == nullptr) {
    // Let the component produce its usual diagnostic for a missing file.
    return Bdc::describe(s, path);
  }
  const std::uint64_t version = s.vfs.file_version(path).value_or(0);
  const std::uint64_t lease_id = s.lease_id();
  const std::uint64_t stamp_key =
      support::fnv1a_mix(support::fnv1a(path), lease_id);
  // Fast path, lock-free: the file has not been rewritten since we last
  // described it at this location — no hashing, no byte compare.
  if (const StampEntry* stamped = by_file_.find_if(
          stamp_key, [&](const StampEntry& e) {
            return e.lease_id == lease_id && e.version == version &&
                   e.path == path;
          })) {
    count_hit(s, stamped->site_hits, bytes->size());
    if (obs::provenance_active()) {
      obs::record_evidence(
          description_evidence(s.name, path, stamped->description));
    }
    return stamped->description;
  }
  const std::uint64_t key = hash_(*bytes);
  if (const ContentEntry* entry = entries_.find_if(
          key, [&](const ContentEntry& e) { return e.bytes == *bytes; })) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    legacy_hits_.add();
    obs::counter("cache.hits", {.site = s.name, .cache = "bdc"}).add();
    bytes_saved_.add(bytes->size());
    BinaryDescription d = entry->description;
    d.path = std::string(path);
    if (obs::provenance_active()) {
      obs::record_evidence(description_evidence(s.name, path, d));
    }
    store_stamp(s, path, version, d);
    return d;
  }
  // Miss (or collision): parse with no lock held — the caller holds the
  // site lease, so the bytes cannot change underneath us.
  support::Result<BinaryDescription> described = Bdc::describe(s, path);
  // The component re-reads the file itself; if any of those reads were
  // faulted, the description doesn't correspond to `*bytes` and must not
  // be memoized under its hash.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return described;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  legacy_misses_.add();
  obs::counter("cache.misses", {.site = s.name, .cache = "bdc"}).add();
  if (described.ok()) {
    const auto [entry, inserted] = entries_.get_or_insert_if(
        key, [&](const ContentEntry& e) { return e.bytes == *bytes; },
        [&] { return ContentEntry{*bytes, described.value()}; });
    if (inserted) {
      const std::uint64_t added = sizeof(ContentEntry) + bytes->size() +
                                  description_bytes(described.value());
      footprint_.fetch_add(added, std::memory_order_relaxed);
      footprint_gauge_.add(added);
    }
    store_stamp(s, path, version, described.value());
  }
  return described;
}

void BdcCache::store_stamp(const site::Site& s, std::string_view path,
                           std::uint64_t version, const BinaryDescription& d) {
  const std::uint64_t lease_id = s.lease_id();
  const std::uint64_t key =
      support::fnv1a_mix(support::fnv1a(path), lease_id);
  // insert() shadows any stale stamp for this (site, path); the shadowed
  // node stays allocated (readers may hold pointers into it), so the
  // footprint only ever grows — it reports retained bytes, honestly.
  by_file_.insert(
      key, StampEntry{lease_id, std::string(path), version, d,
                      obs::SeriesHandle("cache.hits",
                                        {.site = s.name, .cache = "bdc"})});
  const std::uint64_t added =
      sizeof(StampEntry) + path.size() + description_bytes(d);
  footprint_.fetch_add(added, std::memory_order_relaxed);
  footprint_gauge_.add(added);
}

EdcMemo::EdcMemo()
    : footprint_gauge_(obs::gauge("cache.bytes", {.cache = "edc"})) {}

EdcMemo::~EdcMemo() {
  footprint_gauge_.sub(footprint_.load(std::memory_order_relaxed));
}

EnvironmentDescription EdcMemo::discover(const site::Site& s) {
  const std::uint64_t lease_id = s.lease_id();
  const std::uint64_t fingerprint = s.discovery_fingerprint();
  const std::uint64_t key =
      support::fnv1a_mix(support::fnv1a_mix(kFnvBasis, lease_id), fingerprint);
  const auto matches = [&](const Entry& e) {
    return e.lease_id == lease_id && e.fingerprint == fingerprint;
  };
  if (const Entry* entry = entries_.find_if(key, matches)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    legacy_hits_.add();
    entry->site_hits.add();
    obs::replay_evidence(entry->evidence);
    return entry->description;
  }
  // Scan with no map lock held so other sites discover concurrently; the
  // caller's site lease guarantees no concurrent scan of *this* site.
  // The capture frame tees the scan's evidence for the entry while still
  // forwarding it to the enclosing evaluation's provenance scope.
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  obs::EvidenceCapture capture;
  EnvironmentDescription description = Edc::discover(s);
  std::vector<obs::Evidence> evidence = capture.take();
  // A scan that hit injected faults saw a degraded view of an unchanged
  // site; memoizing it (description *or* evidence) would serve that view
  // to every later migration.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return description;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  legacy_misses_.add();
  obs::counter("cache.misses", {.site = s.name, .cache = "edc"}).add();
  const auto [entry, inserted] = entries_.get_or_insert_if(key, matches, [&] {
    return Entry{lease_id, fingerprint, description, std::move(evidence),
                 obs::SeriesHandle("cache.hits",
                                   {.site = s.name, .cache = "edc"})};
  });
  if (inserted) {
    const std::uint64_t added = sizeof(Entry) +
                                environment_bytes(entry->description) +
                                obs::evidence_bytes(entry->evidence);
    footprint_.fetch_add(added, std::memory_order_relaxed);
    footprint_gauge_.add(added);
  }
  return description;
}

}  // namespace feam
