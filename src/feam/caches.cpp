#include "feam/caches.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "feam/bdc.hpp"
#include "obs/metrics.hpp"

namespace feam {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

// FNV-1a folding 64-bit words, then the tail byte-wise.
std::uint64_t fnv_region(std::uint64_t h, const std::uint8_t* p,
                         std::size_t n) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kFnvPrime;
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    h = (h ^ *p++) * kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t content_hash(const support::Bytes& bytes) {
  // Constant-work sampled hash: the size plus the head, tail, and a few
  // evenly spaced interior windows. Multi-megabyte binaries hash in a
  // bounded ~10 KiB of reads, so a cache lookup costs the same for a
  // 100 KiB tool and a 50 MiB bundle library. The cache always verifies
  // candidate hits with a full byte compare, so the hash only has to
  // distribute well — sampling cannot cause a wrong answer, only a
  // (vanishingly rare) extra compare.
  constexpr std::size_t kWindow = 512;
  constexpr std::size_t kInteriorWindows = 14;
  constexpr std::size_t kSmall = 8 * 1024;

  std::uint64_t h = (kFnvBasis ^ bytes.size()) * kFnvPrime;
  const std::uint8_t* data = bytes.data();
  if (bytes.size() <= kSmall) {
    return fnv_region(h, data, bytes.size());
  }
  h = fnv_region(h, data, 2 * kWindow);                       // head
  h = fnv_region(h, data + bytes.size() - 2 * kWindow, 2 * kWindow);  // tail
  const std::size_t span = bytes.size() - kWindow;
  for (std::size_t i = 0; i < kInteriorWindows; ++i) {
    const std::size_t offset = (span * (i + 1)) / (kInteriorWindows + 1);
    h = fnv_region(h, data + offset, kWindow);
  }
  return h;
}

BdcCache::BdcCache() : hash_(content_hash) {}

BdcCache::BdcCache(HashFn hash) : hash_(std::move(hash)) {}

support::Result<BinaryDescription> BdcCache::describe(const site::Site& s,
                                                      std::string_view path) {
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  const support::Bytes* bytes = s.vfs.read(path);
  if (injector != nullptr && injector->fault_count() != faults_before) {
    // The read was touched by fault injection: the bytes (or their
    // absence) don't match the file's write stamp, so neither the fast
    // path nor the content-addressed store may see them. Fall through to
    // the uncached component, whose result the caller attributes.
    return Bdc::describe(s, path);
  }
  if (bytes == nullptr) {
    // Let the component produce its usual diagnostic for a missing file.
    return Bdc::describe(s, path);
  }
  const std::uint64_t version = s.vfs.file_version(path).value_or(0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Fast path: the file has not been rewritten since we last described
    // it at this location — no hashing, no byte compare.
    const auto stamped =
        by_file_.find(std::make_pair(s.lease_id(), std::string(path)));
    if (stamped != by_file_.end() && stamped->second.version == version) {
      ++hits_;
      obs::counter("bdc.cache_hits").add();
      obs::counter("cache.hits", {.site = s.name, .cache = "bdc"}).add();
      obs::counter("bdc.cache_bytes_saved").add(bytes->size());
      return stamped->second.description;
    }
  }
  const std::uint64_t key = hash_(*bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.bytes == *bytes) {
          ++hits_;
          obs::counter("bdc.cache_hits").add();
          obs::counter("cache.hits", {.site = s.name, .cache = "bdc"}).add();
          obs::counter("bdc.cache_bytes_saved").add(bytes->size());
          BinaryDescription d = entry.description;
          d.path = std::string(path);
          by_file_[std::make_pair(s.lease_id(), std::string(path))] =
              FileStamp{version, d};
          return d;
        }
      }
    }
  }
  // Miss (or collision): parse outside the lock — the caller holds the
  // site lease, so the bytes cannot change underneath us.
  support::Result<BinaryDescription> described = Bdc::describe(s, path);
  // The component re-reads the file itself; if any of those reads were
  // faulted, the description doesn't correspond to `*bytes` and must not
  // be memoized under its hash.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return described;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  obs::counter("bdc.cache_misses").add();
  obs::counter("cache.misses", {.site = s.name, .cache = "bdc"}).add();
  if (described.ok()) {
    entries_[key].push_back(Entry{*bytes, described.value()});
    by_file_[std::make_pair(s.lease_id(), std::string(path))] =
        FileStamp{version, described.value()};
  }
  return described;
}

std::uint64_t BdcCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t BdcCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

EnvironmentDescription EdcMemo::discover(const site::Site& s) {
  const std::uint64_t generation = s.state_generation();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(s.lease_id());
    if (it != entries_.end() && it->second.generation == generation) {
      ++hits_;
      obs::counter("edc.memo_hits").add();
      obs::counter("cache.hits", {.site = s.name, .cache = "edc"}).add();
      return it->second.description;
    }
  }
  // Scan with the memo unlocked so other sites discover concurrently; the
  // caller's site lease guarantees no concurrent scan of *this* site.
  const auto* injector = s.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  EnvironmentDescription description = Edc::discover(s);
  // A scan that hit injected faults saw a degraded view of an unchanged
  // site; memoizing it would serve that view to every later migration.
  if (injector != nullptr && injector->fault_count() != faults_before) {
    return description;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  obs::counter("edc.memo_misses").add();
  obs::counter("cache.misses", {.site = s.name, .cache = "edc"}).add();
  entries_[s.lease_id()] = Entry{generation, description};
  return description;
}

std::uint64_t EdcMemo::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t EdcMemo::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace feam
