#include "feam/tec.hpp"

#include <algorithm>
#include <set>

#include "binutils/resolver.hpp"
#include "feam/bdc.hpp"
#include "feam/caches.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/loader.hpp"

namespace feam {

namespace {

using support::Version;
using toolchain::RunStatus;

// ---------------------------------------------------------------- ISA ---

struct IsaId {
  std::string family;  // "x86", "powerpc", "aarch64"
  int bits = 0;
};

// From objdump's BFD format name ("elf64-x86-64", "elf32-powerpc", ...).
std::optional<IsaId> isa_from_file_format(std::string_view format) {
  IsaId id;
  if (support::starts_with(format, "elf64")) id.bits = 64;
  else if (support::starts_with(format, "elf32")) id.bits = 32;
  else return std::nullopt;
  if (support::contains(format, "x86-64") || support::contains(format, "i386")) {
    id.family = "x86";
  } else if (support::contains(format, "powerpc")) {
    id.family = "powerpc";
  } else if (support::contains(format, "aarch64")) {
    id.family = "aarch64";
  } else {
    return std::nullopt;
  }
  return id;
}

// From `uname -p` output ("x86_64", "i686", "ppc64", ...).
std::optional<IsaId> isa_from_uname(std::string_view uname) {
  if (uname == "x86_64") return IsaId{"x86", 64};
  if (uname == "i686" || uname == "i386") return IsaId{"x86", 32};
  if (uname == "ppc64") return IsaId{"powerpc", 64};
  if (uname == "ppc") return IsaId{"powerpc", 32};
  if (uname == "aarch64") return IsaId{"aarch64", 64};
  return std::nullopt;
}

// ------------------------------------------------------ env save/restore

class EnvGuard {
 public:
  explicit EnvGuard(site::Site& s) : site_(s) {
    path_ = s.env.get("PATH");
    ld_path_ = s.env.get("LD_LIBRARY_PATH");
    loaded_ = s.loaded_modules();
  }
  void restore() {
    if (restored_) return;
    restored_ = true;
    site_.unload_all_modules();
    if (path_) site_.env.set("PATH", *path_); else site_.env.unset("PATH");
    if (ld_path_) site_.env.set("LD_LIBRARY_PATH", *ld_path_);
    else site_.env.unset("LD_LIBRARY_PATH");
    for (const auto& name : loaded_) site_.load_module(name);
  }
  ~EnvGuard() { restore(); }

 private:
  site::Site& site_;
  std::optional<std::string> path_;
  std::optional<std::string> ld_path_;
  std::vector<std::string> loaded_;
  bool restored_ = false;
};

// Activates a discovered stack: `module load` when the id is a module,
// otherwise manual PATH/LD_LIBRARY_PATH prepends derived from the prefix.
// Returns the prepends applied (for the configuration script).
std::vector<std::pair<std::string, std::string>> activate_stack(
    site::Site& s, const DiscoveredStack& stack) {
  std::vector<std::pair<std::string, std::string>> applied;
  const auto modules = s.available_modules();
  if (std::find(modules.begin(), modules.end(), stack.id) != modules.end()) {
    for (const auto& m : s.module_files) {
      if (m.name == stack.id) applied = m.prepends;
    }
    s.load_module(stack.id);
    return applied;
  }
  if (!stack.prefix.empty()) {
    applied.emplace_back("PATH", stack.prefix + "/bin");
    applied.emplace_back("LD_LIBRARY_PATH", stack.prefix + "/lib");
    // Non-system compiler runtimes: chase an /opt/<compiler>-<version>
    // install matching the stack's compiler.
    if (stack.compiler && *stack.compiler != site::CompilerFamily::kGnu &&
        stack.compiler_version) {
      const std::string dir =
          "/opt/" + std::string(site::compiler_slug(*stack.compiler)) + "-" +
          stack.compiler_version->str() + "/lib";
      if (s.vfs.is_dir(dir)) applied.emplace_back("LD_LIBRARY_PATH", dir);
    }
    for (const auto& [var, entry] : applied) s.env.prepend_to_list(var, entry);
  }
  return applied;
}

// ----------------------------------------------------- hello-world tests

// Compiles "hello world" natively at the target with the candidate stack
// and runs it. nullopt when native compilation is not possible there.
std::optional<bool> native_hello_test(site::Site& s,
                                      const DiscoveredStack& stack, int ranks,
                                      std::string_view nonce,
                                      binutils::ResolverCache* rc) {
  obs::Span span("tec.usability.native", {{"stack", stack.id}});
  obs::counter("tec.usability_tests").add();
  const site::MpiStackInstall* install = nullptr;
  for (const auto& candidate : s.stacks) {
    if (candidate.prefix == stack.prefix) install = &candidate;
  }
  if (install == nullptr) return std::nullopt;
  // The nonce keeps the scratch path unique per evaluated binary so the
  // fault model treats each evaluation as a distinct job placement.
  const std::string path = "/tmp/feam_hw_native_c." + std::string(nonce);
  const auto compiled = toolchain::compile_mpi_program(
      s, toolchain::mpi_hello_world(toolchain::Language::kC), *install, path);
  if (!compiled.ok()) return std::nullopt;
  const auto run = toolchain::mpiexec_with_retries(s, compiled.value(), ranks,
                                                   {}, 3, rc);
  s.vfs.remove(path);
  return run.success();
}

// Runs the bundle's guaranteed-environment hello worlds under the active
// stack. Detects ABI/floating-point incompatibilities between the stack an
// application was compiled with and the stack selected at the target.
bool bundle_hello_test(site::Site& s, const Bundle& bundle, bool app_is_fortran,
                       const std::vector<std::string>& extra_dirs, int ranks,
                       std::string_view nonce, std::vector<std::string>& log,
                       binutils::ResolverCache* rc) {
  obs::Span span("tec.usability.bundle_hello");
  obs::counter("tec.usability_tests").add();
  bool all_ok = true;
  for (const auto& hw : bundle.hello_worlds) {
    if (hw.language == toolchain::Language::kFortran && !app_is_fortran) {
      continue;  // only meaningful when the application itself is Fortran
    }
    const std::string path =
        "/tmp/feam_hw_src_" + hw.name + "." + std::string(nonce);
    s.vfs.write_file(path, hw.content);
    const auto run =
        toolchain::mpiexec_with_retries(s, path, ranks, extra_dirs, 3, rc);
    s.vfs.remove(path);
    if (!run.success()) {
      log.push_back("guaranteed-environment hello world '" + hw.name +
                    "' failed: " + run.detail);
      all_ok = false;
    }
  }
  return all_ok;
}

// --------------------------------------------------------- resolution ---

bool copy_statically_usable(const BinaryDescription& copy,
                            const EnvironmentDescription& env,
                            std::string& reason) {
  const auto copy_isa = isa_from_file_format(copy.file_format);
  const auto host_isa = isa_from_uname(env.isa);
  if (!copy_isa || !host_isa || copy_isa->family != host_isa->family ||
      copy_isa->bits > host_isa->bits) {
    reason = "ISA-incompatible copy (" + copy.file_format + ")";
    return false;
  }
  if (copy.required_clib_version && env.clib_version &&
      *copy.required_clib_version > *env.clib_version) {
    reason = "copy requires C library " + copy.required_clib_version->str() +
             " > site " + env.clib_version->str();
    return false;
  }
  return true;
}

struct ResolutionOutcome {
  std::vector<std::string> missing;
  std::vector<std::string> resolved;
  std::vector<std::string> unresolved;
  std::string dir;  // populated resolution directory ("" when unused)
  // Malformed NEEDED graph (cycle / excessive depth) reported by the
  // resolver; surfaced in the determinant detail, never fatal.
  std::optional<support::Error> dep_error;
  bool all_resolved() const { return unresolved.empty(); }
};

// Names missing for the application under the current environment.
// With a binary present this is the loader's transitive view; otherwise it
// walks the bundle's per-library descriptions.
std::vector<std::string> compute_missing(
    site::Site& s, const BinaryDescription& app, std::string_view binary_path,
    const Bundle* bundle, int bits, binutils::ResolverCache* rc,
    std::optional<support::Error>* dep_error = nullptr) {
  std::vector<std::string> missing;
  if (!binary_path.empty() && s.vfs.is_file(binary_path)) {
    const auto resolution = binutils::resolve_libraries(s, binary_path, {}, rc);
    if (dep_error != nullptr) *dep_error = resolution.dep_error;
    for (const auto& name : resolution.missing()) missing.push_back(name);
    return missing;
  }
  // Two-phase mode without the binary: BFS over bundle descriptions.
  std::set<std::string> seen;
  std::vector<std::string> queue = app.required_libraries;
  while (!queue.empty()) {
    const std::string name = queue.back();
    queue.pop_back();
    if (!seen.insert(name).second) continue;
    const auto found = binutils::search_library(s, name, bits, {}, {}, rc);
    if (found) continue;
    missing.push_back(name);
    if (bundle != nullptr) {
      if (const auto* copy = bundle->find_library(name)) {
        for (const auto& dep : copy->description.required_libraries) {
          queue.push_back(dep);
        }
      }
    }
  }
  std::sort(missing.begin(), missing.end());
  return missing;
}

ResolutionOutcome run_resolution(site::Site& s, const BinaryDescription& app,
                                 std::string_view binary_path,
                                 const Bundle* bundle, int bits,
                                 const EnvironmentDescription& env,
                                 const TecOptions& opts,
                                 std::vector<std::string>& log,
                                 binutils::ResolverCache* rc) {
  // The shared-library determinant's workhorse: one span per evaluation,
  // under whichever candidate stack is active.
  obs::Span span("tec.determinant.shared_libraries");
  obs::ScopedTimer timer(obs::histogram("tec.resolution_ns"));
  ResolutionOutcome out;
  out.missing =
      compute_missing(s, app, binary_path, bundle, bits, rc, &out.dep_error);
  span.add_field("missing", std::to_string(out.missing.size()));
  obs::counter("resolution.libraries_missing").add(out.missing.size());
  if (out.missing.empty() || bundle == nullptr || !opts.apply_resolution) {
    out.unresolved = out.missing;
    if (bundle == nullptr || !opts.apply_resolution) return out;
  }
  if (out.missing.empty()) return out;

  out.dir = opts.resolution_root + "/" +
            site::Vfs::basename(app.path.empty() ? "app" : app.path);
  std::set<std::string> blacklist;

  // Install/validate to a fixpoint; a copy that fails dynamic validation
  // is blacklisted and the whole install is recomputed without it.
  for (int round = 0; round < 64; ++round) {
    s.vfs.remove(out.dir);
    s.vfs.mkdirs(out.dir);
    std::set<std::string> installed;
    std::set<std::string> unresolved;
    std::vector<std::string> queue = out.missing;
    std::set<std::string> visited;

    while (!queue.empty()) {
      const std::string name = queue.back();
      queue.pop_back();
      if (!visited.insert(name).second) continue;
      if (binutils::search_library(s, name, bits, {}, {out.dir}, rc)) continue;
      if (blacklist.count(name) != 0) {
        unresolved.insert(name);
        continue;
      }
      const LibraryCopy* copy = bundle->find_library(name);
      if (copy == nullptr) {
        unresolved.insert(name);
        log.push_back("no copy of " + name + " in bundle");
        continue;
      }
      std::string reason;
      if (opts.recursive_copy_validation &&
          !copy_statically_usable(copy->description, env, reason)) {
        unresolved.insert(name);
        log.push_back("copy of " + name + " rejected: " + reason);
        continue;
      }
      s.vfs.write_file(site::Vfs::join(out.dir, name), copy->content);
      obs::counter("resolution.libraries_copied").add();
      obs::counter("resolution.bytes_copied").add(copy->content.size());
      installed.insert(name);
      // Recursively resolve the copy's own requirements (paper IV).
      for (const auto& dep : copy->description.required_libraries) {
        queue.push_back(dep);
      }
    }

    // Dynamic validation: every installed copy must load cleanly with the
    // resolution directory in scope.
    bool restart = false;
    if (opts.recursive_copy_validation) {
      for (const auto& name : installed) {
        const auto report = toolchain::load_binary(
            s, site::Vfs::join(out.dir, name), {out.dir}, rc);
        if (report.status != toolchain::LoadStatus::kOk) {
          log.push_back("copy of " + name +
                        " failed validation: " + report.detail);
          blacklist.insert(name);
          restart = true;
          break;
        }
      }
    }
    if (restart) continue;

    for (const auto& name : out.missing) {
      if (installed.count(name) != 0) {
        out.resolved.push_back(name);
      } else if (binutils::search_library(s, name, bits, {}, {out.dir}, rc)) {
        out.resolved.push_back(name);  // satisfied transitively
      } else {
        out.unresolved.push_back(name);
      }
    }
    // Transitive dependencies that stayed unresolved also block execution.
    for (const auto& name : unresolved) {
      if (std::find(out.unresolved.begin(), out.unresolved.end(), name) ==
          out.unresolved.end()) {
        out.unresolved.push_back(name);
      }
    }
    break;
  }
  if (out.resolved.empty() && !out.dir.empty() && out.unresolved == out.missing) {
    s.vfs.remove(out.dir);
    out.dir.clear();
  }
  span.add_field("resolved", std::to_string(out.resolved.size()));
  span.add_field("unresolved", std::to_string(out.unresolved.size()));
  return out;
}

std::string make_configuration_script(const Prediction& p,
                                      const BinaryDescription& app,
                                      const std::vector<std::pair<std::string, std::string>>& prepends,
                                      site::UserEnvTool tool, int ranks,
                                      const std::string& mpiexec_command) {
  std::string script = "#!/bin/sh\n# FEAM matching configuration for " +
                       app.path + "\n";
  if (p.selected_stack_id) {
    if (tool == site::UserEnvTool::kModules) {
      script += "module load " + *p.selected_stack_id + "\n";
    } else if (tool == site::UserEnvTool::kSoftEnv) {
      script += "soft add +" + *p.selected_stack_id + "\n";
    }
  }
  for (const auto& [var, entry] : prepends) {
    if (tool == site::UserEnvTool::kNone || p.selected_stack_id == std::nullopt) {
      script += "export " + var + "=" + entry + ":$" + var + "\n";
    }
  }
  for (const auto& dir : p.resolution_dirs) {
    script += "export LD_LIBRARY_PATH=" + dir + ":$LD_LIBRARY_PATH\n";
  }
  script += mpiexec_command + " -n " + std::to_string(ranks) + " " +
            (app.path.empty() ? "<binary>" : app.path) + "\n";
  return script;
}

}  // namespace

const char* determinant_name(DeterminantKind kind) {
  switch (kind) {
    case DeterminantKind::kIsa: return "ISA compatibility";
    case DeterminantKind::kCLibrary: return "C library compatibility";
    case DeterminantKind::kMpiStack: return "MPI stack compatibility";
    case DeterminantKind::kSharedLibraries: return "shared library availability";
  }
  return "?";
}

const char* determinant_slug(DeterminantKind kind) {
  switch (kind) {
    case DeterminantKind::kIsa: return "isa";
    case DeterminantKind::kCLibrary: return "c_library";
    case DeterminantKind::kMpiStack: return "mpi_stack";
    case DeterminantKind::kSharedLibraries: return "shared_libraries";
  }
  return "?";
}

const DeterminantResult* Prediction::determinant(DeterminantKind kind) const {
  for (const auto& d : determinants) {
    if (d.kind == kind) return &d;
  }
  return nullptr;
}

namespace {

// Verdict bookkeeping shared by every determinant: one counter tick per
// check, one structured event per verdict with the detail fields, and one
// provenance evidence item stamping what was decided and why.
void record_verdict(const DeterminantResult& d, std::string_view site_name) {
  obs::counter("tec.determinant_checks").add();
  obs::counter("tec.determinant_checks",
               {.determinant = determinant_name(d.kind)})
      .add();
  const char* state = !d.evaluated ? "skipped"
                      : d.compatible ? "compatible"
                                     : "incompatible";
  obs::emit(d.evaluated && !d.compatible ? obs::Level::kWarn
                                         : obs::Level::kInfo,
            "tec.verdict",
            std::string(determinant_name(d.kind)) + ": " + state,
            {{"determinant", determinant_name(d.kind)},
             {"evaluated", d.evaluated ? "true" : "false"},
             {"compatible", d.compatible ? "true" : "false"},
             {"detail", d.detail}});
  if (obs::provenance_active()) {
    obs::record_evidence(
        {std::string("tec.") + determinant_slug(d.kind), "verdict",
         std::string(site_name), determinant_slug(d.kind),
         std::string(state) + ": " + d.detail,
         support::fnv1a_mix(support::fnv1a(state), d.detail)});
  }
}

}  // namespace

Prediction Tec::evaluate(site::Site& target, const BinaryDescription& app,
                         std::string_view binary_path, const Bundle* bundle,
                         const TecOptions& opts, MigrationCaches* caches) {
  obs::Span eval_span("tec.evaluate", {{"site", target.name},
                                       {"binary", app.path},
                                       {"mode", bundle != nullptr
                                                    ? "extended"
                                                    : "basic"}});
  obs::ScopedTimer eval_timer(obs::histogram("tec.evaluate_ns"));

  Prediction p;
  // Everything consulted from here on records into the prediction's own
  // evidence set; an enclosing scope (run_target_phase installs one over
  // the whole phase, including the BDC describe) still sees every item —
  // record_evidence feeds all active frames.
  obs::ProvenanceScope provenance_scope(p.provenance);
  binutils::ResolverCache* rc =
      caches != nullptr ? &caches->resolver : nullptr;
  const EnvironmentDescription env =
      caches != nullptr ? caches->edc.discover(target) : Edc::discover(target);

  if (bundle != nullptr) {
    // The travelled bundle is evidence too: its identity is the content of
    // its library copies and hello worlds, not where it was assembled.
    std::uint64_t h = support::fnv1a("bundle");
    for (const auto& lib : bundle->libraries) {
      h = support::fnv1a_mix(h, lib.name);
      h = support::fnv1a_mix(h, static_cast<std::uint64_t>(lib.content.size()));
      h = support::fnv1a_mix(h, description_stamp(lib.description));
    }
    for (const auto& hw : bundle->hello_worlds) {
      h = support::fnv1a_mix(h, hw.name);
      h = support::fnv1a_mix(h, static_cast<std::uint64_t>(hw.content.size()));
    }
    obs::record_evidence(
        {"tec", "bundle", target.name, site::Vfs::basename(app.path),
         std::to_string(bundle->libraries.size()) + " copies, " +
             std::to_string(bundle->hello_worlds.size()) + " hello worlds",
         h});
  }

  // --- Determinant 1: ISA.
  DeterminantResult isa{DeterminantKind::kIsa, true, false, ""};
  {
    obs::Span span("tec.determinant.isa");
    const auto app_isa = isa_from_file_format(app.file_format);
    const auto host_isa = isa_from_uname(env.isa);
    if (app_isa && host_isa && app_isa->family == host_isa->family &&
        app_isa->bits <= host_isa->bits) {
      isa.compatible = true;
      isa.detail = app.file_format + " runs on " + env.isa;
    } else {
      isa.detail = "binary is " + app.file_format + ", site is " + env.isa;
    }
  }
  record_verdict(isa, target.name);
  p.determinants.push_back(isa);

  // --- Determinant 2: C library.
  DeterminantResult clib{DeterminantKind::kCLibrary, true, false, ""};
  {
    obs::Span span("tec.determinant.c_library");
    if (!app.required_clib_version) {
      clib.compatible = true;
      clib.detail = "binary has no versioned C library requirements";
    } else if (env.clib_version &&
               *env.clib_version >= *app.required_clib_version) {
      clib.compatible = true;
      clib.detail = "requires glibc " + app.required_clib_version->str() +
                    ", site has " + env.clib_version->str();
    } else {
      clib.detail = "requires glibc " + app.required_clib_version->str() +
                    ", site has " +
                    (env.clib_version ? env.clib_version->str() : "unknown");
    }
  }
  record_verdict(clib, target.name);
  p.determinants.push_back(clib);

  // Paper V.C: only proceed to the expensive determinants when ISA and C
  // library are compatible.
  if (!isa.compatible || !clib.compatible) {
    p.determinants.push_back({DeterminantKind::kMpiStack, false, false,
                              "not evaluated (earlier determinant failed)"});
    p.determinants.push_back({DeterminantKind::kSharedLibraries, false, false,
                              "not evaluated (earlier determinant failed)"});
    record_verdict(p.determinants[2], target.name);
    record_verdict(p.determinants[3], target.name);
    p.ready = false;
    p.log.push_back("prediction: NOT READY (" +
                    std::string(!isa.compatible ? "ISA" : "C library") +
                    " incompatible)");
    obs::emit(obs::Level::kInfo, "tec.prediction", p.log.back(),
              {{"ready", "false"}, {"site", target.name}});
    return p;
  }

  const bool app_is_fortran = std::any_of(
      app.required_libraries.begin(), app.required_libraries.end(),
      [](const std::string& lib) {
        return support::starts_with(lib, "libmpi_f77") ||
               support::starts_with(lib, "libmpichf90") ||
               support::starts_with(lib, "libgfortran") ||
               support::starts_with(lib, "libg2c") ||
               support::starts_with(lib, "libifcore") ||
               support::starts_with(lib, "libpgf90");
      });

  DeterminantResult mpi{DeterminantKind::kMpiStack, true, false, ""};
  DeterminantResult libs{DeterminantKind::kSharedLibraries, true, false, ""};
  std::vector<std::pair<std::string, std::string>> chosen_prepends;

  if (!app.mpi_impl) {
    // Serial binary: MPI determinant is vacuously satisfied.
    {
      obs::Span span("tec.determinant.mpi_stack");
      mpi.compatible = true;
      mpi.detail = "not an MPI application";
    }
    EnvGuard guard(target);
    const auto outcome = run_resolution(target, app, binary_path, bundle,
                                        app.bits, env, opts, p.log, rc);
    p.missing_libraries = outcome.missing;
    p.resolved_libraries = outcome.resolved;
    p.unresolved_libraries = outcome.unresolved;
    if (!outcome.dir.empty()) p.resolution_dirs.push_back(outcome.dir);
    libs.compatible = outcome.all_resolved();
    libs.detail = libs.compatible
                      ? "all shared libraries available"
                      : support::join(outcome.unresolved, ", ") + " missing";
    if (outcome.dep_error) {
      // The graph anomaly doesn't block execution (ld.so loads each object
      // once) but it is part of the site's story — surface it.
      libs.detail += " [" + outcome.dep_error->message + "]";
    }
    guard.restore();
  } else {
    obs::Span mpi_span("tec.determinant.mpi_stack",
                       {{"impl", site::mpi_impl_name(*app.mpi_impl)}});
    const auto candidates = env.stacks_of(*app.mpi_impl);
    if (candidates.empty()) {
      mpi.detail = std::string("no ") + site::mpi_impl_name(*app.mpi_impl) +
                   " stack at this site";
      libs.evaluated = false;
      libs.detail = "not evaluated (no matching MPI stack)";
    } else {
      // Prefer a stack built with the application's own compiler family.
      std::vector<const DiscoveredStack*> ordered(candidates.begin(),
                                                  candidates.end());
      std::stable_sort(ordered.begin(), ordered.end(),
                       [&](const DiscoveredStack* a, const DiscoveredStack* b) {
                         const auto matches = [&](const DiscoveredStack* s) {
                           return s->compiler && app.build_compiler &&
                                  support::contains(
                                      support::to_lower(*app.build_compiler),
                                      support::to_lower(
                                          site::compiler_name(*s->compiler)));
                         };
                         return matches(a) && !matches(b);
                       });

      enum class Stage { kUnusable, kHelloIncompatible, kLibsUnresolved, kOk };
      Stage best_stage = Stage::kUnusable;
      std::string best_detail =
          "all matching stacks failed the usability test";

      const std::string nonce = site::Vfs::basename(app.path);
      for (const DiscoveredStack* candidate : ordered) {
        EnvGuard guard(target);
        const auto applied = activate_stack(target, *candidate);

        // Usability: native hello world (paper III.B).
        const auto native =
            opts.run_usability_tests
                ? native_hello_test(target, *candidate, opts.hello_world_ranks,
                                    nonce, rc)
                : std::optional<bool>(true);
        if (native.has_value() && !*native) {
          p.log.push_back("stack " + candidate->id +
                          " failed native hello world (unusable)");
          continue;
        }
        if (!native.has_value()) {
          p.log.push_back("stack " + candidate->id +
                          ": native compilation not possible, relying on "
                          "migrated hello worlds");
        }

        // Shared libraries + resolution under this stack.
        const auto outcome = run_resolution(target, app, binary_path, bundle,
                                            app.bits, env, opts, p.log, rc);

        // Extended compatibility: hello worlds from the guaranteed
        // environment, run with the resolution directory in scope.
        if (opts.run_usability_tests && bundle != nullptr &&
            !bundle->hello_worlds.empty()) {
          std::vector<std::string> extra;
          if (!outcome.dir.empty()) extra.push_back(outcome.dir);
          if (!bundle_hello_test(target, *bundle, app_is_fortran, extra,
                                 opts.hello_world_ranks, nonce, p.log, rc)) {
            if (best_stage < Stage::kHelloIncompatible) {
              best_stage = Stage::kHelloIncompatible;
              best_detail = "stack " + candidate->id +
                            " incompatible with the application's stack";
            }
            if (!outcome.dir.empty()) target.vfs.remove(outcome.dir);
            continue;
          }
        }

        if (!outcome.all_resolved()) {
          if (best_stage < Stage::kLibsUnresolved) {
            best_stage = Stage::kLibsUnresolved;
            best_detail = support::join(outcome.unresolved, ", ") + " missing";
            p.missing_libraries = outcome.missing;
            p.resolved_libraries = outcome.resolved;
            p.unresolved_libraries = outcome.unresolved;
            p.selected_stack_id = candidate->id;
          }
          if (!outcome.dir.empty()) target.vfs.remove(outcome.dir);
          continue;
        }

        // Candidate accepted.
        best_stage = Stage::kOk;
        p.selected_stack_id = candidate->id;
        p.missing_libraries = outcome.missing;
        p.resolved_libraries = outcome.resolved;
        p.unresolved_libraries.clear();
        if (!outcome.dir.empty()) p.resolution_dirs.push_back(outcome.dir);
        chosen_prepends = applied;
        p.activation_prepends = applied;
        break;
      }

      switch (best_stage) {
        case Stage::kOk:
          mpi.compatible = true;
          mpi.detail = "stack " + *p.selected_stack_id + " usable and compatible";
          libs.compatible = true;
          libs.detail = p.resolved_libraries.empty()
                            ? "all shared libraries available"
                            : "resolved via copies: " +
                                  support::join(p.resolved_libraries, ", ");
          break;
        case Stage::kLibsUnresolved:
          mpi.compatible = true;
          mpi.detail = "matching stack usable";
          libs.compatible = false;
          libs.detail = best_detail;
          break;
        case Stage::kHelloIncompatible:
        case Stage::kUnusable:
          mpi.compatible = false;
          mpi.detail = best_detail;
          libs.evaluated = false;
          libs.detail = "not evaluated (no usable MPI stack)";
          break;
      }
    }
  }

  record_verdict(mpi, target.name);
  record_verdict(libs, target.name);
  p.determinants.push_back(mpi);
  p.determinants.push_back(libs);
  p.ready = std::all_of(p.determinants.begin(), p.determinants.end(),
                        [](const DeterminantResult& d) {
                          return !d.evaluated || d.compatible;
                        }) &&
            mpi.evaluated && libs.evaluated && mpi.compatible &&
            libs.compatible;
  if (p.ready) {
    p.configuration_script = make_configuration_script(
        p, app, chosen_prepends, env.user_env_tool, opts.hello_world_ranks,
        opts.mpiexec_command);
  }
  p.log.push_back(std::string("prediction: ") +
                  (p.ready ? "READY" : "NOT READY"));
  eval_span.add_field("ready", p.ready ? "true" : "false");
  obs::emit(obs::Level::kInfo, "tec.prediction", p.log.back(),
            {{"ready", p.ready ? "true" : "false"},
             {"site", target.name},
             {"resolved", std::to_string(p.resolved_libraries.size())}});
  return p;
}

std::vector<std::string> Tec::apply_configuration(site::Site& target,
                                                  const Prediction& prediction) {
  target.unload_all_modules();
  // Replay the exact environment edits that activated the selected stack
  // during evaluation (module contents, SoftEnv prepends, or manual edits
  // on tool-less sites) — what the generated script does.
  for (const auto& [var, entry] : prediction.activation_prepends) {
    target.env.prepend_to_list(var, entry);
  }
  return prediction.resolution_dirs;
}

}  // namespace feam
