// Memoization layer for the parallel migration engine.
//
// The evaluation matrix re-describes the same binary bytes and re-scans
// unchanged site environments on every one of its ~70 migrations. Both
// operations are pure functions of observable state, so they memoize:
//
//   * BdcCache — content-addressed: hash of the binary's bytes ->
//     BinaryDescription. A binary migrated to N targets is parsed once.
//     Entries store the full bytes and are compared on lookup, so a hash
//     collision degrades to a cache miss, never a wrong description. The
//     hash function is injectable for exactly that test.
//   * EdcMemo — per-site, keyed by Site::discovery_fingerprint(): the
//     system half of the VFS plus the *content* of the environment and
//     loaded-module list — exactly what the scan reads. Scratch writes
//     (/home, /tmp) and save/restore environment churn leave the
//     fingerprint unchanged, so back-to-back migrations keep hitting;
//     installing software or loading a module still invalidates.
//
// Both caches sit on support::StripedMap: a hit costs one lock-free
// chain walk plus relaxed counter bumps — no mutex, so eight workers
// hitting the same cache never serialize. Writers stripe across shards.
// Every 64-bit map key is a fingerprint, and every lookup re-verifies
// the entry's stored identity (full bytes, path, sub-generation values),
// so a fingerprint collision degrades to a miss, never a wrong answer.
//
// Callers must still hold the site's lease while describing/discovering
// (the underlying components read live site state); the caches' shard
// mutexes nest strictly inside the lease and are never held across
// component calls, so no lock cycle involves them.
//
// The caches are opt-in: every component keeps its uncached entry point,
// and the sequential CLI flow is byte-for-byte unchanged (the regression
// gate pins its exact counter values).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "binutils/resolver_cache.hpp"
#include "feam/description.hpp"
#include "feam/edc.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "site/site.hpp"
#include "support/byte_io.hpp"
#include "support/result.hpp"
#include "support/striped_map.hpp"

namespace feam {

// FNV-1a (64-bit) over the byte content — the default content address.
std::uint64_t content_hash(const support::Bytes& bytes);

class BdcCache {
 public:
  using HashFn = std::function<std::uint64_t(const support::Bytes&)>;

  BdcCache();
  // Injectable hash, for exercising the collision path with crafted inputs.
  explicit BdcCache(HashFn hash);
  // Releases this cache's share of the cache.bytes{cache=bdc} footprint
  // gauge (caches are per-Experiment; the gauge is process-wide).
  ~BdcCache();

  // Describe the binary at `path` on `s`, memoized on its content hash.
  // On a hit the cached description is returned with `path` rewritten to
  // the requested location (the only path-dependent field). Failures are
  // not cached. Unreadable paths fall through to Bdc::describe for its
  // error message.
  //
  // Repeat lookups of an unchanged file short-circuit on the VFS write
  // stamp — (site, path, Vfs::file_version) uniquely identifies content,
  // so the fast path answers lock-free without touching the bytes at
  // all. Only a stamp miss (new site, new path, rewritten file) pays the
  // sampled hash + byte-verify of the content-addressed lookup.
  support::Result<BinaryDescription> describe(const site::Site& s,
                                              std::string_view path);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct ContentEntry {
    support::Bytes bytes;  // kept for collision verification
    BinaryDescription description;
  };

  struct StampEntry {
    std::uint64_t lease_id = 0;  // identity re-verified on lookup
    std::string path;
    std::uint64_t version = 0;  // Vfs::file_version at memoization time
    BinaryDescription description;
    obs::SeriesHandle site_hits;  // cache.hits{cache=bdc,site=...}
  };

  void count_hit(const site::Site& s, const obs::SeriesHandle& site_hits,
                 std::uint64_t bytes_size);
  void store_stamp(const site::Site& s, std::string_view path,
                   std::uint64_t version, const BinaryDescription& d);

  HashFn hash_;
  // Content-addressed store, keyed by hash_(bytes); colliding contents
  // coexist as chain links, disambiguated by full byte compare.
  support::StripedMap<std::uint64_t, ContentEntry> entries_;
  // Fast path: fingerprint of (lease_id, path) -> newest write stamp +
  // description. A rewritten file shadows its old stamp.
  support::StripedMap<std::uint64_t, StampEntry> by_file_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  // Pre-resolved metric series (one atomic per hit on the fast path) and
  // this instance's share of the process-wide footprint gauge.
  obs::SeriesHandle legacy_hits_{"bdc.cache_hits", {}};
  obs::SeriesHandle legacy_misses_{"bdc.cache_misses", {}};
  obs::SeriesHandle bytes_saved_{"bdc.cache_bytes_saved", {}};
  obs::Gauge& footprint_gauge_;
  std::atomic<std::uint64_t> footprint_{0};
};

class EdcMemo {
 public:
  // Discover `s`'s environment, memoized per (site, discovery
  // fingerprint). The caller must hold `s`'s lease (the scan runs shell
  // commands against live state); hits are lock-free, and a cold scan
  // runs outside any map lock, so distinct sites discover concurrently.
  // Entries for distinct fingerprints coexist, so a site that alternates
  // between two shell states (e.g. module loaded / unloaded) hits in
  // both.
  EnvironmentDescription discover(const site::Site& s);
  EdcMemo();
  ~EdcMemo();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t lease_id = 0;  // identity re-verified on lookup
    std::uint64_t fingerprint = 0;
    EnvironmentDescription description;
    // Evidence the scan recorded at fill time, replayed verbatim on every
    // hit (a hit requires an identical discovery fingerprint, so a fresh
    // scan would record exactly these items). Entries filled under fault
    // injection are never stored, so this never carries torn-read views.
    std::vector<obs::Evidence> evidence;
    obs::SeriesHandle site_hits;  // cache.hits{cache=edc,site=...}
  };

  // key: fingerprint of (Site::lease_id(), Site::discovery_fingerprint())
  support::StripedMap<std::uint64_t, Entry> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  obs::SeriesHandle legacy_hits_{"edc.memo_hits", {}};
  obs::SeriesHandle legacy_misses_{"edc.memo_misses", {}};
  obs::Gauge& footprint_gauge_;
  std::atomic<std::uint64_t> footprint_{0};
};

// The bundle a parallel run threads through phases/TEC. Passing nullptr
// anywhere a MigrationCaches* is accepted reproduces the uncached path.
struct MigrationCaches {
  BdcCache bdc;
  EdcMemo edc;
  // Memoizes the loader's per-site library searches and ldd transcripts,
  // validated against VFS write stamps (binutils/resolver_cache.hpp).
  binutils::ResolverCache resolver;
};

}  // namespace feam
