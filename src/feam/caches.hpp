// Memoization layer for the parallel migration engine.
//
// The evaluation matrix re-describes the same binary bytes and re-scans
// unchanged site environments on every one of its ~70 migrations. Both
// operations are pure functions of observable state, so they memoize:
//
//   * BdcCache — content-addressed: hash of the binary's bytes ->
//     BinaryDescription. A binary migrated to N targets is parsed once.
//     Entries store the full bytes and are compared on lookup, so a hash
//     collision degrades to a cache miss, never a wrong description. The
//     hash function is injectable for exactly that test.
//   * EdcMemo — per-site, keyed by Site::discovery_fingerprint(): the
//     system half of the VFS plus the *content* of the environment and
//     loaded-module list — exactly what the scan reads. Scratch writes
//     (/home, /tmp) and save/restore environment churn leave the
//     fingerprint unchanged, so back-to-back migrations keep hitting;
//     installing software or loading a module still invalidates.
//
// Both caches are internally synchronized. Callers must still hold the
// site's lease while describing/discovering (the underlying components
// read live site state); the caches' own mutexes nest strictly inside the
// lease, and are never held across component calls, so no lock cycle
// involves them.
//
// The caches are opt-in: every component keeps its uncached entry point,
// and the sequential CLI flow is byte-for-byte unchanged (the regression
// gate pins its exact counter values).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "binutils/resolver_cache.hpp"
#include "feam/description.hpp"
#include "feam/edc.hpp"
#include "obs/metrics.hpp"
#include "site/site.hpp"
#include "support/byte_io.hpp"
#include "support/result.hpp"

namespace feam {

// FNV-1a (64-bit) over the byte content — the default content address.
std::uint64_t content_hash(const support::Bytes& bytes);

class BdcCache {
 public:
  using HashFn = std::function<std::uint64_t(const support::Bytes&)>;

  BdcCache();
  // Injectable hash, for exercising the collision path with crafted inputs.
  explicit BdcCache(HashFn hash);
  // Releases this cache's share of the cache.bytes{cache=bdc} footprint
  // gauge (caches are per-Experiment; the gauge is process-wide).
  ~BdcCache();

  // Describe the binary at `path` on `s`, memoized on its content hash.
  // On a hit the cached description is returned with `path` rewritten to
  // the requested location (the only path-dependent field). Failures are
  // not cached. Unreadable paths fall through to Bdc::describe for its
  // error message.
  //
  // Repeat lookups of an unchanged file short-circuit on the VFS write
  // stamp — (site, path, Vfs::file_version) uniquely identifies content,
  // so the fast path answers without touching the bytes at all. Only a
  // stamp miss (new site, new path, rewritten file) pays the sampled
  // hash + byte-verify of the content-addressed lookup.
  support::Result<BinaryDescription> describe(const site::Site& s,
                                              std::string_view path);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    support::Bytes bytes;  // kept for collision verification
    BinaryDescription description;
  };

  struct FileStamp {
    std::uint64_t version = 0;  // Vfs::file_version at memoization time
    BinaryDescription description;
  };

  // Footprint bookkeeping (callers hold mutex_): inserts/overwrites keep
  // footprint_ equal to the estimated retained bytes of every entry, and
  // mirror every change into the shared cache.bytes{cache=bdc} gauge.
  void store_stamp_locked(std::uint64_t lease_id, std::string_view path,
                          FileStamp stamp);
  void grow_footprint_locked(std::uint64_t bytes);
  void shrink_footprint_locked(std::uint64_t bytes);

  mutable std::mutex mutex_;
  HashFn hash_;
  // Chained per hash value: colliding contents coexist as separate links.
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  // Fast path: (lease_id, path) -> last seen write stamp + description.
  std::map<std::pair<std::uint64_t, std::string>, FileStamp, std::less<>>
      by_file_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Pre-resolved metric series (one atomic per hit on the fast path) and
  // this instance's share of the process-wide footprint gauge.
  obs::SeriesHandle legacy_hits_{"bdc.cache_hits", {}};
  obs::SeriesHandle legacy_misses_{"bdc.cache_misses", {}};
  obs::SeriesHandle bytes_saved_{"bdc.cache_bytes_saved", {}};
  obs::SiteSeriesCache labeled_hits_{"cache.hits", "bdc"};
  obs::SiteSeriesCache labeled_misses_{"cache.misses", "bdc"};
  obs::Gauge& footprint_gauge_;
  std::uint64_t footprint_ = 0;
};

class EdcMemo {
 public:
  // Discover `s`'s environment, memoized per (site, discovery
  // fingerprint). The caller must hold `s`'s lease (the scan runs shell
  // commands against live state); the memo's mutex is released during the
  // scan, so distinct sites discover concurrently. Entries for distinct
  // fingerprints coexist, so a site that alternates between two shell
  // states (e.g. module loaded / unloaded) hits in both.
  EnvironmentDescription discover(const site::Site& s);
  EdcMemo();
  ~EdcMemo();

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    EnvironmentDescription description;
  };

  mutable std::mutex mutex_;
  // key: (Site::lease_id(), Site::discovery_fingerprint())
  std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::SeriesHandle legacy_hits_{"edc.memo_hits", {}};
  obs::SeriesHandle legacy_misses_{"edc.memo_misses", {}};
  obs::SiteSeriesCache labeled_hits_{"cache.hits", "edc"};
  obs::SiteSeriesCache labeled_misses_{"cache.misses", "edc"};
  obs::Gauge& footprint_gauge_;
  std::uint64_t footprint_ = 0;
};

// The bundle a parallel run threads through phases/TEC. Passing nullptr
// anywhere a MigrationCaches* is accepted reproduces the uncached path.
struct MigrationCaches {
  BdcCache bdc;
  EdcMemo edc;
  // Memoizes the loader's per-site library searches and ldd transcripts,
  // validated against VFS write stamps (binutils/resolver_cache.hpp).
  binutils::ResolverCache resolver;
};

}  // namespace feam
