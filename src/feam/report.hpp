// The user-facing output of a FEAM run (paper Section V.C: "If at any
// point we determine that execution cannot occur, the reasons are detailed
// to the user via an output file" — and on success, "a description of the
// matching configuration details ... along with a script").
#pragma once

#include <string>

#include "feam/phases.hpp"

namespace feam {

// Renders the complete target-phase report: binary description summary,
// environment summary, per-determinant verdicts, resolution details, the
// evaluation trace, and (when ready) the configuration script.
std::string render_target_report(const TargetPhaseOutput& output);

// Renders the source-phase report: what was described, what was gathered,
// bundle accounting.
std::string render_source_report(const SourcePhaseOutput& output);

}  // namespace feam
