#include "feam/config.hpp"

#include "support/strings.hpp"

namespace feam {

const std::string& FeamConfigFile::mpiexec_for(site::MpiImpl impl) const {
  const auto it = mpiexec_by_type.find(impl);
  return it != mpiexec_by_type.end() ? it->second : default_mpiexec;
}

std::string FeamConfigFile::render() const {
  std::string out = "# FEAM configuration\n";
  out += "serial_submission_script = " + serial_submission_script + "\n";
  out += "parallel_submission_script = " + parallel_submission_script + "\n";
  out += "hello_world_ranks = " + std::to_string(hello_world_ranks) + "\n";
  out += "mpiexec = " + default_mpiexec + "\n";
  for (const auto& [impl, command] : mpiexec_by_type) {
    out += "mpiexec." + std::string(site::mpi_impl_slug(impl)) + " = " +
           command + "\n";
  }
  return out;
}

std::optional<FeamConfigFile> FeamConfigFile::parse(std::string_view text) {
  FeamConfigFile config;
  for (const auto& raw_line : support::split(text, '\n')) {
    const auto line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string key(support::trim(line.substr(0, eq)));
    const std::string value(support::trim(line.substr(eq + 1)));
    if (key.empty() || value.empty()) return std::nullopt;

    if (key == "serial_submission_script") {
      config.serial_submission_script = value;
    } else if (key == "parallel_submission_script") {
      config.parallel_submission_script = value;
    } else if (key == "hello_world_ranks") {
      try {
        config.hello_world_ranks = std::stoi(value);
      } catch (...) {
        return std::nullopt;
      }
      if (config.hello_world_ranks < 1) return std::nullopt;
    } else if (key == "mpiexec") {
      config.default_mpiexec = value;
    } else if (support::starts_with(key, "mpiexec.")) {
      const std::string slug = key.substr(8);
      bool known = false;
      for (const auto impl : {site::MpiImpl::kOpenMpi, site::MpiImpl::kMpich2,
                              site::MpiImpl::kMvapich2}) {
        if (slug == site::mpi_impl_slug(impl)) {
          config.mpiexec_by_type[impl] = value;
          known = true;
        }
      }
      if (!known) return std::nullopt;
    } else {
      return std::nullopt;  // unknown key: refuse to guess
    }
  }
  return config;
}

}  // namespace feam
