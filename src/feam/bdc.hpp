// The Binary Description Component (BDC) of FEAM (paper Section V.A).
//
// Gathers everything in Figure 3 about an application binary or shared
// library by driving the (reimplemented) standard utilities and scraping
// their text output, exactly as the original tool did:
//   * `objdump -p`  - file format, ISA, bitness, Dynamic Section
//                     (NEEDED/SONAME), Version Definitions/References;
//   * `readelf -p .comment` - compiler/linker stamps -> build OS & glibc;
//   * `ldd`         - shared library locations (for source-phase copies),
//                     with locate/find/hello-world fallbacks when ldd is
//                     missing or does not recognize the binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "feam/description.hpp"
#include "obs/provenance.hpp"
#include "site/site.hpp"
#include "support/result.hpp"

namespace feam::binutils {
class ResolverCache;
}  // namespace feam::binutils

namespace feam {

// Content-derived FNV-1a stamp over every description field except `path`
// (the one request-dependent field). The BDC's provenance evidence carries
// this stamp: it is computable from a cached description alone, so cache
// hits replay byte-identical evidence without touching the file bytes.
std::uint64_t description_stamp(const BinaryDescription& d);

// The canonical BDC evidence item for `d` described at (site, path). The
// component records it on a fresh parse; BdcCache re-synthesizes the exact
// same item on hits (it is a pure function of the cached description), so
// cached and uncached provenance are byte-identical.
obs::Evidence description_evidence(std::string_view site_name,
                                   std::string_view path,
                                   const BinaryDescription& d);

class Bdc {
 public:
  // Describes the binary at `path` on site `s` (target or guaranteed).
  static support::Result<BinaryDescription> describe(const site::Site& s,
                                                     std::string_view path);

  // Locates each of `needed` for the binary at `path` in `s`'s filesystem,
  // for source-phase copying. Tries ldd first, then `locate`, then `find`
  // over common library locations and LD_LIBRARY_PATH, then the ldd output
  // of a locally available "hello world" program (paper Section V.A).
  // Returns (name, path-or-nullopt) pairs in the order of `needed`. A
  // non-null `cache` memoizes the underlying ldd transcripts.
  static std::vector<std::pair<std::string, std::optional<std::string>>>
  locate_libraries(const site::Site& s, std::string_view path,
                   const std::vector<std::string>& needed,
                   std::string_view hello_world_path = "",
                   binutils::ResolverCache* cache = nullptr);
};

}  // namespace feam
