// The simulated compile+link step: takes a source-program description, a
// site, a compiler, and (for MPI programs) an MPI stack, and produces an
// ELF binary in the site's filesystem — with exactly the DT_NEEDED set,
// GLIBC version references, .comment stamps, and ABI note that a real
// toolchain at that site would have produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "site/site.hpp"
#include "support/result.hpp"
#include "toolchain/compiler.hpp"

namespace feam::toolchain {

// Abstract description of a program's source code: its language, the libc
// capabilities it uses (keys into the glibc feature catalog), and how big
// its compiled text is. The workload generators (src/workloads/) produce
// these for NPB and SPEC MPI2007.
struct ProgramSource {
  std::string name;
  Language language = Language::kC;
  bool uses_mpi = true;
  std::vector<std::string> libc_features = {"base", "stdio"};
  std::uint64_t text_size = 64 * 1024;
};

// Compiles `program` at `s` with the given MPI stack (whose compiler is
// used) and writes the binary to `output_path` in the site's VFS.
// Fails when the stack's compiler is not installed at the site or cannot
// build the program's language. Returns the output path.
support::Result<std::string> compile_mpi_program(
    site::Site& s, const ProgramSource& program,
    const site::MpiStackInstall& stack, std::string output_path);

// Compiles a serial (non-MPI) program with the given compiler family.
support::Result<std::string> compile_serial_program(
    site::Site& s, const ProgramSource& program, site::CompilerFamily family,
    std::string output_path);

// Statically links `program` against the stack's static MPI libraries.
// Only possible when the MPI implementation was installed with static
// libraries (MpiStackInstall::static_libs_available); most sites in the
// paper's testbed were not (Section VI.C). The resulting binary has no
// dynamic dependencies at all and migrates to any ISA-compatible site.
support::Result<std::string> compile_static_mpi_program(
    site::Site& s, const ProgramSource& program,
    const site::MpiStackInstall& stack, std::string output_path);

// The canonical MPI "hello world" source FEAM compiles for stack
// usability tests (paper Section III.B).
ProgramSource mpi_hello_world(Language lang);

}  // namespace feam::toolchain
