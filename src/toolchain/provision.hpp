// Site provisioning: turns a configured (but empty) Site into a fully
// materialized environment — /proc and /etc identity files, the C library,
// system libraries, compiler runtimes, every MPI stack, and the module
// files (or SoftEnv database) that advertise them. After provisioning,
// everything FEAM can learn about the site is present *in* the site.
#pragma once

#include "site/site.hpp"

namespace feam::toolchain {

void provision_site(site::Site& s);

// Rewrites the on-disk module database (Environment Modules files or the
// SoftEnv keys) from `s.module_files`. `provision_site` calls this once;
// it is exported so fleet generation and rolling-upgrade drift can damage
// or repair the database after edits to the advertised module list.
void write_module_database(site::Site& s);

// Path of the database entry advertising module `name` under this site's
// user-environment tool ("" when the site runs none) — the file drift
// deletes for an "advertised but missing" breakage.
std::string module_database_path(const site::Site& s, std::string_view name);

}  // namespace feam::toolchain
