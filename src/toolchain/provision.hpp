// Site provisioning: turns a configured (but empty) Site into a fully
// materialized environment — /proc and /etc identity files, the C library,
// system libraries, compiler runtimes, every MPI stack, and the module
// files (or SoftEnv database) that advertise them. After provisioning,
// everything FEAM can learn about the site is present *in* the site.
#pragma once

#include "site/site.hpp"

namespace feam::toolchain {

void provision_site(site::Site& s);

}  // namespace feam::toolchain
