// Package generators: materialize the C library, system libraries,
// compiler runtimes, and MPI implementations into a Site's virtual
// filesystem as real ELF shared objects (with sonames, symlink chains,
// GLIBC version references bound against the site's own C library, and
// ABI notes). Everything FEAM later discovers, it discovers from these
// files — the Site's configuration fields are never consulted by FEAM.
//
// The MPI link-level identities follow the paper's Table I:
//   MVAPICH2 : libmpich/libmpichf90 + libibverbs + libibumad
//   Open MPI : libmpi (+libnsl, libutil among the app's NEEDED)
//   MPICH2   : libmpich/libmpichf90 and no InfiniBand identifiers
#pragma once

#include <string>
#include <vector>

#include "elf/spec.hpp"
#include "site/site.hpp"
#include "toolchain/compiler.hpp"

namespace feam::toolchain {

// Binds a list of libc-feature keys into version-referenced undefined
// symbols, capped by the C library release the binary is built against
// (configure-style detection: features newer than the build libc simply
// are not used). Appends to spec.undefined_symbols.
void bind_libc_features(elf::ElfSpec& spec,
                        const std::vector<std::string>& feature_keys,
                        const support::Version& build_libc);

// Installs glibc (libc/libm/libpthread/libdl/librt + dynamic loader) into
// the site's default library directories with the full version-node
// definitions for site.clib_version, including the libc-X.Y.so +
// libc.so.6 symlink convention.
void install_clibrary(site::Site& s);

// libnsl/libutil (Open MPI app-side identifiers) and, on InfiniBand sites,
// libibverbs/libibumad (the MVAPICH2 identifiers).
void install_system_libs(site::Site& s);

// Compiler runtime libraries. GNU runtimes land in the system directories;
// Intel/PGI land under /opt/<compiler>-<version>/lib and are only reachable
// through module-managed LD_LIBRARY_PATH entries — which is why migrated
// Intel/PGI binaries so often miss them (paper Section VI.C).
void install_compiler(site::Site& s, const CompilerModel& compiler);

// One MPI stack under stack.prefix: implementation libraries, compiler
// wrapper scripts (mpicc/mpif90/...), and mpiexec. Registers nothing in
// the environment — module files (written by provisioning) do that.
void install_mpi_stack(site::Site& s, const site::MpiStackInstall& stack);

// SONAMEs of the implementation libraries an *application* linked with the
// given stack/language carries in DT_NEEDED (the Table I identities).
std::vector<std::string> mpi_app_sonames(const site::MpiStackInstall& stack,
                                         Language lang);

// The soname of the primary MPI library for the stack ("libmpi.so.0" /
// "libmpich.so.1.2" / "libmpich.so.1.0").
std::string mpi_primary_soname(const site::MpiStackInstall& stack);

}  // namespace feam::toolchain
