#include "toolchain/packages.hpp"

#include "elf/builder.hpp"
#include "support/rng.hpp"
#include "toolchain/glibc.hpp"

namespace feam::toolchain {

namespace {

using site::MpiImpl;
using site::MpiStackInstall;
using site::Site;
using support::Version;

constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * 1024;

// Directory for system libraries of the site's native bitness.
std::string system_lib_dir(const Site& s) {
  return elf::isa_bits(s.isa) == 64 ? "/lib64" : "/lib";
}
std::string usr_lib_dir(const Site& s) {
  return elf::isa_bits(s.isa) == 64 ? "/usr/lib64" : "/usr/lib";
}

// Writes a library image plus the lib<name>.so.X -> lib<name>.so.X.Y
// symlink chain a real install has. `real_suffix` extends the soname to
// the on-disk file name (empty -> file named exactly by soname).
void write_library(Site& s, const std::string& dir, const elf::ElfSpec& spec,
                   const std::string& real_suffix = "") {
  const std::string soname = spec.soname;
  const std::string file = soname + real_suffix;
  s.vfs.write_file(site::Vfs::join(dir, file), elf::build_image(spec));
  if (!real_suffix.empty()) {
    s.vfs.symlink(site::Vfs::join(dir, soname), file);
  }
  // Development symlink (libfoo.so -> soname) as ldconfig would leave it.
  const auto so_pos = soname.find(".so");
  if (so_pos != std::string::npos && so_pos + 3 < soname.size()) {
    s.vfs.symlink(site::Vfs::join(dir, soname.substr(0, so_pos + 3)), file);
  }
}

// Applies the site's library-scale knob (site.hpp) to a nominal text
// size, floored so every image still holds its headers comfortably.
std::size_t scaled_size(const Site& s, std::size_t nominal) {
  if (s.library_scale >= 1.0) return nominal;
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(nominal) * s.library_scale);
  return std::max<std::size_t>(scaled, 4 * KiB);
}

// Common skeleton for a shared library built *at* this site: correct ISA,
// deterministic content seeded by site+soname, GLIBC refs bound to the
// site's C library.
elf::ElfSpec library_skeleton(const Site& s, std::string soname,
                              std::size_t text_size,
                              const std::vector<std::string>& features) {
  elf::ElfSpec spec;
  spec.isa = s.isa;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = std::move(soname);
  spec.text_size = scaled_size(s, text_size);
  spec.content_seed = support::fnv1a(s.name + "|" + spec.soname);
  spec.needed.push_back("libc.so.6");
  bind_libc_features(spec, features, s.clib_version);
  return spec;
}

}  // namespace

void bind_libc_features(elf::ElfSpec& spec,
                        const std::vector<std::string>& feature_keys,
                        const Version& build_libc) {
  for (const auto& key : feature_keys) {
    const auto feature = find_libc_feature(key);
    if (!feature) continue;
    if (feature->node > build_libc) continue;  // not detected at configure time
    const std::string from_lib = key == "math" ? "libm.so.6" : "libc.so.6";
    spec.undefined_symbols.push_back(
        {feature->symbol, "GLIBC_" + feature->node.str(), from_lib});
  }
}

void install_clibrary(Site& s) {
  const std::string dir = system_lib_dir(s);
  const auto nodes = glibc_nodes_up_to(s.clib_version);
  const std::string release_suffix = "-" + s.clib_version.str() + ".so";

  // libc.so.6 -> libc-<release>.so.
  {
    elf::ElfSpec libc;
    libc.isa = s.isa;
    libc.kind = elf::FileKind::kSharedObject;
    libc.soname = "libc.so.6";
    libc.version_definitions = nodes;
    libc.text_size = scaled_size(s, 1700 * KiB);
    libc.content_seed = support::fnv1a(s.name + "|libc");
    libc.comments = {glibc_banner(s.clib_version)};
    for (const auto& feature : libc_feature_catalog()) {
      if (feature.key == "math") continue;
      if (feature.node <= s.clib_version) {
        libc.defined_symbols.push_back(
            {feature.symbol, "GLIBC_" + feature.node.str()});
      }
    }
    // Write as libc-2.X.so with the libc.so.6 symlink.
    const std::string file = "libc" + release_suffix;
    s.vfs.write_file(site::Vfs::join(dir, file), elf::build_image(libc));
    s.vfs.symlink(site::Vfs::join(dir, "libc.so.6"), file);
  }

  // libm and the small glibc satellites all define the same nodes.
  const auto satellite = [&](const std::string& soname, std::size_t size,
                             std::vector<elf::DefinedSymbol> symbols) {
    elf::ElfSpec lib;
    lib.isa = s.isa;
    lib.kind = elf::FileKind::kSharedObject;
    lib.soname = soname;
    lib.version_definitions = nodes;
    lib.defined_symbols = std::move(symbols);
    lib.text_size = scaled_size(s, size);
    lib.content_seed = support::fnv1a(s.name + "|" + soname);
    lib.needed.push_back("libc.so.6");
    const std::string stem = soname.substr(0, soname.find(".so"));
    const std::string file = stem + release_suffix;
    s.vfs.write_file(site::Vfs::join(dir, file), elf::build_image(lib));
    s.vfs.symlink(site::Vfs::join(dir, soname), file);
  };
  satellite("libm.so.6", 600 * KiB, {{"sqrt", "GLIBC_2.2.5"}});
  satellite("libpthread.so.0", 130 * KiB, {{"pthread_create", "GLIBC_2.2.5"}});
  satellite("libdl.so.2", 20 * KiB, {{"dlopen", "GLIBC_2.2.5"}});
  satellite("librt.so.1", 40 * KiB, {{"clock_gettime", "GLIBC_2.2.5"}});

  // The dynamic loader itself (name varies by ABI).
  const char* loader_soname = "ld-linux.so.2";
  switch (s.isa) {
    case elf::Isa::kX86_64: loader_soname = "ld-linux-x86-64.so.2"; break;
    case elf::Isa::kPpc64: loader_soname = "ld64.so.1"; break;
    case elf::Isa::kAarch64: loader_soname = "ld-linux-aarch64.so.1"; break;
    case elf::Isa::kX86:
    case elf::Isa::kPpc: break;
  }
  elf::ElfSpec ld = library_skeleton(s, loader_soname, 140 * KiB, {});
  ld.needed.clear();
  write_library(s, dir, ld);
}

void install_system_libs(Site& s) {
  const std::string dir = usr_lib_dir(s);
  write_library(s, dir,
                library_skeleton(s, "libnsl.so.1", 90 * KiB, {"base", "stdio"}));
  write_library(s, dir,
                library_skeleton(s, "libutil.so.1", 30 * KiB, {"base"}));

  bool has_infiniband = false;
  for (const auto& stack : s.stacks) {
    has_infiniband |= stack.interconnect == site::Interconnect::kInfiniband;
  }
  if (has_infiniband) {
    write_library(s, dir,
                  library_skeleton(s, "libibverbs.so.1", 120 * KiB,
                                   {"base", "stdio", "atfuncs"}));
    write_library(s, dir,
                  library_skeleton(s, "libibumad.so.3", 60 * KiB, {"base"}));
  }
}

void install_compiler(Site& s, const CompilerModel& compiler) {
  const bool system_compiler = compiler.family() == site::CompilerFamily::kGnu;
  const std::string dir = system_compiler
                              ? usr_lib_dir(s)
                              : compiler.install_prefix() + "/lib";

  struct RuntimeLib {
    Language lang;
    std::size_t size;
  };
  // Sizes chosen so per-site bundles land in the paper's ~45M regime.
  const auto size_of = [](const std::string& soname) -> std::size_t {
    if (soname == "libsvml.so") return 5800 * KiB;
    if (soname == "libimf.so") return 2400 * KiB;
    if (soname.find("libifcore") == 0) return 1300 * KiB;
    if (soname.find("libifport") == 0) return 300 * KiB;
    if (soname.find("libintlc") == 0) return 150 * KiB;
    if (soname.find("libstdc++") == 0) return 1 * MiB;
    if (soname.find("libgfortran") == 0) return 800 * KiB;
    if (soname.find("libg2c") == 0) return 200 * KiB;
    if (soname.find("libgcc_s") == 0) return 90 * KiB;
    if (soname.find("libpgf90") == 0) return 1500 * KiB;
    if (soname.find("libpgftnrtl") == 0) return 400 * KiB;
    if (soname.find("libpgc") == 0) return 500 * KiB;
    return 256 * KiB;
  };

  // Union of runtime sonames over all languages, each tagged with the
  // "most specific" language so ABI fingerprints are meaningful.
  std::vector<std::pair<std::string, Language>> libs;
  for (const Language lang : {Language::kC, Language::kCxx, Language::kFortran}) {
    if (!compiler.supports(lang)) continue;
    for (const auto& soname : compiler.runtime_sonames(lang)) {
      const bool seen = std::any_of(libs.begin(), libs.end(), [&](const auto& p) {
        return p.first == soname;
      });
      if (!seen) libs.emplace_back(soname, lang);
    }
  }

  for (const auto& [soname, lang] : libs) {
    elf::ElfSpec spec = library_skeleton(
        s, soname, size_of(soname),
        {"base", "stdio", "math",
         compiler.emits_stack_protector() ? "ssp" : "base"});
    if (soname.find("libm") != std::string::npos ||
        lang == Language::kFortran) {
      spec.needed.insert(spec.needed.begin(), "libm.so.6");
    }
    spec.abi = elf::AbiNote{std::string(site::compiler_name(compiler.family())),
                            compiler.version().str(),
                            "",
                            "",
                            compiler.abi_fingerprint(lang),
                            compiler.fp_model()};
    spec.comments = {compiler.comment_string()};
    write_library(s, dir, spec);
  }

  // Compatibility runtimes distributions ship alongside the system GCC
  // (compat-libf2c on RHEL5/CentOS5 for g77 binaries, compat-libgfortran
  // on RHEL6-era systems for gcc-4.1 binaries). These are what let old
  // Fortran binaries keep running after a compiler generation bump.
  if (compiler.family() == site::CompilerFamily::kGnu &&
      compiler.version().major() >= 4) {
    const bool modern = compiler.version() >= support::Version::of("4.4");
    const auto compat_runtime = [&](const char* era_version,
                                    const std::string& compat_soname,
                                    std::size_t size) {
      const CompilerModel era(site::CompilerFamily::kGnu,
                              support::Version::of(era_version));
      elf::ElfSpec compat =
          library_skeleton(s, compat_soname, size, {"base", "stdio", "math"});
      compat.needed.insert(compat.needed.begin(), "libm.so.6");
      compat.abi = elf::AbiNote{"GNU", era.version().str(), "", "",
                                era.abi_fingerprint(Language::kFortran),
                                era.fp_model()};
      compat.comments = {era.comment_string()};
      write_library(s, dir, compat);
    };
    if (modern) {
      // RHEL6/SLES11-era systems: compat-libgfortran for gcc-4.1 binaries.
      compat_runtime("4.1.2", "libgfortran.so.1", 800 * KiB);
    } else {
      // RHEL5/CentOS5-era systems: compat-libf2c-34 for g77 binaries, and
      // the gcc44 preview package's libgfortran.so.3.
      compat_runtime("3.4.6", "libg2c.so.0", 200 * KiB);
      compat_runtime("4.4.0", "libgfortran.so.3", 850 * KiB);
    }
  }
}

std::string mpi_primary_soname(const MpiStackInstall& stack) {
  switch (stack.impl) {
    case MpiImpl::kOpenMpi:
      return "libmpi.so.0";
    case MpiImpl::kMpich2:
      return "libmpich.so.1.2";
    case MpiImpl::kMvapich2:
      // MVAPICH2 1.2 shipped the older libmpich ABI; the 1.7 line moved to
      // .1.2 (this is what makes Ranger's MVAPICH2 binaries miss their MPI
      // library at 1.7 sites until resolution copies it over).
      return stack.version < Version::of("1.5") ? "libmpich.so.1.0"
                                                : "libmpich.so.1.2";
  }
  return "";
}

std::vector<std::string> mpi_app_sonames(const MpiStackInstall& stack,
                                         Language lang) {
  std::vector<std::string> out;
  const std::string primary = mpi_primary_soname(stack);
  switch (stack.impl) {
    case MpiImpl::kOpenMpi:
      out.push_back(primary);
      if (lang == Language::kFortran) out.push_back("libmpi_f77.so.0");
      if (lang == Language::kCxx) out.push_back("libmpi_cxx.so.0");
      // Table I: Open MPI applications carry libnsl/libutil directly.
      out.push_back("libnsl.so.1");
      out.push_back("libutil.so.1");
      break;
    case MpiImpl::kMpich2:
      if (lang == Language::kFortran) {
        out.push_back("libmpichf90" + primary.substr(std::string("libmpich").size()));
      }
      out.push_back(primary);
      break;
    case MpiImpl::kMvapich2: {
      if (lang == Language::kFortran) {
        out.push_back("libmpichf90" + primary.substr(std::string("libmpich").size()));
      }
      out.push_back(primary);
      // Table I: the InfiniBand user-space libraries identify MVAPICH2.
      out.push_back("libibverbs.so.1");
      out.push_back("libibumad.so.3");
      break;
    }
  }
  return out;
}

void install_mpi_stack(Site& s, const MpiStackInstall& stack) {
  const std::string libdir = stack.prefix + "/lib";
  const std::string bindir = stack.prefix + "/bin";
  const CompilerModel compiler(stack.compiler, stack.compiler_version);

  const auto abi_note = [&](Language lang) {
    return elf::AbiNote{std::string(site::compiler_name(stack.compiler)),
                        stack.compiler_version.str(),
                        site::mpi_impl_slug(stack.impl),
                        stack.version.str(),
                        compiler.abi_fingerprint(lang),
                        compiler.fp_model()};
  };

  // MPI implementations probe for newer libc features at configure time,
  // so libraries built on newer-glibc sites carry newer version refs —
  // the reason some bundle copies are rejected at older-glibc targets.
  const std::vector<std::string> mpi_features = {
      "base", "stdio", "affinity", "atfuncs", "pipe2", "preadv", "recvmmsg"};

  const std::string primary = mpi_primary_soname(stack);
  switch (stack.impl) {
    case MpiImpl::kOpenMpi: {
      elf::ElfSpec pal = library_skeleton(s, "libopen-pal.so.0", 900 * KiB,
                                          mpi_features);
      pal.abi = abi_note(Language::kC);
      write_library(s, libdir, pal, ".0.0");

      elf::ElfSpec rte = library_skeleton(s, "libopen-rte.so.0", 1200 * KiB,
                                          {"base", "stdio"});
      rte.needed.insert(rte.needed.begin(), "libopen-pal.so.0");
      rte.abi = abi_note(Language::kC);
      write_library(s, libdir, rte, ".0.0");

      elf::ElfSpec mpi = library_skeleton(s, "libmpi.so.0", 2800 * KiB,
                                          {"base", "stdio", "math"});
      mpi.needed.insert(mpi.needed.begin(),
                        {"libopen-rte.so.0", "libopen-pal.so.0",
                         "libnsl.so.1", "libutil.so.1", "libm.so.6"});
      mpi.defined_symbols = {{"MPI_Init", ""}, {"MPI_Comm_rank", ""},
                             {"MPI_Send", ""}, {"MPI_Finalize", ""}};
      mpi.abi = abi_note(Language::kC);
      write_library(s, libdir, mpi, ".0.0");

      elf::ElfSpec f77 = library_skeleton(s, "libmpi_f77.so.0", 300 * KiB,
                                          {"base"});
      f77.needed.insert(f77.needed.begin(), "libmpi.so.0");
      f77.defined_symbols = {{"mpi_init_", ""}, {"mpi_send_", ""}};
      f77.abi = abi_note(Language::kFortran);
      write_library(s, libdir, f77, ".0.0");

      elf::ElfSpec cxx = library_skeleton(s, "libmpi_cxx.so.0", 200 * KiB,
                                          {"base"});
      cxx.needed.insert(cxx.needed.begin(), "libmpi.so.0");
      cxx.abi = abi_note(Language::kCxx);
      write_library(s, libdir, cxx, ".0.0");
      break;
    }
    case MpiImpl::kMpich2:
    case MpiImpl::kMvapich2: {
      const std::string suffix = primary.substr(std::string("libmpich").size());

      elf::ElfSpec mpl = library_skeleton(s, "libmpl.so.1", 80 * KiB, {"base"});
      mpl.abi = abi_note(Language::kC);
      write_library(s, libdir, mpl, ".0");
      elf::ElfSpec opa = library_skeleton(s, "libopa.so.1", 60 * KiB, {"base"});
      opa.abi = abi_note(Language::kC);
      write_library(s, libdir, opa, ".0");

      elf::ElfSpec mpich = library_skeleton(s, primary, 3500 * KiB, mpi_features);
      mpich.needed.insert(mpich.needed.begin(),
                          {"libmpl.so.1", "libopa.so.1", "libm.so.6"});
      if (stack.impl == MpiImpl::kMvapich2) {
        mpich.needed.insert(mpich.needed.begin(),
                            {"libibverbs.so.1", "libibumad.so.3"});
      }
      mpich.defined_symbols = {{"MPI_Init", ""}, {"MPI_Comm_rank", ""},
                               {"MPI_Send", ""}, {"MPI_Finalize", ""}};
      mpich.abi = abi_note(Language::kC);
      write_library(s, libdir, mpich);

      elf::ElfSpec f90 = library_skeleton(s, "libmpichf90" + suffix, 200 * KiB,
                                          {"base"});
      f90.needed.insert(f90.needed.begin(), primary);
      f90.defined_symbols = {{"mpi_init_", ""}};
      f90.abi = abi_note(Language::kFortran);
      write_library(s, libdir, f90);
      break;
    }
  }

  // Compiler wrappers and the launcher. Wrapper scripts embed the compiler
  // banner; FEAM probes them with `-V` and reads path naming schemes.
  const auto wrapper = [&](const std::string& name, Language lang) {
    const std::string body =
        "#!/bin/sh\n"
        "# " + std::string(site::mpi_impl_name(stack.impl)) + " " +
        stack.version.str() + " compiler wrapper for " +
        language_name(lang) + "\n"
        "# COMPILER: " + compiler.version_banner() + "\n";
    s.vfs.write_file(site::Vfs::join(bindir, name), body);
  };
  wrapper("mpicc", Language::kC);
  wrapper("mpicxx", Language::kCxx);
  wrapper("mpif77", Language::kFortran);
  wrapper("mpif90", Language::kFortran);
  s.vfs.write_file(site::Vfs::join(bindir, "mpiexec"),
                   std::string("#!/bin/sh\n# ") +
                       site::mpi_impl_name(stack.impl) + " " +
                       stack.version.str() + " process launcher\n");
  s.vfs.symlink(site::Vfs::join(bindir, "mpirun"), "mpiexec");
}

}  // namespace feam::toolchain
