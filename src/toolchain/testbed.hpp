// The evaluation testbed: the five computing sites of the paper's
// Table II, fully provisioned. Site names, system types, operating
// systems, C library versions, compiler versions, and MPI stack
// combinations follow the table verbatim.
#pragma once

#include <memory>
#include <vector>

#include "site/site.hpp"

namespace feam::toolchain {

// Builds one provisioned site by name: "ranger", "forge", "blacklight",
// "india", "fir". `fault_seed` parameterizes the site's stochastic system
// errors (0 disables them entirely, useful in unit tests).
std::unique_ptr<site::Site> make_site(std::string_view name,
                                      std::uint64_t fault_seed = 0);

// All five Table II sites in the paper's order.
std::vector<std::unique_ptr<site::Site>> make_testbed(std::uint64_t fault_seed = 0);

// The site names in Table II order.
const std::vector<std::string>& testbed_site_names();

}  // namespace feam::toolchain
