#include "toolchain/launcher.hpp"

#include <algorithm>
#include <optional>

#include "binutils/resolver_cache.hpp"
#include "elf/file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/version.hpp"
#include "toolchain/glibc.hpp"

namespace feam::toolchain {

namespace {

using site::Site;
using support::Version;

constexpr double kTransientErrorRate = 0.04;

const char* kFortranIndicators[] = {"libmpi_f77", "libmpichf90", "libgfortran",
                                    "libg2c", "libifcore", "libpgf90"};

bool is_fortran_binary(const elf::ElfFile& binary) {
  for (const auto& needed : binary.needed()) {
    for (const char* indicator : kFortranIndicators) {
      if (support::starts_with(needed, indicator)) return true;
    }
  }
  return false;
}

bool is_mpi_library(std::string_view soname) {
  return support::starts_with(soname, "libmpi") ||
         support::starts_with(soname, "libmpich") ||
         support::starts_with(soname, "libopen-") ||
         support::starts_with(soname, "libmpl") ||
         support::starts_with(soname, "libopa");
}

bool is_fortran_binding_library(std::string_view soname) {
  return support::starts_with(soname, "libmpi_f77") ||
         support::starts_with(soname, "libmpichf90");
}

bool is_fortran_runtime(std::string_view soname) {
  return support::starts_with(soname, "libgfortran") ||
         support::starts_with(soname, "libg2c") ||
         support::starts_with(soname, "libifcore") ||
         support::starts_with(soname, "libpgf90") ||
         support::starts_with(soname, "libpgftnrtl");
}

// Run-time ABI validation between the binary and every resolved library
// that carries an ABI note. Returns an FP-exception RunResult when a
// contract is broken, nullopt when everything is compatible.
std::optional<RunResult> check_abi(const Site& host, const elf::ElfFile& binary,
                                   const binutils::Resolution& resolution,
                                   binutils::ResolverCache* cache) {
  obs::ScopedTimer timer(obs::histogram("launcher.abi_check_ns"));
  const auto& binary_note = binary.abi_note();
  if (!binary_note) return std::nullopt;  // nothing to contract against
  const bool fortran = is_fortran_binary(binary);

  for (const auto& lib : resolution.libs) {
    if (!lib.path) continue;
    const auto* injector = host.vfs.fault_injector();
    const std::uint64_t before =
        injector != nullptr ? injector->fault_count() : 0;
    const support::Bytes* data = host.vfs.read(*lib.path);
    const bool faulted =
        injector != nullptr && injector->fault_count() != before;
    if (data == nullptr) continue;
    std::optional<elf::ElfFile> parsed_local;
    const elf::ElfFile* parsed = nullptr;
    if (cache != nullptr && !faulted) {
      parsed = cache->parsed_elf(host, *lib.path, *data);
    } else if (auto direct = elf::ElfFile::parse(*data); direct.ok()) {
      parsed = &parsed_local.emplace(std::move(direct).take());
    }
    if (parsed == nullptr || !parsed->abi_note()) continue;
    const elf::AbiNote& note = *parsed->abi_note();

    if (is_mpi_library(lib.name) && !binary_note->mpi_impl.empty() &&
        !note.mpi_impl.empty()) {
      const auto bin_ver = Version::parse(binary_note->mpi_version);
      const auto lib_ver = Version::parse(note.mpi_version);
      // A binary built against a *newer* MPI release line than the library
      // that resolved hits missing internal symbols; Fortran codes die on
      // the mismatched descriptor ABI, C codes usually limp through (the
      // paper's "executes in some instances but not others"). Pre-release
      // tags within the same numeric line (1.7a vs 1.7a2 vs 1.7rc1) share
      // the ABI.
      const bool newer_line =
          bin_ver && lib_ver && bin_ver->components() > lib_ver->components();
      if (newer_line && fortran) {
        return RunResult{RunStatus::kFpException,
                         "program received signal SIGFPE: " + lib.name +
                             " ABI mismatch (built against " +
                             binary_note->mpi_impl + " " +
                             binary_note->mpi_version + ", resolved " +
                             note.mpi_version + ")",
                         ""};
      }
      // Fortran MPI bindings are compiler-ABI-specific: a binding library
      // built by a different compiler family breaks name-mangling and
      // argument conventions.
      if (fortran && is_fortran_binding_library(lib.name) &&
          note.compiler_family != binary_note->compiler_family) {
        return RunResult{RunStatus::kFpException,
                         "program received signal SIGFPE: " + lib.name +
                             " built with " + note.compiler_family +
                             ", application built with " +
                             binary_note->compiler_family,
                         ""};
      }
    }

    if (note.mpi_impl.empty() &&
        note.compiler_family == binary_note->compiler_family) {
      // Same-family compiler runtime with a different floating-point
      // contract (PGI's fast-math model changes per major release while
      // its sonames do not). C codes rarely touch the affected fast-math
      // entry points; Fortran codes hit them immediately.
      if (fortran && note.fp_model != binary_note->fp_model) {
        return RunResult{RunStatus::kFpException,
                         "program received signal SIGFPE: floating point "
                         "exception in " + lib.name +
                             " (runtime fp model mismatch)",
                         ""};
      }
      if (fortran && is_fortran_runtime(lib.name) &&
          note.abi_fingerprint != binary_note->abi_fingerprint) {
        return RunResult{RunStatus::kFpException,
                         "program received signal SIGFPE: " + lib.name +
                             " runtime ABI fingerprint mismatch",
                         ""};
      }
    }
  }
  return std::nullopt;
}

RunResult from_load_report(const LoadReport& report) {
  switch (report.status) {
    case LoadStatus::kOk:
      return {RunStatus::kSuccess, "", ""};
    case LoadStatus::kFileNotFound:
      return {RunStatus::kFileNotFound, report.detail, ""};
    case LoadStatus::kExecFormatError:
      return {RunStatus::kExecFormatError, report.detail, ""};
    case LoadStatus::kMissingLibrary:
      return {RunStatus::kMissingLibrary, report.detail, ""};
    case LoadStatus::kVersionMismatch:
      return {RunStatus::kVersionError, report.detail, ""};
  }
  return {RunStatus::kSystemError, "unreachable", ""};
}

// Persistent faults: some (binary, site) placements never work — broken
// daemon spawn on the nodes the scheduler keeps picking, or communication
// timeouts that scale with the executable's footprint. Deterministic per
// pairing so the 5-retry policy cannot absorb them (paper VI.C).
std::optional<RunResult> persistent_fault(const Site& host,
                                          std::string_view binary_path,
                                          std::uint64_t text_size) {
  const double size_factor =
      1.0 + static_cast<double>(text_size) / (4.0 * 1024 * 1024);
  const double probability = host.system_error_rate * size_factor;
  support::Rng rng(host.fault_seed ^
                   support::fnv1a(host.name + "|" + std::string(binary_path) +
                                  "|persistent"));
  if (!rng.chance(probability)) return std::nullopt;
  if (rng.chance(0.5)) {
    return RunResult{RunStatus::kSystemError,
                     "mpiexec: failed to spawn MPI daemon on allocated nodes",
                     ""};
  }
  return RunResult{RunStatus::kTimeout,
                   "mpiexec: communication timeout waiting for ranks", ""};
}

bool transient_fault(const Site& host, std::string_view binary_path,
                     int attempt) {
  support::Rng rng(host.fault_seed ^
                   support::fnv1a(host.name + "|" + std::string(binary_path) +
                                  "|attempt" + std::to_string(attempt)));
  return rng.chance(kTransientErrorRate);
}

}  // namespace

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kSuccess: return "success";
    case RunStatus::kFileNotFound: return "file not found";
    case RunStatus::kExecFormatError: return "exec format error";
    case RunStatus::kMissingLibrary: return "missing shared library";
    case RunStatus::kVersionError: return "C library version error";
    case RunStatus::kFpException: return "floating point exception";
    case RunStatus::kNoMpiStackSelected: return "no MPI stack selected";
    case RunStatus::kStackNotFunctional: return "MPI stack not functional";
    case RunStatus::kSystemError: return "system error";
    case RunStatus::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

// Parsed view of a binary that already passed load_binary, through the
// cache's write-stamp memo when available. `local` keeps an uncached parse
// alive in the caller's scope. Returns nullptr when the bytes fail to
// parse after all — possible only when the re-read was touched by fault
// injection (`faulted`, which also keeps the truncated bytes out of the
// stamp-keyed memo).
const elf::ElfFile* parse_loaded(const site::Site& host,
                                 std::string_view binary_path,
                                 const support::Bytes& data, bool faulted,
                                 binutils::ResolverCache* cache,
                                 std::optional<elf::ElfFile>& local) {
  if (cache != nullptr && !faulted) {
    if (const elf::ElfFile* memo = cache->parsed_elf(host, binary_path, data)) {
      return memo;
    }
  }
  auto parsed = elf::ElfFile::parse(data);
  if (!parsed.ok()) return nullptr;
  return &local.emplace(std::move(parsed).take());
}

// vfs.read plus a flag reporting whether fault injection touched it.
const support::Bytes* read_tracked(const site::Site& host,
                                   std::string_view path, bool& faulted) {
  const auto* injector = host.vfs.fault_injector();
  const std::uint64_t before =
      injector != nullptr ? injector->fault_count() : 0;
  const support::Bytes* data = host.vfs.read(path);
  faulted = injector != nullptr && injector->fault_count() != before;
  return data;
}

// Command-execution event shared by the serial and MPI launch paths.
void emit_run_event(const char* name, const site::Site& host,
                    std::string_view binary_path, int ranks,
                    const RunResult& result) {
  obs::emit(result.success() ? obs::Level::kDebug : obs::Level::kInfo, name,
            std::string(binary_path) + " -> " +
                run_status_name(result.status),
            {{"site", host.name},
             {"binary", std::string(binary_path)},
             {"ranks", std::to_string(ranks)},
             {"status", run_status_name(result.status)},
             {"detail", result.detail}});
}

RunResult run_serial_impl(const site::Site& host, std::string_view binary_path,
                          const std::vector<std::string>& extra_lib_dirs,
                          binutils::ResolverCache* cache) {
  const LoadReport report = load_binary(host, binary_path, extra_lib_dirs, cache);
  if (report.status != LoadStatus::kOk) return from_load_report(report);

  bool faulted = false;
  const support::Bytes* data = read_tracked(host, binary_path, faulted);
  std::optional<elf::ElfFile> local;
  const elf::ElfFile* binary_view =
      data == nullptr
          ? nullptr
          : parse_loaded(host, binary_path, *data, faulted, cache, local);
  if (binary_view == nullptr) {
    return {RunStatus::kSystemError,
            std::string(binary_path) + ": Input/output error", ""};
  }
  const elf::ElfFile& binary = *binary_view;

  // Executing the C library prints its banner (glibc behaviour the EDC
  // depends on).
  if (binary.soname() && *binary.soname() == "libc.so.6") {
    if (!host.libc_executable) {
      return {RunStatus::kSystemError, "Segmentation fault", ""};
    }
    // The banner is stored in the library's .comment by install_clibrary.
    const std::string banner = binary.comments().empty()
                                   ? ""
                                   : std::string(binary.comments().front());
    return {RunStatus::kSuccess, "", banner};
  }

  if (auto abi_failure = check_abi(host, binary, report.resolution, cache)) {
    return *abi_failure;
  }
  return {RunStatus::kSuccess, "", "ok"};
}

RunResult mpiexec_impl(const site::Site& host, std::string_view binary_path,
                       int ranks,
                       const std::vector<std::string>& extra_lib_dirs,
                       int attempt, binutils::ResolverCache* cache) {
  const site::MpiStackInstall* stack = host.selected_stack();
  if (stack == nullptr) {
    return {RunStatus::kNoMpiStackSelected, "mpiexec: command not found", ""};
  }
  if (!stack->functional) {
    return {RunStatus::kStackNotFunctional,
            "mpiexec: unable to contact MPI daemon; aborting (" +
                stack->slug() + ")",
            ""};
  }

  const LoadReport report = load_binary(host, binary_path, extra_lib_dirs, cache);
  if (report.status != LoadStatus::kOk) return from_load_report(report);

  bool faulted = false;
  const support::Bytes* data = read_tracked(host, binary_path, faulted);
  std::optional<elf::ElfFile> local;
  const elf::ElfFile* binary_view =
      data == nullptr
          ? nullptr
          : parse_loaded(host, binary_path, *data, faulted, cache, local);
  if (binary_view == nullptr) {
    return {RunStatus::kSystemError,
            std::string(binary_path) + ": Input/output error", ""};
  }
  const elf::ElfFile& binary = *binary_view;

  if (auto abi_failure = check_abi(host, binary, report.resolution, cache)) {
    return *abi_failure;
  }

  const std::uint64_t text_size = data->size();
  if (auto fault = persistent_fault(host, binary_path, text_size)) {
    return *fault;
  }
  if (transient_fault(host, binary_path, attempt)) {
    return {RunStatus::kSystemError,
            "mpiexec: transient daemon spawn failure", ""};
  }

  return {RunStatus::kSuccess, "",
          "Hello world from " + std::to_string(ranks) + " ranks"};
}

}  // namespace

RunResult run_serial(const site::Site& host, std::string_view binary_path,
                     const std::vector<std::string>& extra_lib_dirs,
                     binutils::ResolverCache* cache) {
  obs::counter("launcher.serial_runs").add();
  RunResult result = run_serial_impl(host, binary_path, extra_lib_dirs, cache);
  emit_run_event("launcher.run_serial", host, binary_path, 1, result);
  return result;
}

RunResult mpiexec(const site::Site& host, std::string_view binary_path,
                  int ranks, const std::vector<std::string>& extra_lib_dirs,
                  int attempt, binutils::ResolverCache* cache) {
  obs::ScopedTimer timer(obs::histogram("launcher.mpiexec_ns"));
  obs::counter("launcher.mpiexec_calls").add();
  RunResult result =
      mpiexec_impl(host, binary_path, ranks, extra_lib_dirs, attempt, cache);
  emit_run_event("launcher.mpiexec", host, binary_path, ranks, result);
  return result;
}

RunResult mpiexec_with_retries(const site::Site& host,
                               std::string_view binary_path, int ranks,
                               const std::vector<std::string>& extra_lib_dirs,
                               int attempts,
                               binutils::ResolverCache* cache) {
  RunResult last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) obs::counter("launcher.retries").add();
    last = mpiexec(host, binary_path, ranks, extra_lib_dirs, attempt, cache);
    if (last.success()) return last;
    // Only system errors are worth retrying; deterministic failures
    // (missing libraries, version errors, ABI breaks) never change.
    if (last.status != RunStatus::kSystemError &&
        last.status != RunStatus::kTimeout) {
      return last;
    }
  }
  return last;
}

}  // namespace feam::toolchain
