#include "toolchain/linker.hpp"

#include <algorithm>

#include "elf/builder.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "toolchain/glibc.hpp"
#include "toolchain/packages.hpp"

namespace feam::toolchain {

namespace {

using site::Site;
using support::Result;

const site::CompilerInstall* find_compiler(const Site& s,
                                           site::CompilerFamily family) {
  for (const auto& c : s.compilers) {
    if (c.family == family) return &c;
  }
  return nullptr;
}

// Shared tail of both compile paths once the compiler is validated.
Result<std::string> link(Site& s, const ProgramSource& program,
                         const CompilerModel& compiler,
                         const site::MpiStackInstall* stack,
                         std::string output_path) {
  elf::ElfSpec spec;
  spec.isa = s.isa;
  spec.kind = elf::FileKind::kExecutable;
  spec.text_size = program.text_size;
  spec.content_seed =
      support::fnv1a(s.name + "|" + program.name + "|" +
                     (stack != nullptr ? stack->slug() : "serial"));

  // DT_NEEDED, in real link order: MPI libraries, compiler runtimes,
  // libm, libc.
  if (stack != nullptr) {
    for (auto& soname : mpi_app_sonames(*stack, program.language)) {
      spec.needed.push_back(std::move(soname));
    }
    if (stack->wrappers_embed_rpath) {
      spec.rpath.push_back(stack->prefix + "/lib");
      const CompilerModel stack_compiler(stack->compiler,
                                         stack->compiler_version);
      if (!stack_compiler.install_prefix().empty()) {
        spec.rpath.push_back(stack_compiler.install_prefix() + "/lib");
      }
    }
  }
  for (auto& soname : compiler.runtime_sonames(program.language)) {
    spec.needed.push_back(std::move(soname));
  }
  const bool uses_math =
      std::find(program.libc_features.begin(), program.libc_features.end(),
                "math") != program.libc_features.end();
  if (uses_math) spec.needed.push_back("libm.so.6");
  spec.needed.push_back("libc.so.6");

  // Imported symbols: MPI entry points (unversioned — MPI is not a
  // link-level specification), then versioned libc features.
  if (stack != nullptr) {
    if (program.language == Language::kFortran) {
      spec.undefined_symbols.push_back({"mpi_init_", "", ""});
      spec.undefined_symbols.push_back({"mpi_send_", "", ""});
    } else {
      spec.undefined_symbols.push_back({"MPI_Init", "", ""});
      spec.undefined_symbols.push_back({"MPI_Send", "", ""});
    }
  }
  std::vector<std::string> features = program.libc_features;
  if (compiler.emits_stack_protector()) features.push_back("ssp");
  bind_libc_features(spec, features, s.clib_version);

  // Toolchain stamps: compiler comment with the build distro (as Red Hat /
  // SUSE compiler packages embed), plus the simulated linker's glibc stamp.
  spec.comments = {
      compiler.comment_string() + " (" + s.os_distro + " " +
          s.os_version.str() + ")",
      "ld (FEAM-sim binutils) glibc " + s.clib_version.str(),
  };

  spec.abi = elf::AbiNote{
      std::string(site::compiler_name(compiler.family())),
      compiler.version().str(),
      stack != nullptr ? site::mpi_impl_slug(stack->impl) : "",
      stack != nullptr ? stack->version.str() : "",
      compiler.abi_fingerprint(program.language),
      compiler.fp_model()};

  if (!s.vfs.write_file(output_path, elf::build_image(spec))) {
    return Result<std::string>::failure("cannot write " + output_path);
  }
  return output_path;
}

}  // namespace

Result<std::string> compile_mpi_program(Site& s, const ProgramSource& program,
                                        const site::MpiStackInstall& stack,
                                        std::string output_path) {
  using R = Result<std::string>;
  obs::ScopedTimer timer(obs::histogram("toolchain.compile_ns"));
  const auto* compiler_install = find_compiler(s, stack.compiler);
  if (compiler_install == nullptr) {
    return R::failure(std::string(site::compiler_name(stack.compiler)) +
                      " compiler not installed at " + s.name);
  }
  // The stack itself must be installed at this site.
  const bool stack_here =
      std::any_of(s.stacks.begin(), s.stacks.end(), [&](const auto& candidate) {
        return candidate.slug() == stack.slug();
      });
  if (!stack_here) {
    return R::failure("MPI stack " + stack.slug() + " not installed at " +
                      s.name);
  }
  const CompilerModel compiler(stack.compiler, compiler_install->version);
  if (!compiler.supports(program.language)) {
    return R::failure(compiler.comment_string() + " cannot compile " +
                      language_name(program.language));
  }
  return link(s, program, compiler, &stack, std::move(output_path));
}

Result<std::string> compile_serial_program(Site& s,
                                           const ProgramSource& program,
                                           site::CompilerFamily family,
                                           std::string output_path) {
  using R = Result<std::string>;
  const auto* compiler_install = find_compiler(s, family);
  if (compiler_install == nullptr) {
    return R::failure(std::string(site::compiler_name(family)) +
                      " compiler not installed at " + s.name);
  }
  const CompilerModel compiler(family, compiler_install->version);
  if (!compiler.supports(program.language)) {
    return R::failure(compiler.comment_string() + " cannot compile " +
                      language_name(program.language));
  }
  return link(s, program, compiler, nullptr, std::move(output_path));
}

support::Result<std::string> compile_static_mpi_program(
    Site& s, const ProgramSource& program, const site::MpiStackInstall& stack,
    std::string output_path) {
  using R = support::Result<std::string>;
  const auto* compiler_install = find_compiler(s, stack.compiler);
  if (compiler_install == nullptr) {
    return R::failure(std::string(site::compiler_name(stack.compiler)) +
                      " compiler not installed at " + s.name);
  }
  if (!stack.static_libs_available) {
    return R::failure("ld: cannot find -lmpich: " + stack.slug() +
                      " was not installed with static libraries");
  }
  const CompilerModel compiler(stack.compiler, compiler_install->version);
  if (!compiler.supports(program.language)) {
    return R::failure(compiler.comment_string() + " cannot compile " +
                      language_name(program.language));
  }

  elf::ElfSpec spec;
  spec.isa = s.isa;
  spec.kind = elf::FileKind::kExecutable;
  spec.static_link = true;
  // Everything the dynamic variant would load is folded into .text; the
  // ~4x blow-up matches real -static MPI binaries of the era.
  spec.text_size = program.text_size * 4 + 2 * 1024 * 1024;
  spec.content_seed =
      support::fnv1a(s.name + "|" + program.name + "|static|" + stack.slug());
  spec.comments = {
      compiler.comment_string() + " (" + s.os_distro + " " +
          s.os_version.str() + ")",
      "ld (FEAM-sim binutils) -static glibc " + s.clib_version.str(),
  };
  spec.abi = elf::AbiNote{std::string(site::compiler_name(compiler.family())),
                          compiler.version().str(),
                          site::mpi_impl_slug(stack.impl),
                          stack.version.str(),
                          compiler.abi_fingerprint(program.language),
                          compiler.fp_model()};
  if (!s.vfs.write_file(output_path, elf::build_image(spec))) {
    return R::failure("cannot write " + output_path);
  }
  return output_path;
}

ProgramSource mpi_hello_world(Language lang) {
  ProgramSource src;
  src.name = lang == Language::kFortran ? "hello_mpi_f" : "hello_mpi_c";
  src.language = lang;
  src.uses_mpi = true;
  src.libc_features = {"base", "stdio"};
  src.text_size = 8 * 1024;
  return src;
}

}  // namespace feam::toolchain
