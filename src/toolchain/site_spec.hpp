// User-defined computing sites: a JSON description that configures and
// provisions a Site, so the `feam` tool (and downstream users of the
// library) can model machines beyond the built-in testbed.
//
// Example:
//   {
//     "name": "mycluster",
//     "isa": "x86_64",                      // x86_64 | i686 | ppc64 | ppc
//     "os": {"distro": "CentOS", "version": "5.6",
//            "kernel": "2.6.18-194.el5"},
//     "clib_version": "2.5",
//     "system_type": "Cluster", "cpu_count": 512,
//     "user_env_tool": "modules",           // modules | softenv | none
//     "batch": "pbs",                       // pbs | sge | slurm
//     "compilers": [{"family": "gnu", "version": "4.1.2"},
//                   {"family": "intel", "version": "11.1"}],
//     "stacks": [
//       {"impl": "openmpi", "version": "1.4", "compiler": "gnu",
//        "interconnect": "infiniband", "functional": true,
//        "static_libs": false, "rpath_wrappers": false}
//     ]
//   }
//
// Stack compiler versions are looked up from the site's compiler list; a
// stack naming an uninstalled compiler family is an error.
#pragma once

#include <memory>
#include <string>

#include "site/site.hpp"
#include "support/result.hpp"

namespace feam::toolchain {

// Parses the JSON, configures the site, and provisions it. Errors name the
// offending field.
support::Result<std::unique_ptr<site::Site>> make_site_from_json(
    std::string_view json_text);

// Renders an existing site's configuration back to JSON (round-trips
// through make_site_from_json).
std::string site_to_json(const site::Site& s);

}  // namespace feam::toolchain
