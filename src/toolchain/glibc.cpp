#include "toolchain/glibc.hpp"

#include "support/strings.hpp"

namespace feam::toolchain {

using support::Version;

const std::vector<Version>& glibc_version_nodes() {
  static const std::vector<Version> kNodes = {
      Version::of("2.2.5"), Version::of("2.3"),  Version::of("2.3.2"),
      Version::of("2.3.3"), Version::of("2.3.4"), Version::of("2.4"),
      Version::of("2.5"),   Version::of("2.6"),  Version::of("2.7"),
      Version::of("2.8"),   Version::of("2.9"),  Version::of("2.10"),
      Version::of("2.11"),  Version::of("2.12"),
  };
  return kNodes;
}

std::vector<std::string> glibc_nodes_up_to(const Version& release) {
  std::vector<std::string> out;
  for (const Version& node : glibc_version_nodes()) {
    if (node <= release) out.push_back("GLIBC_" + node.str());
  }
  return out;
}

const std::vector<LibcFeature>& libc_feature_catalog() {
  // Keys are what workload descriptions reference; nodes follow the real
  // introduction/last-change points of the representative symbols.
  static const std::vector<LibcFeature> kCatalog = {
      {"base", "__libc_start_main", Version::of("2.2.5")},
      {"stdio", "printf", Version::of("2.2.5")},
      {"math", "sqrt", Version::of("2.2.5")},
      {"fadvise", "posix_fadvise64", Version::of("2.3.3")},
      {"timer", "timer_create", Version::of("2.3.3")},
      {"affinity", "sched_setaffinity", Version::of("2.3.4")},
      {"ssp", "__stack_chk_fail", Version::of("2.4")},
      {"atfuncs", "openat", Version::of("2.4")},
      {"inotify", "inotify_init", Version::of("2.4")},
      {"splice", "splice", Version::of("2.5")},
      {"mkostemp", "mkostemp", Version::of("2.7")},
      {"epoll2", "epoll_create1", Version::of("2.9")},
      {"pipe2", "pipe2", Version::of("2.9")},
      {"preadv", "preadv", Version::of("2.10")},
      {"recvmmsg", "recvmmsg", Version::of("2.12")},
  };
  return kCatalog;
}

std::optional<LibcFeature> find_libc_feature(std::string_view key) {
  for (const LibcFeature& f : libc_feature_catalog()) {
    if (f.key == key) return f;
  }
  return std::nullopt;
}

std::optional<Version> parse_glibc_version(std::string_view node) {
  if (!support::starts_with(node, "GLIBC_")) return std::nullopt;
  return Version::parse(node.substr(6));
}

std::string glibc_banner(const Version& release) {
  return "GNU C Library stable release version " + release.str() +
         ", by Roland McGrath et al.";
}

std::optional<Version> parse_glibc_banner(std::string_view banner) {
  static constexpr std::string_view kMarker = "release version ";
  const auto pos = banner.find(kMarker);
  if (pos == std::string_view::npos) return std::nullopt;
  auto rest = banner.substr(pos + kMarker.size());
  const auto end = rest.find_first_of(", \n");
  if (end != std::string_view::npos) rest = rest.substr(0, end);
  return Version::parse(rest);
}

}  // namespace feam::toolchain
