#include "toolchain/loader.hpp"

#include "elf/file.hpp"
#include "support/strings.hpp"

namespace feam::toolchain {

LoadReport load_binary(const site::Site& host, std::string_view path,
                       const std::vector<std::string>& extra_lib_dirs) {
  LoadReport report;
  const support::Bytes* data = host.vfs.read(path);
  if (data == nullptr) {
    report.status = LoadStatus::kFileNotFound;
    report.detail = std::string(path) + ": No such file or directory";
    return report;
  }
  const auto parsed = elf::ElfFile::parse(*data);
  if (!parsed.ok()) {
    report.status = LoadStatus::kExecFormatError;
    report.detail = std::string(path) + ": cannot execute binary file: " +
                    parsed.error();
    return report;
  }
  if (!elf::isa_executable_on(parsed.value().isa(), host.isa)) {
    report.status = LoadStatus::kExecFormatError;
    report.detail = std::string(path) + ": cannot execute binary file: " +
                    "Exec format error (" +
                    elf::isa_name(parsed.value().isa()) + " binary on " +
                    elf::isa_name(host.isa) + " host)";
    return report;
  }

  report.resolution = binutils::resolve_libraries(host, path, extra_lib_dirs);
  if (!report.resolution.complete()) {
    report.status = LoadStatus::kMissingLibrary;
    report.detail = "error while loading shared libraries: " +
                    support::join(report.resolution.missing(), ", ") +
                    ": cannot open shared object file: No such file or "
                    "directory";
    return report;
  }
  if (!report.resolution.version_errors.empty()) {
    const auto& err = report.resolution.version_errors.front();
    report.status = LoadStatus::kVersionMismatch;
    report.detail = err.required_by + ": version `" + err.version +
                    "' not found (required by " + err.required_by + ") in " +
                    err.provider;
    return report;
  }
  report.status = LoadStatus::kOk;
  return report;
}

}  // namespace feam::toolchain
