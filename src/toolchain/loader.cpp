#include "toolchain/loader.hpp"

#include <optional>

#include "binutils/resolver_cache.hpp"
#include "elf/file.hpp"
#include "obs/metrics.hpp"
#include "support/strings.hpp"

namespace feam::toolchain {

LoadReport load_binary(const site::Site& host, std::string_view path,
                       const std::vector<std::string>& extra_lib_dirs,
                       binutils::ResolverCache* cache) {
  obs::ScopedTimer timer(obs::histogram("launcher.load_ns"));
  LoadReport report;
  const auto* injector = host.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  const support::Bytes* data = host.vfs.read(path);
  const bool read_faulted =
      injector != nullptr && injector->fault_count() != faults_before;
  if (data == nullptr) {
    report.status = LoadStatus::kFileNotFound;
    report.detail = std::string(path) + ": No such file or directory";
    return report;
  }
  std::optional<elf::ElfFile> local;
  const elf::ElfFile* binary = nullptr;
  // Bytes touched by fault injection carry an unchanged write stamp and
  // must not reach the stamp-keyed parse memo.
  if (cache != nullptr && !read_faulted) {
    binary = cache->parsed_elf(host, path, *data);
  } else if (auto parsed = elf::ElfFile::parse(*data); parsed.ok()) {
    binary = &local.emplace(std::move(parsed).take());
  }
  if (binary == nullptr) {
    report.status = LoadStatus::kExecFormatError;
    report.detail = std::string(path) + ": cannot execute binary file: " +
                    elf::ElfFile::parse(*data).error();
    return report;
  }
  if (!elf::isa_executable_on(binary->isa(), host.isa)) {
    report.status = LoadStatus::kExecFormatError;
    report.detail = std::string(path) + ": cannot execute binary file: " +
                    "Exec format error (" +
                    elf::isa_name(binary->isa()) + " binary on " +
                    elf::isa_name(host.isa) + " host)";
    return report;
  }

  report.resolution =
      binutils::resolve_libraries(host, path, extra_lib_dirs, cache);
  if (!report.resolution.complete()) {
    report.status = LoadStatus::kMissingLibrary;
    report.detail = "error while loading shared libraries: " +
                    support::join(report.resolution.missing(), ", ") +
                    ": cannot open shared object file: No such file or "
                    "directory";
    return report;
  }
  if (!report.resolution.version_errors.empty()) {
    const auto& err = report.resolution.version_errors.front();
    report.status = LoadStatus::kVersionMismatch;
    report.detail = err.required_by + ": version `" + err.version +
                    "' not found (required by " + err.required_by + ") in " +
                    err.provider;
    return report;
  }
  report.status = LoadStatus::kOk;
  return report;
}

}  // namespace feam::toolchain
