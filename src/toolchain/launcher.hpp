// Dynamic half of the execution simulator: `mpiexec` and plain command
// execution, on top of the loader. Adds the failure modes a real run can
// hit *after* loading succeeds:
//   * no MPI stack selected in the shell (mpiexec not on PATH),
//   * stack advertised but not functional (misconfiguration, paper III.B),
//   * run-time ABI breaks between the binary and the libraries that
//     resolved — floating-point exceptions and symbol-contract mismatches
//     (decided from the ABI notes the toolchain embedded; paper VI.C),
//   * system errors: persistent (broken daemon placement for a given
//     binary/site pairing) and transient (absorbed by the paper's 5-retry
//     policy), both drawn from the site's seeded fault model.
#pragma once

#include <string>
#include <vector>

#include "site/site.hpp"
#include "toolchain/loader.hpp"

namespace feam::toolchain {

enum class RunStatus : std::uint8_t {
  kSuccess,
  kFileNotFound,
  kExecFormatError,
  kMissingLibrary,
  kVersionError,        // GLIBC version not found
  kFpException,         // ABI/floating-point break at run time
  kNoMpiStackSelected,  // mpiexec: command not found
  kStackNotFunctional,  // daemon/launcher broken for every program
  kSystemError,         // daemon spawn failure, node fault
  kTimeout,             // communication error timeout
};

const char* run_status_name(RunStatus status);

struct RunResult {
  RunStatus status = RunStatus::kSuccess;
  std::string detail;
  std::string output;  // stdout of a successful run
  bool success() const { return status == RunStatus::kSuccess; }
};

// Runs a binary under the site's currently selected MPI stack (the one
// whose directories a loaded module put on the shell's search paths).
// A non-null `cache` memoizes the loader's library searches; the fault
// model and run outcome are unaffected.
RunResult mpiexec(const site::Site& host, std::string_view binary_path,
                  int ranks, const std::vector<std::string>& extra_lib_dirs = {},
                  int attempt = 0, binutils::ResolverCache* cache = nullptr);

// Runs a serial command (no MPI launcher involved). Executing the C
// library binary itself prints its banner, as glibc does.
RunResult run_serial(const site::Site& host, std::string_view binary_path,
                     const std::vector<std::string>& extra_lib_dirs = {},
                     binutils::ResolverCache* cache = nullptr);

// The paper's policy: a binary is recorded as failing only after five
// spaced execution attempts (Section VI.C). Transient system errors are
// absorbed; persistent ones are not.
RunResult mpiexec_with_retries(const site::Site& host,
                               std::string_view binary_path, int ranks,
                               const std::vector<std::string>& extra_lib_dirs = {},
                               int attempts = 5,
                               binutils::ResolverCache* cache = nullptr);

}  // namespace feam::toolchain
