// A small POSIX-shell interpreter over a Site, sufficient to execute the
// scripts that flow through FEAM:
//   * FEAM's generated configuration scripts (`module load`, `soft add`,
//     `export VAR=value` with `$VAR` expansion, `mpiexec -n N binary`),
//   * user-supplied batch submission script bodies.
//
// This closes the loop on the paper's promise: the TEC hands the user "a
// script that will set [the configuration] up automatically on execution"
// — here that script is *executed verbatim* and must actually work, which
// the integration tests assert.
//
// Also provides the batch runner: submitting a BatchScript queues it (with
// a deterministic simulated wait) and runs its body in a fresh login
// shell, as a real resource manager does.
#pragma once

#include <string>
#include <vector>

#include "site/batch.hpp"
#include "site/site.hpp"
#include "toolchain/launcher.hpp"

namespace feam::toolchain {

struct ScriptResult {
  // Result of the last command that executed a program; success when the
  // whole script ran without a failing execution. Environment-only scripts
  // (nothing executed) report success with empty output.
  RunResult last_run;
  // Shell-level diagnostics ("module: not found: x", "syntax error: ...").
  std::vector<std::string> errors;
  bool ok() const { return errors.empty() && last_run.success(); }
};

// Executes the script line by line, mutating the site's environment the
// way a shell would. Recognized forms:
//   #comment / blank            ignored
//   module load <name>          Environment Modules
//   soft add +<key>             SoftEnv (maps onto the same stack)
//   export VAR=value            with $VAR / ${VAR} expansion in `value`
//   mpiexec -n <N> <path>       parallel execution under the selected stack
//   mpirun -np <N> <path>       synonym
//   <path>                      serial execution
// The environment changes persist in `s` (callers wanting a fresh shell
// snapshot/restore around the call — run_batch_job does).
ScriptResult run_script(site::Site& s, std::string_view script_text);

struct JobResult {
  std::string job_id;          // "12345.sched0"
  int queue_wait_seconds = 0;  // simulated, deterministic per job
  ScriptResult script;
  bool success() const { return script.ok(); }
};

// Submits a batch script at the site: validates the dialect against the
// site's resource manager, simulates a queue wait (the paper's debug-queue
// observation: short), and runs the body in a fresh login shell.
JobResult submit_batch_job(site::Site& s, const site::BatchScript& job);

}  // namespace feam::toolchain
