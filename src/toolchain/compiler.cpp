#include "toolchain/compiler.hpp"

#include "support/rng.hpp"

namespace feam::toolchain {

using site::CompilerFamily;

const char* language_name(Language lang) {
  switch (lang) {
    case Language::kC: return "C";
    case Language::kCxx: return "C++";
    case Language::kFortran: return "Fortran";
  }
  return "?";
}

std::vector<std::string> CompilerModel::runtime_sonames(Language lang) const {
  std::vector<std::string> out;
  switch (family_) {
    case CompilerFamily::kGnu: {
      out.push_back("libgcc_s.so.1");
      if (lang == Language::kCxx) {
        out.push_back(version_.major() >= 4 ? "libstdc++.so.6"
                                            : "libstdc++.so.5");
      }
      if (lang == Language::kFortran) {
        if (version_.major() < 4) {
          out.push_back("libg2c.so.0");
        } else if (version_.minor() >= 4) {
          out.push_back("libgfortran.so.3");
        } else {
          out.push_back("libgfortran.so.1");
        }
      }
      break;
    }
    case CompilerFamily::kIntel: {
      out.push_back("libimf.so");
      out.push_back("libintlc.so.5");
      out.push_back("libsvml.so");
      if (lang == Language::kCxx) out.push_back("libstdc++.so.6");
      if (lang == Language::kFortran) {
        // libifcore.so.5 has been stable across Intel 9-12.
        out.push_back("libifcore.so.5");
        out.push_back("libifport.so.5");
      }
      break;
    }
    case CompilerFamily::kPgi: {
      out.push_back("libpgc.so");
      if (lang == Language::kCxx) out.push_back("libstdc++.so.6");
      if (lang == Language::kFortran) {
        out.push_back("libpgf90.so");
        out.push_back("libpgftnrtl.so");
      }
      break;
    }
  }
  return out;
}

bool CompilerModel::supports(Language lang) const {
  // All modeled compilers handle C; C++ and Fortran support is universal
  // in this era except that the PGI C++ front end is not usable for the
  // template-heavy codes we model (real-world: pgCC frequently failed on
  // LAMMPS-class codes).
  if (lang == Language::kCxx && family_ == CompilerFamily::kPgi) return false;
  return true;
}

std::string CompilerModel::comment_string() const {
  switch (family_) {
    case CompilerFamily::kGnu:
      return "GCC: (GNU) " + version_.str();
    case CompilerFamily::kIntel:
      return "Intel(R) Compiler Version " + version_.str();
    case CompilerFamily::kPgi:
      return "PGI Compilers and Tools, Release " + version_.str();
  }
  return "";
}

bool CompilerModel::emits_stack_protector() const {
  switch (family_) {
    case CompilerFamily::kGnu: return version_ >= support::Version::of("4.1");
    case CompilerFamily::kIntel: return version_ >= support::Version::of("11");
    case CompilerFamily::kPgi: return false;
  }
  return false;
}

std::uint32_t CompilerModel::abi_fingerprint(Language lang) const {
  // Same family + same runtime soname generation -> identical fingerprint;
  // PGI mixes the major version in because its sonames never change while
  // its ABI does.
  std::string key = std::string(site::compiler_slug(family_));
  for (const auto& soname : runtime_sonames(lang)) key += "|" + soname;
  if (family_ == CompilerFamily::kPgi) {
    key += "|" + std::to_string(version_.major());
  }
  return static_cast<std::uint32_t>(support::fnv1a(key));
}

std::uint32_t CompilerModel::fp_model() const {
  // GNU and Intel share the strict default; PGI's fast-math default gives
  // it a distinct floating-point contract per major release.
  if (family_ == CompilerFamily::kPgi) {
    return 0x50000000u | version_.major();
  }
  return 1;
}

std::string CompilerModel::install_prefix() const {
  if (family_ == CompilerFamily::kGnu) return "";  // system compiler
  return "/opt/" + std::string(site::compiler_slug(family_)) + "-" +
         version_.str();
}

std::string CompilerModel::version_banner() const {
  switch (family_) {
    case CompilerFamily::kGnu:
      return "gcc (GCC) " + version_.str();
    case CompilerFamily::kIntel:
      return "Intel(R) C Compiler, Version " + version_.str();
    case CompilerFamily::kPgi:
      return "pgcc " + version_.str() + " 64-bit target";
  }
  return "";
}

}  // namespace feam::toolchain
