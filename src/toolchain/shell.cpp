#include "toolchain/shell.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace feam::toolchain {

namespace {

// $VAR and ${VAR} expansion against the site environment.
std::string expand(const site::Site& s, std::string_view text) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '$') {
      out += text[i++];
      continue;
    }
    ++i;
    bool braced = i < text.size() && text[i] == '{';
    if (braced) ++i;
    std::size_t start = i;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
      ++i;
    }
    const std::string name(text.substr(start, i - start));
    if (braced && i < text.size() && text[i] == '}') ++i;
    if (!name.empty()) {
      out += s.env.get(name).value_or("");
    } else {
      out += '$';
    }
  }
  return out;
}

// Strips a trailing ":$VAR" artifact: "a:" -> "a" (when $VAR was unset).
void strip_trailing_colon(std::string& value) {
  while (!value.empty() && value.back() == ':') value.pop_back();
}

}  // namespace

ScriptResult run_script(site::Site& s, std::string_view script_text) {
  obs::Span span("shell.run_script", {{"site", s.name}});
  ScriptResult result;
  result.last_run = {RunStatus::kSuccess, "", ""};

  for (const auto& raw_line : support::split(script_text, '\n')) {
    const auto line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    obs::counter("shell.commands").add();
    obs::emit(obs::Level::kDebug, "shell.command", std::string(line),
              {{"site", s.name}});
    const auto fields = support::split_ws(line);

    if (fields[0] == "module") {
      if (fields.size() >= 3 && fields[1] == "load") {
        if (!s.load_module(fields[2])) {
          result.errors.push_back("module: unable to locate a modulefile for '" +
                                  fields[2] + "'");
        }
      } else if (fields.size() >= 2 && fields[1] == "purge") {
        s.unload_all_modules();
      } else {
        result.errors.push_back("module: unsupported subcommand: " +
                                std::string(line));
      }
      continue;
    }

    if (fields[0] == "soft" && fields.size() >= 3 && fields[1] == "add") {
      // "+openmpi-1.4-intel" maps onto the registered stack the same way
      // the SoftEnv database was generated from it.
      std::string key = fields[2];
      if (!key.empty() && key.front() == '+') key.erase(0, 1);
      const auto* stack = s.stack_for_module(key);
      if (stack == nullptr) {
        result.errors.push_back("soft: no such key: " + fields[2]);
        continue;
      }
      s.env.prepend_to_list("PATH", stack->prefix + "/bin");
      s.env.prepend_to_list("LD_LIBRARY_PATH", stack->prefix + "/lib");
      continue;
    }

    if (fields[0] == "export") {
      const auto assignment = support::trim(line.substr(6));
      const auto eq = assignment.find('=');
      if (eq == std::string_view::npos) {
        result.errors.push_back("export: syntax error: " + std::string(line));
        continue;
      }
      const std::string name(assignment.substr(0, eq));
      std::string value = expand(s, assignment.substr(eq + 1));
      strip_trailing_colon(value);
      s.env.set(name, value);
      continue;
    }

    const bool is_launcher = fields[0] == "mpiexec" || fields[0] == "mpirun" ||
                             fields[0] == "mpirun_rsh" || fields[0] == "orterun";
    if (is_launcher) {
      int ranks = 1;
      std::string binary;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if ((fields[i] == "-n" || fields[i] == "-np") && i + 1 < fields.size()) {
          try {
            ranks = std::stoi(fields[++i]);
          } catch (...) {
            result.errors.push_back("mpiexec: bad rank count");
          }
        } else if (!support::starts_with(fields[i], "-")) {
          binary = expand(s, fields[i]);
          break;
        }
      }
      if (binary.empty()) {
        result.errors.push_back("mpiexec: no executable given");
        continue;
      }
      result.last_run = mpiexec_with_retries(s, binary, ranks);
      if (!result.last_run.success()) return result;
      continue;
    }

    // Anything else: a serial command (absolute path into the VFS).
    const std::string path = expand(s, fields[0]);
    result.last_run = run_serial(s, path);
    if (!result.last_run.success()) return result;
  }
  return result;
}

JobResult submit_batch_job(site::Site& s, const site::BatchScript& job) {
  obs::Span span("shell.submit_batch_job",
                 {{"site", s.name}, {"job", job.job_name}});
  obs::counter("shell.batch_jobs").add();
  JobResult result;
  if (job.kind != s.batch) {
    result.script.errors.push_back(
        std::string("submission rejected: site runs ") +
        site::batch_name(s.batch) + ", script is " +
        site::batch_name(job.kind));
    return result;
  }
  // Deterministic job id + queue wait derived from the job identity; debug
  // queues drain fast (the paper's recommendation for FEAM phases).
  support::Rng rng(support::fnv1a(s.name + "|" + job.job_name + "|" +
                                  job.render()));
  result.job_id =
      std::to_string(100000 + rng.next_below(900000)) + ".sched-" + s.name;
  const bool debug_queue = job.queue == "debug";
  result.queue_wait_seconds =
      static_cast<int>(rng.next_below(debug_queue ? 60 : 3600));

  // Fresh login shell: snapshot/restore around the body.
  const auto saved_path = s.env.get("PATH");
  const auto saved_ld = s.env.get("LD_LIBRARY_PATH");
  std::string body;
  for (const auto& command : job.commands) body += command + "\n";
  result.script = run_script(s, body);
  s.unload_all_modules();  // clears module bookkeeping before restoring env
  if (saved_path) s.env.set("PATH", *saved_path); else s.env.unset("PATH");
  if (saved_ld) s.env.set("LD_LIBRARY_PATH", *saved_ld);
  else s.env.unset("LD_LIBRARY_PATH");
  return result;
}

}  // namespace feam::toolchain
