#include "toolchain/site_spec.hpp"

#include "support/json.hpp"
#include "toolchain/provision.hpp"

namespace feam::toolchain {

namespace {

using support::Json;
using support::Version;

std::optional<elf::Isa> isa_from_string(std::string_view text) {
  if (text == "x86_64") return elf::Isa::kX86_64;
  if (text == "i686" || text == "i386") return elf::Isa::kX86;
  if (text == "ppc64") return elf::Isa::kPpc64;
  if (text == "ppc") return elf::Isa::kPpc;
  if (text == "aarch64") return elf::Isa::kAarch64;
  return std::nullopt;
}

const char* isa_to_string(elf::Isa isa) {
  switch (isa) {
    case elf::Isa::kX86_64: return "x86_64";
    case elf::Isa::kX86: return "i686";
    case elf::Isa::kPpc64: return "ppc64";
    case elf::Isa::kPpc: return "ppc";
    case elf::Isa::kAarch64: return "aarch64";
  }
  return "?";
}

std::optional<site::CompilerFamily> family_from_string(std::string_view slug) {
  for (const auto fam : {site::CompilerFamily::kGnu, site::CompilerFamily::kIntel,
                         site::CompilerFamily::kPgi}) {
    if (slug == site::compiler_slug(fam)) return fam;
  }
  return std::nullopt;
}

std::optional<site::MpiImpl> impl_from_string(std::string_view slug) {
  for (const auto impl : {site::MpiImpl::kOpenMpi, site::MpiImpl::kMpich2,
                          site::MpiImpl::kMvapich2}) {
    if (slug == site::mpi_impl_slug(impl)) return impl;
  }
  return std::nullopt;
}

}  // namespace

support::Result<std::unique_ptr<site::Site>> make_site_from_json(
    std::string_view json_text) {
  using R = support::Result<std::unique_ptr<site::Site>>;
  const auto parsed = Json::parse(json_text);
  if (!parsed || !parsed->is_object()) {
    return R::failure("site spec is not a JSON object");
  }
  const Json& j = *parsed;

  auto s = std::make_unique<site::Site>();
  s->name = j.get_string("name");
  if (s->name.empty()) return R::failure("site spec: \"name\" is required");

  const auto isa = isa_from_string(j.get_string("isa", "x86_64"));
  if (!isa) return R::failure("site spec: unknown \"isa\"");
  s->isa = *isa;

  const Json& os = j["os"];
  s->os_distro = os.get_string("distro", "Linux");
  const auto os_version = Version::parse(os.get_string("version", "1"));
  if (!os_version) return R::failure("site spec: bad os.version");
  s->os_version = *os_version;
  s->kernel_version = os.get_string("kernel", "2.6.18");

  const auto clib = Version::parse(j.get_string("clib_version"));
  if (!clib) return R::failure("site spec: \"clib_version\" is required");
  s->clib_version = *clib;

  s->system_type = j.get_string("system_type", "Cluster");
  s->cpu_count = static_cast<int>(j.get_int("cpu_count", 64));

  const std::string tool = j.get_string("user_env_tool", "modules");
  if (tool == "modules") s->user_env_tool = site::UserEnvTool::kModules;
  else if (tool == "softenv") s->user_env_tool = site::UserEnvTool::kSoftEnv;
  else if (tool == "none") s->user_env_tool = site::UserEnvTool::kNone;
  else return R::failure("site spec: unknown \"user_env_tool\"");

  const std::string batch = j.get_string("batch", "pbs");
  if (batch == "pbs") s->batch = site::BatchKind::kPbs;
  else if (batch == "sge") s->batch = site::BatchKind::kSge;
  else if (batch == "slurm") s->batch = site::BatchKind::kSlurm;
  else return R::failure("site spec: unknown \"batch\"");

  for (const Json& compiler : j["compilers"].as_array()) {
    const auto family = family_from_string(compiler.get_string("family"));
    const auto version = Version::parse(compiler.get_string("version"));
    if (!family || !version) {
      return R::failure("site spec: bad compiler entry");
    }
    s->compilers.push_back({*family, *version});
  }
  if (s->compilers.empty()) {
    return R::failure("site spec: at least one compiler is required");
  }

  for (const Json& stack_json : j["stacks"].as_array()) {
    site::MpiStackInstall stack;
    const auto impl = impl_from_string(stack_json.get_string("impl"));
    const auto version = Version::parse(stack_json.get_string("version"));
    const auto family = family_from_string(stack_json.get_string("compiler"));
    if (!impl || !version || !family) {
      return R::failure("site spec: bad stack entry");
    }
    stack.impl = *impl;
    stack.version = *version;
    stack.compiler = *family;
    const auto* compiler_install =
        [&]() -> const site::CompilerInstall* {
      for (const auto& c : s->compilers) {
        if (c.family == *family) return &c;
      }
      return nullptr;
    }();
    if (compiler_install == nullptr) {
      return R::failure("site spec: stack uses compiler \"" +
                        stack_json.get_string("compiler") +
                        "\" which is not installed at the site");
    }
    stack.compiler_version = compiler_install->version;
    stack.interconnect =
        stack_json.get_string("interconnect", "ethernet") == "infiniband"
            ? site::Interconnect::kInfiniband
            : site::Interconnect::kEthernet;
    stack.functional = stack_json.get_bool("functional", true);
    stack.static_libs_available = stack_json.get_bool("static_libs", false);
    stack.wrappers_embed_rpath = stack_json.get_bool("rpath_wrappers", false);
    s->stacks.push_back(std::move(stack));
  }

  provision_site(*s);
  return s;
}

std::string site_to_json(const site::Site& s) {
  Json j;
  j.set("name", s.name);
  j.set("isa", isa_to_string(s.isa));
  Json os;
  os.set("distro", s.os_distro);
  os.set("version", s.os_version.str());
  os.set("kernel", s.kernel_version);
  j.set("os", os);
  j.set("clib_version", s.clib_version.str());
  j.set("system_type", s.system_type);
  j.set("cpu_count", s.cpu_count);
  j.set("user_env_tool",
        s.user_env_tool == site::UserEnvTool::kModules   ? "modules"
        : s.user_env_tool == site::UserEnvTool::kSoftEnv ? "softenv"
                                                         : "none");
  j.set("batch", s.batch == site::BatchKind::kPbs   ? "pbs"
                 : s.batch == site::BatchKind::kSge ? "sge"
                                                    : "slurm");
  Json::Array compilers;
  for (const auto& c : s.compilers) {
    Json entry;
    entry.set("family", site::compiler_slug(c.family));
    entry.set("version", c.version.str());
    compilers.push_back(std::move(entry));
  }
  j.set("compilers", Json(std::move(compilers)));
  Json::Array stacks;
  for (const auto& stack : s.stacks) {
    Json entry;
    entry.set("impl", site::mpi_impl_slug(stack.impl));
    entry.set("version", stack.version.str());
    entry.set("compiler", site::compiler_slug(stack.compiler));
    entry.set("interconnect",
              stack.interconnect == site::Interconnect::kInfiniband
                  ? "infiniband"
                  : "ethernet");
    entry.set("functional", stack.functional);
    entry.set("static_libs", stack.static_libs_available);
    entry.set("rpath_wrappers", stack.wrappers_embed_rpath);
    stacks.push_back(std::move(entry));
  }
  j.set("stacks", Json(std::move(stacks)));
  return j.dump(2);
}

}  // namespace feam::toolchain
