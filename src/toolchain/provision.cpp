#include "toolchain/provision.hpp"

#include "support/strings.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/packages.hpp"

namespace feam::toolchain {

namespace {

using site::Site;
using site::UserEnvTool;

void write_os_identity(Site& s) {
  s.vfs.write_file("/proc/version",
                   "Linux version " + s.kernel_version +
                       " (gcc version unknown) #1 SMP\n");
  // /etc/*release per distro family.
  const std::string pretty =
      s.os_distro + " release " + s.os_version.str();
  if (s.os_distro == "CentOS") {
    s.vfs.write_file("/etc/redhat-release", pretty + " (Final)\n");
  } else if (support::contains(s.os_distro, "Red Hat")) {
    s.vfs.write_file("/etc/redhat-release",
                     s.os_distro + " release " + s.os_version.str() +
                         " (Santiago)\n");
  } else if (support::contains(s.os_distro, "SUSE")) {
    s.vfs.write_file("/etc/SuSE-release",
                     s.os_distro + " " + s.os_version.str() + " (x86_64)\n");
  } else {
    s.vfs.write_file("/etc/system-release", pretty + "\n");
  }
}

}  // namespace

std::string module_database_path(const Site& s, std::string_view name) {
  if (s.user_env_tool == UserEnvTool::kModules) {
    return "/usr/share/Modules/modulefiles/" + std::string(name);
  }
  if (s.user_env_tool == UserEnvTool::kSoftEnv) {
    std::string key(name);
    std::replace(key.begin(), key.end(), '/', '-');
    return "/etc/softenv/+" + key;
  }
  return "";
}

void write_module_database(Site& s) {
  // Module files under /usr/share/Modules/modulefiles (Environment
  // Modules) or a SoftEnv database under /etc/softenv; their *presence* is
  // how FEAM's EDC detects which tool a site runs.
  for (const auto& m : s.module_files) {
    std::string body = "#%Module1.0\n";
    for (const auto& [var, entry] : m.prepends) {
      body += "prepend-path " + var + " " + entry + "\n";
    }
    const std::string path = module_database_path(s, m.name);
    if (!path.empty()) s.vfs.write_file(path, body);
  }
  if (s.user_env_tool == UserEnvTool::kModules) {
    s.vfs.write_file("/usr/bin/modulecmd", "#!/bin/sh\n# modulecmd stub\n");
  } else if (s.user_env_tool == UserEnvTool::kSoftEnv) {
    s.vfs.write_file("/usr/bin/soft", "#!/bin/sh\n# softenv stub\n");
  }
}

void provision_site(Site& s) {
  // Base shell environment of a fresh login.
  s.env.set("PATH", "/usr/local/bin:/usr/bin:/bin");
  s.env.set("HOME", "/home/user");
  s.vfs.mkdirs("/home/user");
  s.vfs.mkdirs("/tmp");

  write_os_identity(s);
  install_clibrary(s);
  install_system_libs(s);

  for (const auto& compiler_install : s.compilers) {
    install_compiler(s, CompilerModel(compiler_install.family,
                                      compiler_install.version));
  }

  for (auto& stack : s.stacks) {
    if (stack.prefix.empty()) {
      stack.prefix = "/opt/" + stack.slug();
    }
    install_mpi_stack(s, stack);

    if (!stack.advertised) continue;
    site::ModuleFile module;
    module.name = std::string(site::mpi_impl_slug(stack.impl)) + "/" +
                  stack.version.str() + "-" +
                  site::compiler_slug(stack.compiler);
    module.prepends.emplace_back("PATH", stack.prefix + "/bin");
    module.prepends.emplace_back("LD_LIBRARY_PATH", stack.prefix + "/lib");
    // Non-system compilers chain their runtime directory in, as real
    // module files do.
    const CompilerModel compiler(stack.compiler, stack.compiler_version);
    if (!compiler.install_prefix().empty()) {
      module.prepends.emplace_back("LD_LIBRARY_PATH",
                                   compiler.install_prefix() + "/lib");
    }
    s.module_files.push_back(std::move(module));
  }
  write_module_database(s);
}

}  // namespace feam::toolchain
