// Compiler models: which runtime shared libraries each compiler family and
// version links into a binary, what .comment stamps it leaves, and the
// ABI/floating-point contract tags the simulation uses where real machine
// code semantics would otherwise decide (see elf::AbiNote).
//
// The version-to-runtime mapping encodes the real-world facts that drive
// the paper's "missing shared library" failures:
//   GNU   3.x -> libg2c.so.0        (g77 runtime)
//         4.1-4.3 -> libgfortran.so.1
//         4.4+    -> libgfortran.so.3
//         C++: 3.x -> libstdc++.so.5, 4.x -> libstdc++.so.6
//   Intel 10.x -> libifcore.so.4; 11.x/12.x -> libifcore.so.5 (plus libimf,
//         libintlc.so.5, libsvml — never present in default system dirs)
//   PGI   -> libpgc.so, libpgf90.so, libpgftnrtl.so (unversioned sonames,
//         so cross-version resolution "succeeds" and breaks at run time)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "site/ids.hpp"
#include "support/version.hpp"

namespace feam::toolchain {

enum class Language : std::uint8_t { kC, kCxx, kFortran };

const char* language_name(Language lang);

class CompilerModel {
 public:
  CompilerModel(site::CompilerFamily family, support::Version version)
      : family_(family), version_(std::move(version)) {}

  site::CompilerFamily family() const { return family_; }
  const support::Version& version() const { return version_; }

  // SONAMEs of the runtime libraries a binary of `lang` links, beyond the
  // C library and libm. Order matters (link order).
  std::vector<std::string> runtime_sonames(Language lang) const;

  // True when this compiler can build the given language at all
  // (e.g. GNU 3.4 has no Fortran 90 front end worth speaking of here).
  bool supports(Language lang) const;

  // .comment stamp, e.g. "GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)".
  std::string comment_string() const;

  // Does this compiler emit stack-protector references (__stack_chk_fail,
  // a GLIBC_2.4 symbol)? Models gcc>=4.1 / icc>=11 defaults.
  bool emits_stack_protector() const;

  // Simulation ABI tags (see elf::AbiNote): runtime ABI fingerprint and
  // floating-point model. Same family + same runtime generation =>
  // identical tags; PGI fingerprints change per major version even though
  // its sonames do not — the source of its run-time ABI breaks.
  std::uint32_t abi_fingerprint(Language lang) const;
  std::uint32_t fp_model() const;

  // Prefix where non-system compilers install their runtimes
  // ("/opt/intel-12/lib"); empty for the system GNU compiler.
  std::string install_prefix() const;

  // What "<wrapper> -V" reports, e.g. "Intel(R) C Compiler, Version 12.0".
  std::string version_banner() const;

 private:
  site::CompilerFamily family_;
  support::Version version_;
};

}  // namespace feam::toolchain
