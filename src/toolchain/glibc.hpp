// The GNU C library model: the x86-64 version-node history, a catalog of
// library features with the version node each was introduced at, and the
// banner `libc.so.6` prints when executed.
//
// This is what makes the paper's "required C library version" determinant
// (Section III.C) meaningful in the simulation: a binary's GLIBC_* version
// references are decided by which features its source uses AND which nodes
// existed in the glibc it was built against — so the same source compiled
// on Forge (2.12) and on Ranger (2.3.4) produces binaries with different
// requirements, exactly as in reality.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/version.hpp"

namespace feam::toolchain {

// All GLIBC_* version nodes (x86-64 flavor: the base node is 2.2.5) up to
// the newest release the testbed uses, ascending.
const std::vector<support::Version>& glibc_version_nodes();

// Nodes defined by a glibc of the given release (all nodes <= release),
// as "GLIBC_x.y[.z]" strings for verdef emission.
std::vector<std::string> glibc_nodes_up_to(const support::Version& release);

// One entry of the feature catalog: an abstract capability a program's
// source can use, the version node its symbols bind to, and a
// representative symbol name for the dynsym.
struct LibcFeature {
  std::string key;       // "ssp", "preadv", ...
  std::string symbol;    // "__stack_chk_fail", ...
  support::Version node; // GLIBC node the symbol binds to
};

const std::vector<LibcFeature>& libc_feature_catalog();
std::optional<LibcFeature> find_libc_feature(std::string_view key);

// Parses "GLIBC_2.3.4" -> 2.3.4; nullopt for non-GLIBC version strings.
std::optional<support::Version> parse_glibc_version(std::string_view node);

// The banner `/lib64/libc.so.6` prints when executed, e.g.
// "GNU C Library stable release version 2.5, by Roland McGrath et al.".
std::string glibc_banner(const support::Version& release);
// Extracts the release version back out of the banner text (what FEAM's
// EDC does after running the C library binary).
std::optional<support::Version> parse_glibc_banner(std::string_view banner);

}  // namespace feam::toolchain
