#include "toolchain/testbed.hpp"

#include <stdexcept>

#include "support/rng.hpp"
#include "toolchain/provision.hpp"

namespace feam::toolchain {

namespace {

using site::CompilerFamily;
using site::Interconnect;
using site::MpiImpl;
using site::MpiStackInstall;
using site::Site;
using support::Version;

MpiStackInstall stack(MpiImpl impl, const char* version, CompilerFamily fam,
                      const char* compiler_version, Interconnect ic,
                      bool functional = true) {
  MpiStackInstall s;
  s.impl = impl;
  s.version = Version::of(version);
  s.compiler = fam;
  s.compiler_version = Version::of(compiler_version);
  s.interconnect = ic;
  s.functional = functional;
  return s;
}

std::unique_ptr<Site> configure(std::string_view name,
                                std::uint64_t fault_seed) {
  auto s = std::make_unique<Site>();
  s->name = std::string(name);
  s->isa = elf::Isa::kX86_64;
  s->fault_seed = fault_seed ^ support::fnv1a(name);
  s->system_error_rate = fault_seed == 0 ? 0.0 : 0.02;

  if (name == "ranger") {
    // XSEDE Ranger, Texas Advanced Computing Center (MPP, 62,976 CPUs).
    s->center = "Texas Advanced Computing Center";
    s->system_type = "MPP";
    s->cpu_count = 62976;
    s->os_distro = "CentOS";
    s->os_version = Version::of("4.9");
    s->kernel_version = "2.6.9-89.el4";
    s->clib_version = Version::of("2.3.4");
    s->user_env_tool = site::UserEnvTool::kModules;
    s->batch = site::BatchKind::kSge;
    s->compilers = {{CompilerFamily::kGnu, Version::of("3.4.6")},
                    {CompilerFamily::kIntel, Version::of("10.1")},
                    {CompilerFamily::kPgi, Version::of("7.2")}};
    for (const CompilerFamily fam :
         {CompilerFamily::kIntel, CompilerFamily::kGnu, CompilerFamily::kPgi}) {
      const char* cv = fam == CompilerFamily::kGnu ? "3.4.6"
                       : fam == CompilerFamily::kIntel ? "10.1" : "7.2";
      s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.3", fam, cv,
                                Interconnect::kInfiniband));
      s->stacks.push_back(stack(MpiImpl::kMvapich2, "1.2", fam, cv,
                                Interconnect::kInfiniband));
    }
  } else if (name == "forge") {
    // XSEDE Forge, NCSA (Hybrid CPU/GPU, 576 CPUs).
    s->center = "National Center for Supercomputing Applications";
    s->system_type = "Hybrid";
    s->cpu_count = 576;
    s->os_distro = "Red Hat Enterprise Linux Server";
    s->os_version = Version::of("6.1");
    s->kernel_version = "2.6.32-131.el6";
    s->clib_version = Version::of("2.12");
    s->user_env_tool = site::UserEnvTool::kSoftEnv;
    s->batch = site::BatchKind::kPbs;
    s->compilers = {{CompilerFamily::kGnu, Version::of("4.4.5")},
                    {CompilerFamily::kIntel, Version::of("12")}};
    s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", CompilerFamily::kGnu,
                              "4.4.5", Interconnect::kInfiniband));
    s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", CompilerFamily::kIntel,
                              "12", Interconnect::kInfiniband));
    s->stacks.push_back(stack(MpiImpl::kMvapich2, "1.7rc1",
                              CompilerFamily::kIntel, "12",
                              Interconnect::kInfiniband));
  } else if (name == "blacklight") {
    // XSEDE Blacklight, Pittsburgh Supercomputing Center (SMP, 4,096 CPUs).
    s->center = "Pittsburgh Supercomputing Center";
    s->system_type = "SMP";
    s->cpu_count = 4096;
    s->os_distro = "SUSE Linux Enterprise Server";
    s->os_version = Version::of("11");
    s->kernel_version = "2.6.32.13-0.5";
    s->clib_version = Version::of("2.11.1");
    s->user_env_tool = site::UserEnvTool::kModules;
    s->batch = site::BatchKind::kPbs;
    s->compilers = {{CompilerFamily::kGnu, Version::of("4.4.3")},
                    {CompilerFamily::kIntel, Version::of("11.1")}};
    s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", CompilerFamily::kIntel,
                              "11.1", Interconnect::kEthernet));
    s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", CompilerFamily::kGnu,
                              "4.4.3", Interconnect::kEthernet));
  } else if (name == "india") {
    // FutureGrid India, Indiana University (Cluster, 920 CPUs).
    s->center = "Indiana University";
    s->system_type = "Cluster";
    s->cpu_count = 920;
    s->os_distro = "Red Hat Enterprise Linux Server";
    s->os_version = Version::of("5.6");
    s->kernel_version = "2.6.18-238.el5";
    s->clib_version = Version::of("2.5");
    s->user_env_tool = site::UserEnvTool::kModules;
    s->batch = site::BatchKind::kPbs;
    s->compilers = {{CompilerFamily::kGnu, Version::of("4.1.2")},
                    {CompilerFamily::kIntel, Version::of("11.1")}};
    for (const CompilerFamily fam :
         {CompilerFamily::kIntel, CompilerFamily::kGnu}) {
      const char* cv = fam == CompilerFamily::kGnu ? "4.1.2" : "11.1";
      s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", fam, cv,
                                Interconnect::kInfiniband));
      // The MVAPICH2/GNU combination is advertised but misconfigured —
      // the kind of unusable stack the paper's usability test catches
      // (Section III.B).
      s->stacks.push_back(stack(MpiImpl::kMvapich2, "1.7a2", fam, cv,
                                Interconnect::kInfiniband,
                                /*functional=*/fam != CompilerFamily::kGnu));
      // MPICH2 builds static libraries by default — the one place in the
      // testbed where statically linked binaries are even an option.
      auto mpich2 = stack(MpiImpl::kMpich2, "1.4", fam, cv,
                          Interconnect::kEthernet);
      mpich2.static_libs_available = true;
      s->stacks.push_back(std::move(mpich2));
    }
  } else if (name == "fir") {
    // ITS Fir, University of Virginia (Cluster, 1,496 CPUs).
    s->center = "University of Virginia";
    s->system_type = "Cluster";
    s->cpu_count = 1496;
    s->os_distro = "CentOS";
    s->os_version = Version::of("5.6");
    s->kernel_version = "2.6.18-238.9.1.el5";
    s->clib_version = Version::of("2.5");
    s->user_env_tool = site::UserEnvTool::kModules;
    s->batch = site::BatchKind::kPbs;
    s->compilers = {{CompilerFamily::kGnu, Version::of("4.1.2")},
                    {CompilerFamily::kIntel, Version::of("12")},
                    {CompilerFamily::kPgi, Version::of("10.9")}};
    for (const CompilerFamily fam :
         {CompilerFamily::kIntel, CompilerFamily::kGnu, CompilerFamily::kPgi}) {
      const char* cv = fam == CompilerFamily::kGnu ? "4.1.2"
                       : fam == CompilerFamily::kIntel ? "12" : "10.9";
      s->stacks.push_back(stack(MpiImpl::kOpenMpi, "1.4", fam, cv,
                                Interconnect::kInfiniband));
      s->stacks.push_back(stack(MpiImpl::kMvapich2, "1.7a", fam, cv,
                                Interconnect::kInfiniband));
      auto mpich2 = stack(MpiImpl::kMpich2, "1.3", fam, cv,
                          Interconnect::kEthernet);
      mpich2.static_libs_available = true;
      s->stacks.push_back(std::move(mpich2));
    }
  } else if (name == "bluefire") {
    // Demonstration site beyond the paper's Table II: a POWER6-era Linux
    // cluster. ppc64 is big-endian, so migrations to/from it exercise the
    // ISA determinant and the full big-endian ELF pipeline.
    s->center = "Demonstration Center";
    s->system_type = "Cluster";
    s->cpu_count = 4064;
    s->isa = elf::Isa::kPpc64;
    s->os_distro = "SUSE Linux Enterprise Server";
    s->os_version = Version::of("10");
    s->kernel_version = "2.6.16.60-0.42";
    s->clib_version = Version::of("2.4");
    s->user_env_tool = site::UserEnvTool::kModules;
    s->batch = site::BatchKind::kSlurm;
    s->compilers = {{CompilerFamily::kGnu, Version::of("4.1.2")}};
    // The demo site's administrators configured Open MPI's wrappers to
    // embed DT_RPATH — binaries run without any module loaded.
    auto openmpi = stack(MpiImpl::kOpenMpi, "1.4", CompilerFamily::kGnu,
                         "4.1.2", Interconnect::kInfiniband);
    openmpi.wrappers_embed_rpath = true;
    s->stacks.push_back(std::move(openmpi));
  } else {
    throw std::invalid_argument("unknown testbed site: " + std::string(name));
  }
  return s;
}

}  // namespace

std::unique_ptr<Site> make_site(std::string_view name,
                                std::uint64_t fault_seed) {
  auto s = configure(name, fault_seed);
  provision_site(*s);
  return s;
}

const std::vector<std::string>& testbed_site_names() {
  static const std::vector<std::string> kNames = {"ranger", "forge",
                                                  "blacklight", "india", "fir"};
  return kNames;
}

std::vector<std::unique_ptr<Site>> make_testbed(std::uint64_t fault_seed) {
  std::vector<std::unique_ptr<Site>> out;
  for (const auto& name : testbed_site_names()) {
    out.push_back(make_site(name, fault_seed));
  }
  return out;
}

}  // namespace feam::toolchain
