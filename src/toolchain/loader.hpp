// Static half of the execution simulator: what the kernel's exec path and
// ld.so decide before a program's first instruction runs — exec-format
// checks, transitive library resolution, and symbol-version validation.
#pragma once

#include <string>
#include <vector>

#include "binutils/resolver.hpp"
#include "site/site.hpp"

namespace feam::toolchain {

enum class LoadStatus : std::uint8_t {
  kOk,
  kFileNotFound,
  kExecFormatError,   // not ELF, or foreign ISA/word size
  kMissingLibrary,    // one or more DT_NEEDED not found
  kVersionMismatch,   // "version `GLIBC_x.y' not found"
};

struct LoadReport {
  LoadStatus status = LoadStatus::kOk;
  std::string detail;                 // loader-style error message
  binutils::Resolution resolution;    // full closure (valid unless not ELF)
};

// Simulates exec+ld.so for the binary at `path` on `host`, with optional
// extra library search directories (FEAM's resolution model injects its
// copy directories this way, mirroring LD_LIBRARY_PATH edits). A non-null
// `cache` memoizes the library searches (binutils/resolver_cache.hpp).
LoadReport load_binary(const site::Site& host, std::string_view path,
                       const std::vector<std::string>& extra_lib_dirs = {},
                       binutils::ResolverCache* cache = nullptr);

}  // namespace feam::toolchain
