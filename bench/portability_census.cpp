// Portability census: for every (site, stack) combination in the testbed,
// compile C and Fortran hello worlds and try to run them at every other
// site under the best matching stack. A compact visualization of *why*
// the paper's failure modes arise — before any application complexity:
// even trivial programs inherit the full compatibility surface of their
// MPI stack, compiler runtime, and build-time C library.
#include <cstdio>
#include <map>

#include "support/table.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

using namespace feam;

namespace {

std::string module_name_of(const site::MpiStackInstall& stack) {
  return std::string(site::mpi_impl_slug(stack.impl)) + "/" +
         stack.version.str() + "-" + site::compiler_slug(stack.compiler);
}

// One-letter cell code for the census grid.
char classify(toolchain::RunStatus status) {
  switch (status) {
    case toolchain::RunStatus::kSuccess: return '+';
    case toolchain::RunStatus::kMissingLibrary: return 'L';
    case toolchain::RunStatus::kVersionError: return 'C';
    case toolchain::RunStatus::kFpException: return 'A';
    case toolchain::RunStatus::kStackNotFunctional: return 'S';
    case toolchain::RunStatus::kNoMpiStackSelected: return '-';
    case toolchain::RunStatus::kExecFormatError: return 'I';
    default: return '?';
  }
}

}  // namespace

int main() {
  std::printf("PORTABILITY CENSUS — hello worlds across the testbed\n");
  std::printf("cells: + success  L missing library  C C-library version\n"
              "       A ABI/FP break  S stack not functional  - no matching "
              "stack  I ISA\n\n");

  auto sites = toolchain::make_testbed(/*fault_seed=*/0);

  for (const auto lang :
       {toolchain::Language::kC, toolchain::Language::kFortran}) {
    std::printf("== %s hello world ==\n", toolchain::language_name(lang));
    support::TextTable table({"built at / runs at", "ranger", "forge",
                              "blacklight", "india", "fir"});
    for (auto& home : sites) {
      for (const auto& stack : home->stacks) {
        const auto program = toolchain::mpi_hello_world(lang);
        const auto compiled = toolchain::compile_mpi_program(
            *home, program, stack, "/tmp/census_" + stack.slug());
        if (!compiled.ok()) continue;

        std::vector<std::string> row = {home->name + " " + stack.display()};
        for (auto& target : sites) {
          if (target->name == home->name) {
            row.push_back("(home)");
            continue;
          }
          // Migrate and run under the best matching stack.
          const std::string path = "/home/user/census_hw";
          target->vfs.write_file(path, *home->vfs.read(compiled.value()));
          const site::MpiStackInstall* best = nullptr;
          for (const auto& candidate : target->stacks) {
            if (candidate.impl != stack.impl) continue;
            if (best == nullptr || candidate.compiler == stack.compiler) {
              best = &candidate;
            }
          }
          if (best == nullptr) {
            row.push_back("-");
            target->vfs.remove(path);
            continue;
          }
          target->unload_all_modules();
          target->load_module(module_name_of(*best));
          const auto run = toolchain::mpiexec_with_retries(*target, path, 4);
          row.push_back(std::string(1, classify(run.status)));
          target->unload_all_modules();
          target->vfs.remove(path);
        }
        table.add_row(std::move(row));
        home->vfs.remove(compiled.value());
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("Reading the grid: Ranger's MVAPICH2 1.2 rows are solid L\n"
              "(libmpich soname change — the resolution model's main win);\n"
              "rows into Ranger are C for every gcc>=4.1/Intel>=11 build\n"
              "(stack-protector references need GLIBC_2.4); Fortran rows\n"
              "show A where only an other-compiler stack matches.\n");
  return 0;
}
