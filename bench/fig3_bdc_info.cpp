// Figure 3 companion: the information gathered by the Binary Description
// Component, shown for one representative binary per suite (and per
// compiler family, since the build-environment stamps differ).
#include <cstdio>

#include "feam/bdc.hpp"
#include "support/strings.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

using namespace feam;

namespace {

void describe_one(const char* site_name, site::MpiImpl impl,
                  site::CompilerFamily fam, toolchain::ProgramSource program) {
  auto s = toolchain::make_site(site_name);
  const auto* stack = s->find_stack(impl, fam);
  if (stack == nullptr) return;
  const auto compiled = toolchain::compile_mpi_program(
      *s, program, *stack, "/home/user/apps/" + program.name);
  if (!compiled.ok()) {
    std::printf("%s at %s: %s\n", program.name.c_str(), site_name,
                compiled.error().c_str());
    return;
  }
  const auto d = Bdc::describe(*s, compiled.value());
  if (!d.ok()) {
    std::printf("BDC failed: %s\n", d.error().c_str());
    return;
  }
  const BinaryDescription& desc = d.value();
  std::printf("--- %s, compiled with %s at %s ---\n", program.name.c_str(),
              stack->display().c_str(), site_name);
  std::printf("  ISA and file format ........ %s (%s, %d-bit)\n",
              desc.file_format.c_str(), desc.architecture.c_str(), desc.bits);
  std::printf("  Required shared libraries .. %s\n",
              support::join(desc.required_libraries, ", ").c_str());
  std::printf("  C library requirement ...... %s\n",
              desc.required_clib_version ? desc.required_clib_version->str().c_str()
                                         : "(none)");
  std::printf("  MPI stack used to build .... %s\n",
              desc.mpi_impl ? site::mpi_impl_name(*desc.mpi_impl) : "(serial)");
  std::printf("  OS used to build ........... %s\n",
              desc.build_os.value_or("(unknown)").c_str());
  std::printf("  C library used to build .... %s\n",
              desc.build_clib_version ? desc.build_clib_version->str().c_str()
                                      : "(unknown)");
  std::printf("  Compiler stamp ............. %s\n\n",
              desc.build_compiler.value_or("(none)").c_str());
}

}  // namespace

int main() {
  std::printf("FIGURE 3. INFORMATION GATHERED BY THE BDC\n\n");

  toolchain::ProgramSource cg;
  cg.name = "cg.B";
  cg.language = toolchain::Language::kFortran;
  cg.libc_features = {"base", "stdio", "math", "affinity"};
  describe_one("india", site::MpiImpl::kOpenMpi, site::CompilerFamily::kGnu, cg);

  toolchain::ProgramSource milc;
  milc.name = "104.milc";
  milc.language = toolchain::Language::kC;
  milc.libc_features = {"base", "stdio", "math", "affinity"};
  milc.text_size = 1200 * 1024;
  describe_one("forge", site::MpiImpl::kMvapich2, site::CompilerFamily::kIntel,
               milc);

  toolchain::ProgramSource lu;
  lu.name = "lu.B";
  lu.language = toolchain::Language::kFortran;
  lu.libc_features = {"base", "stdio", "math", "timer"};
  describe_one("ranger", site::MpiImpl::kMvapich2, site::CompilerFamily::kPgi,
               lu);

  // A shared library gets the same description treatment, with the soname
  // and embedded version captured additionally (paper V.A).
  auto s = toolchain::make_site("fir");
  const auto d = Bdc::describe(*s, "/opt/mvapich2-1.7a-gnu/lib/libmpich.so.1.2");
  if (d.ok()) {
    std::printf("--- shared library libmpich.so.1.2 (MVAPICH2 1.7a at fir) ---\n");
    std::printf("  Library name / version ..... %s / %s\n",
                d.value().soname->c_str(),
                d.value().library_version->str().c_str());
    std::printf("  Identified implementation .. %s\n",
                d.value().mpi_impl ? site::mpi_impl_name(*d.value().mpi_impl)
                                   : "(none)");
  }
  return 0;
}
