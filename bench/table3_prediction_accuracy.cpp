// Table III: accuracy of the prediction model. Runs the full evaluation —
// compiles the NPB + SPEC MPI2007 test set with every Table II stack,
// migrates each binary to every other site with a matching MPI
// implementation, forms basic (target-phase-only) and extended (+ source
// phase) predictions, executes with the 5-retry policy, and scores
// prediction-vs-actual.
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"

using namespace feam::eval;

int main() {
  ExperimentOptions options;
  options.fault_seed = 20130613;
  Experiment experiment(options);
  experiment.build_test_set();
  std::printf("Test set: %zu NPB binaries, %zu SPEC MPI2007 binaries "
              "(paper: 110 / 147)\n",
              experiment.test_set_size("NAS"), experiment.test_set_size("SPEC"));
  experiment.run();
  std::printf("Migrations to matching-MPI sites: %zu\n\n",
              experiment.results().size());

  const auto t3 = compute_table3(experiment.results());
  std::printf("%s\n", render_table3(t3).c_str());
  std::printf("Paper reference: Basic NAS 94%% / SPEC 92%%; "
              "Extended NAS 99%% / SPEC 93%%.\n");
  std::printf("MPI-implementation availability check 100%% accurate: %s "
              "(paper: yes)\n",
              experiment.mpi_matching_always_correct() ? "yes" : "NO");

  // Paper VI.B: "If results for all sites were reported, our prediction
  // accuracy would be much higher" — FEAM trivially and correctly predicts
  // NOT READY wherever no matching implementation exists.
  {
    const double matched_correct =
        t3.extended_nas.correct + t3.extended_spec.correct;
    const double matched_total = t3.extended_nas.total + t3.extended_spec.total;
    const double skipped =
        static_cast<double>(experiment.skipped_no_matching_impl());
    std::printf("Extended accuracy over matching sites: %.0f%%; over ALL "
                "site pairs: %.0f%% (+%zu trivially correct pairs)\n",
                100.0 * matched_correct / matched_total,
                100.0 * (matched_correct + skipped) / (matched_total + skipped),
                experiment.skipped_no_matching_impl());
  }

  // Shape assertions from the paper: every cell above 85%, extended never
  // below basic.
  const bool shape_holds =
      t3.basic_nas.percent() > 85 && t3.basic_spec.percent() > 85 &&
      t3.extended_nas.percent() > 90 && t3.extended_spec.percent() > 90 &&
      t3.extended_nas.percent() >= t3.basic_nas.percent() &&
      t3.extended_spec.percent() >= t3.basic_spec.percent();
  std::printf("Shape check (all cells > 90%%-class, extended >= basic): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
