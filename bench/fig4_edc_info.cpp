// Figure 4 companion: the information gathered by the Environment
// Discovery Component, printed for every testbed site — including the
// degraded-discovery fallbacks (C library API instead of execution,
// filesystem search instead of Modules).
#include <cstdio>

#include "feam/edc.hpp"
#include "toolchain/testbed.hpp"

using namespace feam;

namespace {

void print_env(const char* label, const site::Site& s,
               const EnvironmentDescription& env) {
  std::printf("--- %s ---\n", label);
  std::printf("  ISA format ............. %s (%d-bit)\n", env.isa.c_str(),
              env.bits);
  std::printf("  Operating system ....... %s; %s\n", env.os_type.c_str(),
              env.distro.c_str());
  std::printf("  C library version ...... %s (via %s)\n",
              env.clib_version ? env.clib_version->str().c_str() : "?",
              env.clib_discovery_method.c_str());
  std::printf("  User-env tool .......... %s\n",
              site::user_env_tool_name(env.user_env_tool));
  std::printf("  Available MPI stacks ... %zu\n", env.stacks.size());
  for (const auto& stack : env.stacks) {
    std::printf("    %-24s %-22s prefix=%s%s\n", stack.id.c_str(),
                stack.display().c_str(), stack.prefix.c_str(),
                stack.currently_loaded ? "  [loaded]" : "");
  }
  (void)s;
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("FIGURE 4. INFORMATION GATHERED BY THE EDC\n\n");
  for (const auto& name : toolchain::testbed_site_names()) {
    auto s = toolchain::make_site(name);
    print_env(name.c_str(), *s, Edc::discover(*s));
  }

  // Degraded-site discovery: the fallbacks of Section V.B.
  std::printf("== fallback paths ==\n\n");
  {
    auto s = toolchain::make_site("blacklight");
    s->libc_executable = false;
    print_env("blacklight with unexecutable C library (API fallback)", *s,
              Edc::discover(*s));
  }
  {
    auto s = toolchain::make_site("india");
    s->vfs.remove("/usr/bin/modulecmd");
    s->vfs.remove("/usr/share/Modules");
    print_env("india without Environment Modules (filesystem search)", *s,
              Edc::discover(*s));
  }
  return 0;
}
