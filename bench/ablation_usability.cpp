// Ablation 4 (DESIGN.md §4): the hello-world usability and compatibility
// tests (paper III.B). Without them, FEAM trusts every advertised stack:
// misconfigured combinations (India's MVAPICH2/GNU) and ABI-incompatible
// stack selections stop being predicted, so prediction accuracy drops while
// nothing about actual execution changes.
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"
#include "support/table.hpp"

using namespace feam::eval;

namespace {

struct Row {
  const char* label;
  double basic_accuracy = 0;
  double extended_accuracy = 0;
};

Row run_variant(const char* label, bool usability) {
  ExperimentOptions options;
  options.fault_seed = 20130613;
  options.run_usability_tests = usability;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();
  int basic = 0, extended = 0;
  for (const auto& r : experiment.results()) {
    basic += r.basic_correct();
    extended += r.extended_correct();
  }
  const double n = static_cast<double>(experiment.results().size());
  return {label, 100.0 * basic / n, 100.0 * extended / n};
}

}  // namespace

int main() {
  std::printf("ABLATION: hello-world usability & compatibility tests "
              "(paper III.B)\n\n");
  const Row with_tests = run_variant("with hello-world tests (paper)", true);
  const Row without = run_variant("trusting advertised stacks (ablated)", false);

  feam::support::TextTable table(
      {"Variant", "Basic accuracy", "Extended accuracy"});
  char buf[32];
  for (const Row& row : {with_tests, without}) {
    std::snprintf(buf, sizeof buf, "%.0f%%", row.basic_accuracy);
    std::string basic = buf;
    std::snprintf(buf, sizeof buf, "%.0f%%", row.extended_accuracy);
    table.add_row({row.label, basic, buf});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Without the tests, FEAM cannot see misconfigured stacks\n"
              "(unusable-but-advertised combinations) or Fortran binding ABI\n"
              "breaks — both become false READY predictions.\n");
  const bool shape =
      with_tests.extended_accuracy > without.extended_accuracy &&
      with_tests.basic_accuracy >= without.basic_accuracy - 1.0;
  std::printf("Shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
