// Ablation 2 (DESIGN.md §4): the MPI determinant matches by implementation
// *type*, deliberately ignoring versions (paper III.B: no guaranteed
// backward compatibility rules exist, yet same-type stacks often work).
// This bench measures both alternatives:
//   * exact-version matching — how many actually-successful migrations it
//     would have excluded;
//   * ignore-type matching — how many extra doomed migrations it admits.
#include <cstdio>

#include "eval/experiment.hpp"
#include "support/table.hpp"
#include "toolchain/testbed.hpp"

using namespace feam::eval;

int main() {
  std::printf("ABLATION: MPI stack matching rules (paper III.B)\n\n");

  ExperimentOptions options;
  options.fault_seed = 0;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();

  int successes = 0;
  int lost_by_exact_version = 0;
  for (const auto& r : experiment.results()) {
    if (!r.success_after_resolution) continue;
    ++successes;
    // Would an exact-version rule have allowed this migration at all?
    const auto& target = experiment.site(r.target_site);
    bool exact_exists = false;
    for (const auto& binary : experiment.test_set()) {
      if (binary.workload.program.name + "." + binary.stack.slug() !=
          r.binary_name) {
        continue;
      }
      for (const auto& stack : target.stacks) {
        exact_exists |= stack.impl == binary.stack.impl &&
                        stack.version == binary.stack.version;
      }
    }
    lost_by_exact_version += !exact_exists;
  }

  // Ignore-type rule: every (binary, other-site) pair becomes a candidate;
  // pairs without the matching implementation are guaranteed failures.
  int type_rule_candidates = static_cast<int>(experiment.results().size());
  int ignore_type_candidates = 0;
  for (const auto& binary : experiment.test_set()) {
    for (const auto& name : feam::toolchain::testbed_site_names()) {
      if (name != binary.home_site) ++ignore_type_candidates;
    }
  }

  feam::support::TextTable table({"Rule", "Candidate migrations",
                                  "Successful migrations lost",
                                  "Doomed migrations admitted"});
  table.add_row({"same type (paper)", std::to_string(type_rule_candidates),
                 "0", "0"});
  table.add_row({"exact version (ablated)",
                 std::to_string(type_rule_candidates - lost_by_exact_version),
                 std::to_string(lost_by_exact_version), "0"});
  table.add_row({"ignore type (ablated)",
                 std::to_string(ignore_type_candidates), "0",
                 std::to_string(ignore_type_candidates - type_rule_candidates)});
  std::printf("%s\n", table.render().c_str());
  std::printf("Exact-version matching loses %d of %d successful executions\n"
              "(e.g. Open MPI 1.3 binaries running on 1.4 sites); ignoring\n"
              "the type admits %d migrations that fail at link level.\n",
              lost_by_exact_version, successes,
              ignore_type_candidates - type_rule_candidates);
  return lost_by_exact_version > 0 ? 0 : 1;
}
