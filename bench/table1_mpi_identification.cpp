// Table I: identifying libraries of MPI implementations.
//
// Compiles a probe program with every MPI stack at every testbed site (C
// and Fortran), runs FEAM's link-level identification on each produced
// binary, and reports the identifier sets plus identification accuracy
// (the paper reports the scheme was 100% accurate on its test set).
#include <cstdio>
#include <map>
#include <set>

#include "elf/file.hpp"
#include "feam/identify.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

using namespace feam;

int main() {
  std::printf("TABLE I. IDENTIFYING LIBRARIES OF MPI IMPLEMENTATIONS\n\n");

  // The identifier sets, as observed from actually-linked binaries.
  std::map<site::MpiImpl, std::set<std::string>> observed_identifiers;
  int total = 0, correct = 0;

  for (const auto& site_name : toolchain::testbed_site_names()) {
    auto s = toolchain::make_site(site_name);
    for (const auto& stack : s->stacks) {
      for (const auto lang :
           {toolchain::Language::kC, toolchain::Language::kFortran}) {
        toolchain::ProgramSource probe;
        probe.name = "probe";
        probe.language = lang;
        const auto compiled = toolchain::compile_mpi_program(
            *s, probe, stack, "/tmp/probe_" + stack.slug());
        if (!compiled.ok()) continue;
        const auto parsed = elf::ElfFile::parse(*s->vfs.read(compiled.value()));
        if (!parsed.ok()) continue;

        for (const auto& needed : parsed.value().needed()) {
          if (support::starts_with(needed, "libmpi") ||
              support::starts_with(needed, "libib")) {
            observed_identifiers[stack.impl].insert(std::string(needed));
          }
        }
        ++total;
        correct += identify_mpi(parsed.value().needed()) == stack.impl;
      }
    }
  }

  support::TextTable table({"MPI Implementation", "Library Dependencies"});
  for (const auto& [impl, identifiers] : observed_identifiers) {
    table.add_row({site::mpi_impl_name(impl),
                   support::join(std::vector<std::string>(identifiers.begin(),
                                                          identifiers.end()),
                                 ", ")});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Identification over compiled binaries: %d/%d correct (%s)\n",
              correct, total, support::percent(correct, total).c_str());
  std::printf("Paper: identification scheme for the three dominant open\n"
              "source implementations; availability assessment was 100%%\n"
              "accurate on the evaluation test set.\n");
  return correct == total ? 0 : 1;
}
