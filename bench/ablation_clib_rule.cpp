// Ablation 1 (DESIGN.md §4): the C-library determinant uses the *required*
// version (newest referenced GLIBC node), not the version the binary was
// built with. This bench quantifies what the naive "build version" rule
// would cost: every migration it wrongly rejects is a viable target lost.
#include <cstdio>

#include "eval/experiment.hpp"
#include "feam/bdc.hpp"
#include "toolchain/testbed.hpp"
#include "support/table.hpp"

using namespace feam;
using namespace feam::eval;

int main() {
  std::printf("ABLATION: required-C-library rule vs build-C-library rule "
              "(paper III.C)\n\n");

  ExperimentOptions options;
  options.fault_seed = 0;
  Experiment experiment(options);
  experiment.build_test_set();

  int total = 0;
  int required_rule_compatible = 0;
  int build_rule_compatible = 0;
  int falsely_rejected_by_build_rule = 0;

  for (const auto& binary : experiment.test_set()) {
    auto& home = experiment.site(binary.home_site);
    const auto desc = Bdc::describe(home, binary.path);
    if (!desc.ok()) continue;
    const auto required = desc.value().required_clib_version;
    const auto build = desc.value().build_clib_version;

    for (const auto& target_name : toolchain::testbed_site_names()) {
      if (target_name == binary.home_site) continue;
      const auto& target = experiment.site(target_name);
      const bool impl_there = std::any_of(
          target.stacks.begin(), target.stacks.end(),
          [&](const auto& stack) { return stack.impl == binary.stack.impl; });
      if (!impl_there) continue;
      ++total;
      // Ground truth for this determinant IS the required-version rule:
      // the dynamic loader checks exactly the referenced version nodes.
      const bool truth = !required || *required <= target.clib_version;
      const bool by_build = !build || *build <= target.clib_version;
      required_rule_compatible += truth;
      build_rule_compatible += by_build;
      falsely_rejected_by_build_rule += truth && !by_build;
    }
  }

  support::TextTable table({"Rule", "Targets accepted", "Viable targets lost"});
  table.add_row({"required version (paper)",
                 support::percent(required_rule_compatible, total), "0%"});
  table.add_row({"build version (ablated)",
                 support::percent(build_rule_compatible, total),
                 support::percent(falsely_rejected_by_build_rule, total)});
  std::printf("%s\n", table.render().c_str());
  std::printf("Of %d (binary, matching-MPI target) pairs, the build-version "
              "rule would\nreject %d pairs whose C-library requirements are "
              "actually satisfied —\nbinaries built on newer-glibc sites "
              "that only use old version nodes.\n",
              total, falsely_rejected_by_build_rule);
  return falsely_rejected_by_build_rule > 0 ? 0 : 1;
}
