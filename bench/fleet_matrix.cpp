// Fleet-scale gate for the procedural generator (5 sites -> 500): the
// 500x100 site/workload matrix must generate reproducibly, survey under
// a CPU-time ceiling, aggregate without quadratic blowup, and stay
// byte-deterministic — and the rolling-upgrade drift legs must show the
// caches re-verifying drifted sites instead of serving stale scans.
//
// Legs:
//   1. Reproducibility — generate the big fleet twice from (spec, seed);
//      the feam.fleet_manifest/1 dumps must be byte-identical.
//   2. Big matrix — run the full survey (drift on) and time it; gates a
//      pairs-per-CPU-second floor and a CPU ceiling. CPU time, not wall:
//      wall minima swing on a shared runner while CPU stays stable, and
//      a CPU ceiling is meaningful on any core count.
//   3. Aggregation — feed all 50k records through the report pipeline and
//      time aggregate+render; the ceiling fails fast if aggregation ever
//      goes quadratic in the record count.
//   4. Determinism — a fresh fleet from the same (spec, seed), surveyed
//      at a different job count, must reproduce the record stream byte
//      for byte (drift included: rounds land at sequential barriers).
//   5. Drift sweep — the medium fleet at drift rates 0 / 0.25 / 1.0,
//      each run cached and uncached on identical twin fleets. Byte
//      equality of the two record streams at every rate is the
//      stale-serving proof: a drifted site's fingerprint moved, so every
//      EDC memo entry for it re-verified. EDC/BDC hit rates are recorded
//      per rate and floored at drift 0 (hot) and 1.0 (still warm — only
//      drifted sites re-scan).
//   6. Provenance — diff the drift-0.25 medium run against its frozen
//      (drift-0) twin with the drift log attached: every verdict flip
//      must be attributable to a drift op (unattributed == 0), and the
//      serialized provenance sections must stay within a bounded
//      record-size overhead versus the provenance-stripped stream.
//
// Flags:
//   --sites N / --workloads N   big-leg fleet shape (default 500x100)
//   --medium-sites N / --medium-workloads N   drift-sweep shape (50x20)
//   --seed N          master seed (default 42)
//   --jobs N          survey worker threads for the big leg (default 8)
//   --bench-out F     write the feam.bench/1 record to F
//   --baseline F      gate against a feam.report_baseline/1 file
//   --pr N            PR number stamped into the bench record (default 10)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eval/fleet.hpp"
#include "fleet/drift.hpp"
#include "fleet/generate.hpp"
#include "fleet/manifest.hpp"
#include "fleet/spec.hpp"
#include "report/aggregate.hpp"
#include "report/diff.hpp"
#include "report/gate.hpp"
#include "support/json.hpp"

using namespace feam;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Process CPU time, all threads, in ms (same discipline as the
// parallel_matrix overhead gates: ceilings compare CPU, wall is context).
double process_cpu_ms() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  int sites = 500;
  int workloads = 100;
  int medium_sites = 50;
  int medium_workloads = 20;
  int jobs = 8;
  int pr_number = 10;
  std::uint64_t seed = 42;
  std::string bench_out;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--sites" && i + 1 < argc) sites = std::atoi(argv[++i]);
    else if (flag == "--workloads" && i + 1 < argc) workloads = std::atoi(argv[++i]);
    else if (flag == "--medium-sites" && i + 1 < argc) medium_sites = std::atoi(argv[++i]);
    else if (flag == "--medium-workloads" && i + 1 < argc) medium_workloads = std::atoi(argv[++i]);
    else if (flag == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (flag == "--seed" && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (flag == "--bench-out" && i + 1 < argc) bench_out = argv[++i];
    else if (flag == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    else if (flag == "--pr" && i + 1 < argc) pr_number = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 1;
    }
  }
  if (sites < 2) sites = 2;
  if (workloads < 1) workloads = 1;
  if (jobs < 1) jobs = 1;

  fleet::FleetSpec big_spec;
  big_spec.name = "bigfleet";
  big_spec.sites = sites;
  big_spec.workloads = workloads;
  big_spec.drift_rate = 0.25;

  // Leg 1 — reproducibility: the manifest is a pure function of
  // (spec, seed). Generation is timed so site-provisioning regressions
  // show up here rather than polluting the survey leg.
  const auto g0 = std::chrono::steady_clock::now();
  fleet::Fleet first = fleet::generate_fleet(big_spec, seed);
  const auto g1 = std::chrono::steady_clock::now();
  const double generate_ms = elapsed_ms(g0, g1);
  const std::string manifest_dump = fleet::fleet_manifest(first).dump(2);
  const bool manifest_identical = [&] {
    const fleet::Fleet twin = fleet::generate_fleet(big_spec, seed);
    return fleet::fleet_manifest(twin).dump(2) == manifest_dump;
  }();

  // Leg 2 — the big matrix, drift on, timed in CPU and wall.
  eval::FleetRunOptions run_options;
  run_options.jobs = jobs;
  const double cpu0 = process_cpu_ms();
  const auto t0 = std::chrono::steady_clock::now();
  const eval::FleetRunResult big = eval::run_fleet(first, run_options);
  const auto t1 = std::chrono::steady_clock::now();
  const double run_ms = elapsed_ms(t0, t1);
  const double run_cpu_ms = process_cpu_ms() - cpu0;
  const std::string big_records = big.records_jsonl();
  const double pairs_per_cpu_sec =
      run_cpu_ms > 0.0
          ? static_cast<double>(big.pairs()) / (run_cpu_ms / 1e3)
          : 0.0;

  // Leg 3 — aggregation at 50k records: linear or bust. The ceiling is
  // per-record CPU, so it fails fast on quadratic behaviour at any scale.
  std::vector<report::RunRecord> to_aggregate = big.records;
  const double acpu0 = process_cpu_ms();
  const report::Aggregate aggregate =
      report::aggregate_records(std::move(to_aggregate));
  const std::string matrix = report::render_readiness_matrix(aggregate);
  const double aggregate_cpu_ms = process_cpu_ms() - acpu0;
  const double aggregate_us_per_record =
      big.pairs() > 0
          ? aggregate_cpu_ms * 1e3 / static_cast<double>(big.pairs())
          : 0.0;

  // Leg 4 — determinism: twin fleet, different job count, byte-equal
  // records. (Drift is on: its schedule is a function of the fleet, not
  // of the survey's thread count.)
  const bool records_identical = [&] {
    fleet::Fleet twin = fleet::generate_fleet(big_spec, seed);
    eval::FleetRunOptions twin_options;
    twin_options.jobs = jobs > 1 ? 1 : 4;
    return eval::run_fleet(twin, twin_options).records_jsonl() == big_records;
  }();

  std::printf("Fleet matrix: %d sites x %d workloads (seed %llu)\n", sites,
              workloads, static_cast<unsigned long long>(seed));
  std::printf("  generate: %9.1f ms (%s)\n", generate_ms,
              manifest_identical ? "manifest reproducible"
                                 : "MANIFEST MISMATCH");
  std::printf("  survey (jobs=%d, drift %.2f): %9.1f ms wall, %9.1f ms cpu "
              "(%.0f pairs/cpu-s)\n",
              jobs, big_spec.drift_rate, run_ms, run_cpu_ms,
              pairs_per_cpu_sec);
  std::printf("  %zu pairs: %zu ready, %zu compile failures, %zu drift ops\n",
              big.pairs(), big.ready_pairs, big.compile_failures,
              big.drift_log.size());
  std::printf("  caches: EDC %.1f%% / BDC %.1f%% / resolver %.1f%% hit\n",
              100.0 * big.caches.edc_hit_rate(),
              100.0 * big.caches.bdc_hit_rate(),
              100.0 * big.caches.resolver_hit_rate());
  std::printf("  aggregate+render: %9.1f ms cpu (%.1f us/record)\n",
              aggregate_cpu_ms, aggregate_us_per_record);
  std::printf("  records byte-identical across twin runs: %s\n",
              records_identical ? "yes" : "NO");

  // Leg 5 — drift sweep on the medium fleet: cached vs uncached twins at
  // each rate. Cached/uncached byte equality at a positive drift rate is
  // the stale-serving proof the gate enforces.
  struct DriftLeg {
    double rate = 0.0;
    double edc_hit_rate = 0.0;
    double bdc_hit_rate = 0.0;
    std::size_t drift_ops = 0;
    std::size_t ready_pairs = 0;
    bool identical = false;
  };
  std::vector<DriftLeg> sweep;
  // Leg 6 inputs, captured from the sweep so the provenance diff reuses
  // the drift-0 and drift-0.25 runs instead of surveying twice more.
  std::vector<report::RunRecord> prov_frozen_records;
  std::vector<report::RunRecord> prov_drift_records;
  std::vector<fleet::DriftOp> prov_drift_log;
  for (const double rate : {0.0, 0.25, 1.0}) {
    fleet::FleetSpec medium;
    medium.name = "midfleet";
    medium.sites = medium_sites;
    medium.workloads = medium_workloads;
    medium.drift_rate = rate;

    fleet::Fleet cached_fleet = fleet::generate_fleet(medium, seed);
    eval::FleetRunOptions cached_options;
    cached_options.jobs = jobs;
    const auto cached = eval::run_fleet(cached_fleet, cached_options);

    fleet::Fleet uncached_fleet = fleet::generate_fleet(medium, seed);
    eval::FleetRunOptions uncached_options;
    uncached_options.jobs = jobs;
    uncached_options.use_caches = false;
    const auto uncached = eval::run_fleet(uncached_fleet, uncached_options);

    DriftLeg leg;
    leg.rate = rate;
    leg.edc_hit_rate = cached.caches.edc_hit_rate();
    leg.bdc_hit_rate = cached.caches.bdc_hit_rate();
    leg.drift_ops = cached.drift_log.size();
    leg.ready_pairs = cached.ready_pairs;
    leg.identical = cached.records_jsonl() == uncached.records_jsonl();
    if (rate == 0.0) {
      prov_frozen_records = cached.records;
    } else if (rate == 0.25) {
      prov_drift_records = cached.records;
      prov_drift_log = cached.drift_log;
    }
    sweep.push_back(leg);
    std::printf("Drift %.2f (%dx%d): EDC %.1f%% / BDC %.1f%% hit, %zu ops, "
                "%zu ready, cached==uncached: %s\n",
                rate, medium_sites, medium_workloads,
                100.0 * leg.edc_hit_rate, 100.0 * leg.bdc_hit_rate,
                leg.drift_ops, leg.ready_pairs,
                leg.identical ? "yes" : "NO (STALE SCAN SERVED)");
  }

  // Leg 6 — provenance: diff the drifted medium run against its frozen
  // twin, joining through the serialized drift log (the same JSONL the
  // CLI writes), and measure the record-size cost of carrying evidence.
  const auto drift_entries =
      report::parse_drift_log(fleet::drift_log_jsonl(prov_drift_log));
  const report::DiffResult prov_diff = report::diff_records(
      prov_frozen_records, prov_drift_records, drift_entries);
  std::size_t prov_covered = 0;
  double prov_with_bytes = 0.0;
  double prov_without_bytes = 0.0;
  for (const auto& record : prov_drift_records) {
    if (!record.provenance.empty()) ++prov_covered;
    prov_with_bytes += static_cast<double>(record.to_json().dump().size());
    report::RunRecord stripped = record;
    stripped.provenance.clear();
    prov_without_bytes +=
        static_cast<double>(stripped.to_json().dump().size());
  }
  const double prov_overhead =
      prov_without_bytes > 0.0
          ? (prov_with_bytes - prov_without_bytes) / prov_without_bytes
          : 0.0;
  const double prov_coverage =
      prov_drift_records.empty()
          ? 0.0
          : static_cast<double>(prov_covered) /
                static_cast<double>(prov_drift_records.size());
  std::printf("Provenance diff (drift 0.25 vs frozen twin): %zu pairs, "
              "%zu flips, %zu unattributed; evidence overhead %.0f%% "
              "(%.0f -> %.0f bytes), coverage %.0f%%\n",
              prov_diff.pairs_compared, prov_diff.flips.size(),
              prov_diff.unattributed_flips(), 100.0 * prov_overhead,
              prov_without_bytes, prov_with_bytes, 100.0 * prov_coverage);

  std::map<std::string, double> metrics;
  metrics["bench.fleet_sites"] = sites;
  metrics["bench.fleet_workloads"] = workloads;
  metrics["bench.fleet_jobs"] = jobs;
  metrics["bench.fleet_pairs"] = static_cast<double>(big.pairs());
  metrics["bench.fleet_ready_pairs"] = static_cast<double>(big.ready_pairs);
  metrics["bench.fleet_compile_failures"] =
      static_cast<double>(big.compile_failures);
  metrics["bench.fleet_drift_ops"] = static_cast<double>(big.drift_log.size());
  metrics["bench.fleet_generate_ms"] = generate_ms;
  metrics["bench.fleet_run_ms"] = run_ms;
  metrics["bench.fleet_run_cpu_ms"] = run_cpu_ms;
  metrics["bench.fleet_pairs_per_cpu_sec"] = pairs_per_cpu_sec;
  metrics["bench.fleet_aggregate_cpu_ms"] = aggregate_cpu_ms;
  metrics["bench.fleet_aggregate_us_per_record"] = aggregate_us_per_record;
  metrics["bench.fleet_manifest_identical"] = manifest_identical ? 1 : 0;
  metrics["bench.fleet_records_identical"] = records_identical ? 1 : 0;
  metrics["bench.fleet_edc_hit_rate"] = big.caches.edc_hit_rate();
  metrics["bench.fleet_bdc_hit_rate"] = big.caches.bdc_hit_rate();
  metrics["bench.fleet_resolver_hit_rate"] = big.caches.resolver_hit_rate();
  for (const auto& leg : sweep) {
    const std::string tag =
        "drift" + std::to_string(static_cast<int>(leg.rate * 100));
    metrics["bench.fleet_" + tag + "_identical"] = leg.identical ? 1 : 0;
    metrics["bench.fleet_" + tag + "_edc_hit_rate"] = leg.edc_hit_rate;
    metrics["bench.fleet_" + tag + "_bdc_hit_rate"] = leg.bdc_hit_rate;
    metrics["bench.fleet_" + tag + "_ops"] = static_cast<double>(leg.drift_ops);
    metrics["bench.fleet_" + tag + "_ready_pairs"] =
        static_cast<double>(leg.ready_pairs);
  }
  metrics["bench.fleet_prov_pairs"] =
      static_cast<double>(prov_diff.pairs_compared);
  metrics["bench.fleet_prov_flips"] =
      static_cast<double>(prov_diff.flips.size());
  metrics["bench.fleet_prov_unattributed"] =
      static_cast<double>(prov_diff.unattributed_flips());
  metrics["bench.fleet_prov_coverage"] = prov_coverage;
  metrics["bench.fleet_prov_overhead"] = prov_overhead;

  report::GateResult gate;
  const report::GateResult* gate_ptr = nullptr;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto baseline = support::Json::parse(buffer.str());
    if (!in || !baseline) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    auto result = report::run_gate(metrics, *baseline);
    if (!result.ok()) {
      std::fprintf(stderr, "gate error: %s\n", result.error().c_str());
      return 1;
    }
    gate = std::move(result).take();
    gate_ptr = &gate;
    std::printf("\n%s", gate.render().c_str());
  }

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    out << report::bench_record(metrics, gate_ptr, pr_number, "fleet matrix")
               .dump(2)
        << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
  }

  bool sweep_ok = true;
  for (const auto& leg : sweep) sweep_ok = sweep_ok && leg.identical;
  const bool prov_ok =
      prov_diff.unattributed_flips() == 0 && prov_coverage == 1.0;
  const bool pass = manifest_identical && records_identical && sweep_ok &&
                    prov_ok && big.compile_failures == 0 &&
                    (gate_ptr == nullptr || gate.pass);
  std::printf(
      "Acceptance (manifest and record stream reproducible from (spec, "
      "seed), no compile failures, cached==uncached at every drift rate, "
      "every drift flip attributed): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
