// Figure 2 companion: the phases and components of FEAM, traced on one
// real migration (an NPB binary from India to Fir). Prints which component
// runs in which phase and what it produced — the information flow of the
// paper's Figure 2.
#include <cstdio>

#include "feam/phases.hpp"
#include "support/strings.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

using namespace feam;

int main() {
  std::printf("FIGURE 2. THE PHASES AND COMPONENTS OF FEAM\n\n");

  // Build the binary at its guaranteed execution environment.
  auto home = toolchain::make_site("india");
  const auto* stack =
      home->find_stack(site::MpiImpl::kOpenMpi, site::CompilerFamily::kGnu);
  toolchain::ProgramSource cg;
  cg.name = "cg.B";
  cg.language = toolchain::Language::kFortran;
  cg.libc_features = {"base", "stdio", "math", "affinity"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, cg, *stack, "/home/user/apps/cg.B");
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error().c_str());
    return 1;
  }
  home->load_module("openmpi/1.4-gnu");

  std::printf("== SOURCE PHASE (optional, at guaranteed execution "
              "environment 'india') ==\n");
  const auto source = run_source_phase(*home, compiled.value());
  if (!source.ok()) {
    std::printf("source phase failed: %s\n", source.error().c_str());
    return 1;
  }
  std::printf("[BDC] described %s: format=%s, MPI=%s, required glibc=%s\n",
              compiled.value().c_str(),
              source.value().application.file_format.c_str(),
              source.value().application.mpi_impl
                  ? site::mpi_impl_name(*source.value().application.mpi_impl)
                  : "none",
              source.value().application.required_clib_version
                  ? source.value().application.required_clib_version->str().c_str()
                  : "none");
  std::printf("[EDC] environment: %s, glibc %s, %zu MPI stacks\n",
              source.value().environment.distro.c_str(),
              source.value().environment.clib_version->str().c_str(),
              source.value().environment.stacks.size());
  std::printf("[BDC] gathered %zu library copies + %zu hello worlds "
              "(bundle %s)\n",
              source.value().bundle.libraries.size(),
              source.value().bundle.hello_worlds.size(),
              support::human_size(source.value().bundle.total_bytes()).c_str());
  for (const auto& line : source.value().render_text()) {
    std::printf("       %s\n", line.c_str());
  }

  std::printf("\n== bundle copied to target site 'fir' ==\n\n");
  auto target = toolchain::make_site("fir");
  target->vfs.write_file("/home/user/migrated/cg.B",
                         *home->vfs.read(compiled.value()));

  std::printf("== TARGET PHASE (required, at target site 'fir') ==\n");
  const auto result = run_target_phase(*target, "/home/user/migrated/cg.B",
                                       &source.value());
  if (!result.ok()) {
    std::printf("target phase failed: %s\n", result.error().c_str());
    return 1;
  }
  std::printf("[BDC] re-described the migrated binary at the target\n");
  std::printf("[EDC] target: %s, glibc %s, %zu MPI stacks\n",
              result.value().environment.distro.c_str(),
              result.value().environment.clib_version->str().c_str(),
              result.value().environment.stacks.size());
  std::printf("[TEC] determinants:\n");
  for (const auto& det : result.value().prediction.determinants) {
    std::printf("       %-28s %s (%s)\n", determinant_name(det.kind),
                !det.evaluated ? "skipped"
                : det.compatible ? "compatible"
                                 : "INCOMPATIBLE",
                det.detail.c_str());
  }
  std::printf("[TEC] prediction: %s\n",
              result.value().prediction.ready ? "READY" : "NOT READY");
  if (result.value().prediction.ready) {
    std::printf("\nGenerated configuration script:\n%s",
                result.value().prediction.configuration_script.c_str());
    // Prove it: follow the configuration and run.
    const auto extra =
        Tec::apply_configuration(*target, result.value().prediction);
    const auto run = toolchain::mpiexec_with_retries(
        *target, "/home/user/migrated/cg.B", 4, extra);
    std::printf("\nExecution under the generated configuration: %s\n",
                toolchain::run_status_name(run.status));
    return run.success() ? 0 : 1;
  }
  return 0;
}
