// Route-level companion to Table IV: the home-site x target-site success
// matrix, before and after resolution. Shows where migration works
// naturally (the India<->Fir twins), where resolution earns its keep
// (Ranger's old MVAPICH2 line), and where nothing helps (anything
// gcc-4.1+/Intel-11+ built, migrating to Ranger's glibc 2.3.4).
// Also dumps the per-migration CSV for downstream analysis.
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"

using namespace feam::eval;

int main(int argc, char** argv) {
  ExperimentOptions options;
  options.fault_seed = 20130613;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();

  const auto matrix = compute_route_matrix(experiment.results());
  std::printf("ROUTE MATRIX (both suites pooled)\n\n%s\n",
              render_route_matrix(matrix).c_str());

  if (argc > 1) {
    const std::string path = argv[1];
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const std::string csv = results_to_csv(experiment.results());
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("per-migration CSV written to %s (%zu rows)\n", path.c_str(),
                experiment.results().size());
  } else {
    std::printf("(pass a path argument to dump the per-migration CSV)\n");
  }
  return 0;
}
