// Sequential-vs-pooled timing of the full migration matrix (the perf
// claim of the parallel migration engine): runs the NPB + SPEC matrix
// once the legacy way (jobs=1, no caches — exactly the pre-engine code
// path) and once pooled with the BDC/EDC/resolver/source-phase memoization on,
// asserts the run records are bit-identical, and reports wall times,
// speedup, and cache hit rates as a feam.bench/1 record (BENCH_3.json).
//
// Flags:
//   --jobs N        worker threads for the pooled leg (default 4)
//   --bench-out F   write the feam.bench/1 record to F
//   --baseline F    gate the metrics against a feam.report_baseline/1 file
//   --pr N          PR number stamped into the bench record (default 3)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/run_records.hpp"
#include "report/gate.hpp"
#include "support/json.hpp"

using namespace feam;
using namespace feam::eval;

namespace {

// Stable serialization of every migration outcome; equal strings mean the
// two runs agreed on every record, field for field.
std::string records_dump(const std::vector<MigrationResult>& results) {
  std::string out;
  for (const auto& record : to_run_records(results)) {
    out += record.to_json().dump();
    out += '\n';
  }
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  int pr_number = 3;
  std::string bench_out;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (flag == "--bench-out" && i + 1 < argc) bench_out = argv[++i];
    else if (flag == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    else if (flag == "--pr" && i + 1 < argc) pr_number = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 1;
    }
  }
  if (jobs < 1) jobs = 1;

  // Leg 1 — legacy: strictly sequential, no memoization. This is the
  // pre-engine behaviour the speedup is measured against.
  ExperimentOptions seq_options;
  seq_options.jobs = 1;
  seq_options.use_caches = false;
  Experiment sequential(seq_options);
  sequential.build_test_set();
  const auto t0 = std::chrono::steady_clock::now();
  sequential.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double sequential_ms = elapsed_ms(t0, t1);

  // Leg 2 — the parallel engine: pooled workers under site leases, with
  // the content-addressed BDC cache, the generation-keyed EDC memo, and
  // the per-binary source-phase memo.
  ExperimentOptions par_options;
  par_options.jobs = jobs;
  par_options.use_caches = true;
  Experiment pooled(par_options);
  pooled.build_test_set();
  const auto t2 = std::chrono::steady_clock::now();
  pooled.run();
  const auto t3 = std::chrono::steady_clock::now();
  const double parallel_ms = elapsed_ms(t2, t3);

  const bool identical =
      records_dump(sequential.results()) == records_dump(pooled.results());
  const double speedup = parallel_ms > 0 ? sequential_ms / parallel_ms : 0.0;
  const auto* caches = pooled.caches();
  const double bdc_rate = rate(caches->bdc.hits(), caches->bdc.misses());
  const double edc_rate = rate(caches->edc.hits(), caches->edc.misses());
  const double resolver_rate =
      rate(caches->resolver.hits(), caches->resolver.misses());

  std::printf("Full matrix: %zu migrations\n", pooled.results().size());
  std::printf("  sequential (jobs=1, no caches): %9.1f ms\n", sequential_ms);
  std::printf("  pooled     (jobs=%d, caches):   %9.1f ms\n", jobs,
              parallel_ms);
  std::printf("  speedup: %.2fx\n", speedup);
  std::printf("  BDC cache:    %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->bdc.hits()),
              static_cast<unsigned long long>(caches->bdc.misses()),
              100.0 * bdc_rate);
  std::printf("  EDC memo:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->edc.hits()),
              static_cast<unsigned long long>(caches->edc.misses()),
              100.0 * edc_rate);
  std::printf("  resolver:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->resolver.hits()),
              static_cast<unsigned long long>(caches->resolver.misses()),
              100.0 * resolver_rate);
  std::printf("  source phase: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(pooled.source_phase_hits()),
              static_cast<unsigned long long>(pooled.source_phase_misses()));
  std::printf("  results bit-identical to sequential run: %s\n",
              identical ? "yes" : "NO");

  std::map<std::string, double> metrics;
  metrics["bench.jobs"] = jobs;
  metrics["bench.migrations"] = static_cast<double>(pooled.results().size());
  metrics["bench.sequential_ms"] = sequential_ms;
  metrics["bench.parallel_ms"] = parallel_ms;
  metrics["bench.speedup"] = speedup;
  metrics["bench.identical"] = identical ? 1 : 0;
  metrics["bench.bdc_hits"] = static_cast<double>(caches->bdc.hits());
  metrics["bench.bdc_misses"] = static_cast<double>(caches->bdc.misses());
  metrics["bench.bdc_hit_rate"] = bdc_rate;
  metrics["bench.edc_hits"] = static_cast<double>(caches->edc.hits());
  metrics["bench.edc_misses"] = static_cast<double>(caches->edc.misses());
  metrics["bench.edc_hit_rate"] = edc_rate;
  metrics["bench.resolver_hits"] =
      static_cast<double>(caches->resolver.hits());
  metrics["bench.resolver_misses"] =
      static_cast<double>(caches->resolver.misses());
  metrics["bench.resolver_hit_rate"] = resolver_rate;
  metrics["bench.source_phase_hits"] =
      static_cast<double>(pooled.source_phase_hits());
  metrics["bench.source_phase_misses"] =
      static_cast<double>(pooled.source_phase_misses());

  report::GateResult gate;
  const report::GateResult* gate_ptr = nullptr;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto baseline = support::Json::parse(buffer.str());
    if (!in || !baseline) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    auto result = report::run_gate(metrics, *baseline);
    if (!result.ok()) {
      std::fprintf(stderr, "gate error: %s\n", result.error().c_str());
      return 1;
    }
    gate = std::move(result).take();
    gate_ptr = &gate;
    std::printf("\n%s", gate.render().c_str());
  }

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    out << report::bench_record(metrics, gate_ptr, pr_number).dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
  }

  const bool pass = identical && speedup >= 2.0 && bdc_rate > 0.5 &&
                    (gate_ptr == nullptr || gate.pass);
  std::printf("Acceptance (identical, >=2x, BDC hit rate > 50%%): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
