// Sequential-vs-pooled timing of the full migration matrix (the perf
// claim of the parallel migration engine): after one untimed warm-up
// pass, runs the NPB + SPEC matrix the legacy way (jobs=1, no caches —
// exactly the pre-engine code path) and pooled with the
// BDC/EDC/resolver/source-phase memoization on, interleaved best-of-two
// each, asserts the run records are bit-identical, and reports wall
// times, speedup (with a hardware-scaled 8-job target — parallel
// scaling needs cores), and cache hit rates as a feam.bench/1 record
// (BENCH_8.json). A speedup-vs-jobs sweep at 1/2/4/8 workers follows in
// the same warm process.
//
// A third, sequential leg repeats the matrix with 5% Vfs fault injection
// (the robustness claim): every pair must finish with a clean or io/parse
// attribution, and every *unfaulted* pair must serialize record-for-record
// identically to the fault-free sequential baseline — proof that faulted
// computations never poison the caches. This leg runs with jobs=1 because
// fault-count-delta attribution is exact only sequentially (parallel runs
// can over-attribute shared-site faults, see ARCHITECTURE.md).
//
// A fourth, profiled leg reruns the pooled configuration with the span
// collector and metric registry live (the contention-aware profiling
// claim): results must stay bit-identical to the pooled leg, profiling
// overhead must stay under 2% of an uninstrumented reference run, and the
// contention metrics the profile exposes — pool idle share, lease waits,
// cache hit rates — are gated against the baseline. All three overhead
// gates (legs 4/5/6) compare best-of-three *process CPU time*: wall
// times are printed for context, but wall minima swing several percent
// on a shared runner, which would make a 1-2% gate flake on noise the
// instrumentation did not cause.
//
// A fifth, sampled leg reruns the pooled configuration with the
// TimeseriesSampler live (the live-telemetry claim): a background thread
// snapshots the metric registry every --timeseries-interval ms and emits
// the feam.timeseries/1 delta stream while the workers run. Results must
// stay bit-identical, the stream must telescope (sum of window deltas ==
// final totals, checked by the reader), and sampling must cost under
// 5 cpu-ms per snapshot against a fresh uninstrumented reference (same
// interleaved best-of-three discipline as leg 4). Steady-state metrics —
// late-window
// throughput, cache hit rates, lease p99 — come from the stream itself
// and land in the bench record (BENCH_7.json).
//
// A sixth, memory leg reruns the pooled configuration with only the
// tracking allocator armed (the memory-observability claim): every heap
// allocation is attributed to the innermost active span, and the gate
// bounds exactly that cost — results bit-identical, under 100 ns of CPU
// per tracked allocation vs a fresh uninstrumented reference
// (interleaved best-of-three). An
// untimed measurement pass with tracking + collector on captures the
// allocation flamegraph, the per-cache cache.bytes footprints (read while
// the Experiment is alive), gross allocation volume per migration, and
// the process peak RSS, all gated as ceilings in the baseline.
//
// Each leg runs in its own scope and the Experiment is destroyed before
// the next leg starts: keeping earlier legs' results and Vfs images
// resident measurably inflates later legs' wall time (3–5x in testing),
// which would poison any overhead comparison. For the same reason the
// overhead gate compares the instrumented run against a *fresh*
// uninstrumented reference run back to back (interleaved order across
// three rounds, best-of-three each) rather than against leg 2. The
// overhead gates themselves bound instrumentation cost per unit of
// work (cpu-ms per sample, ns per tracked allocation) rather than as a
// ratio of the reference: the ratio's denominator is the workload, so
// every hot-path win inflates it without the instrumentation changing.
//
// Flags:
//   --jobs N           worker threads for the pooled leg (default 4)
//   --fault-rate R     Vfs fault probability for the faulted leg (default 0.05)
//   --bench-out F      write the feam.bench/1 record to F
//   --baseline F       gate the metrics against a feam.report_baseline/1 file
//   --pr N             PR number stamped into the bench record (default 6)
//   --profile-table F  write the profiled leg's profile table to F
//   --folded F         write collapsed-stack flamegraph text to F
//   --svg F            write a self-contained flamegraph SVG to F
//   --timeseries-out F       write the sampled leg's best-run stream to F
//   --timeseries-interval MS sampler tick for the sampled leg (default 25)
//   --mem-folded F     write byte-weighted collapsed stacks to F
//   --mem-svg F        write the allocation flamegraph SVG to F
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/run_records.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "report/gate.hpp"
#include "report/timeseries.hpp"
#include "support/json.hpp"

using namespace feam;
using namespace feam::eval;

namespace {

// Stable serialization of every migration outcome; equal strings mean the
// two runs agreed on every record, field for field.
std::string records_dump(const std::vector<MigrationResult>& results) {
  std::string out;
  for (const auto& record : to_run_records(results)) {
    out += record.to_json().dump();
    out += '\n';
  }
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Process CPU time, all threads, in ms. The overhead gates compare CPU
// time rather than wall time: instrumentation costs cycles, and on a
// shared runner wall-clock minima swing several percent run to run
// (scheduler interference, CPU steal) while CPU time stays stable — a
// <2% wall gate would flake on noise the instrumentation didn't cause.
double process_cpu_ms() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

double rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

// Plain-value copy of an experiment's cache counters, so the Experiment
// itself can be destroyed between legs.
struct CacheStats {
  std::uint64_t bdc_hits = 0, bdc_misses = 0;
  std::uint64_t edc_hits = 0, edc_misses = 0;
  std::uint64_t resolver_hits = 0, resolver_misses = 0;
  std::uint64_t source_hits = 0, source_misses = 0;

  static CacheStats of(const Experiment& e) {
    CacheStats s;
    const auto* c = e.caches();
    s.bdc_hits = c->bdc.hits();
    s.bdc_misses = c->bdc.misses();
    s.edc_hits = c->edc.hits();
    s.edc_misses = c->edc.misses();
    s.resolver_hits = c->resolver.hits();
    s.resolver_misses = c->resolver.misses();
    s.source_hits = e.source_phase_hits();
    s.source_misses = e.source_phase_misses();
    return s;
  }
};

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  int pr_number = 7;
  double fault_rate = 0.05;
  int timeseries_interval_ms = 25;
  std::string bench_out;
  std::string baseline_path;
  std::string profile_table_out;
  std::string folded_out;
  std::string svg_out;
  std::string timeseries_out;
  std::string mem_folded_out;
  std::string mem_svg_out;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (flag == "--fault-rate" && i + 1 < argc) fault_rate = std::atof(argv[++i]);
    else if (flag == "--bench-out" && i + 1 < argc) bench_out = argv[++i];
    else if (flag == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    else if (flag == "--pr" && i + 1 < argc) pr_number = std::atoi(argv[++i]);
    else if (flag == "--profile-table" && i + 1 < argc) profile_table_out = argv[++i];
    else if (flag == "--folded" && i + 1 < argc) folded_out = argv[++i];
    else if (flag == "--svg" && i + 1 < argc) svg_out = argv[++i];
    else if (flag == "--timeseries-out" && i + 1 < argc) timeseries_out = argv[++i];
    else if (flag == "--timeseries-interval" && i + 1 < argc)
      timeseries_interval_ms = std::max(1, std::atoi(argv[++i]));
    else if (flag == "--mem-folded" && i + 1 < argc) mem_folded_out = argv[++i];
    else if (flag == "--mem-svg" && i + 1 < argc) mem_svg_out = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 1;
    }
  }
  if (jobs < 1) jobs = 1;

  const auto pair_key = [](const MigrationResult& r) {
    return r.binary_name + "|" + r.home_site + "|" + r.target_site;
  };

  ExperimentOptions par_options;
  par_options.jobs = jobs;
  par_options.use_caches = true;

  // Warm-up pass, untimed and discarded: the first matrix run in a fresh
  // process pays for growing the heap to its high-water mark (GBs of
  // page faults and arena mmaps that every later identical run reuses
  // for free) — 3-4x wall in testing. Timing the first passes would
  // measure that slope, not the engine, and it lands on whichever leg
  // runs first. One full pooled pass up front puts every timed leg on
  // the same warm footing the overhead legs already enjoy by running
  // late in the process.
  {
    Experiment warm(par_options);
    warm.build_test_set();
    warm.run();
  }

  const auto keep_best = [](double& slot, double value) {
    slot = slot == 0.0 ? value : std::min(slot, value);
  };

  // Leg 1 — legacy: strictly sequential, no memoization (exactly the
  // pre-engine code path). Leg 2 — the parallel engine: pooled workers
  // under subtree leases and thread-private shell sessions, with the
  // content-addressed BDC cache, the fingerprint-keyed EDC memo, and the
  // per-binary source-phase memo. The two legs interleave best-of-two
  // (seq, pooled, seq, pooled) so residual warm-up favours neither side
  // of the speedup ratio.
  double sequential_ms = 0.0;
  std::size_t migrations = 0;
  std::string sequential_dump;
  std::map<std::string, std::string> baseline_by_pair;
  const auto run_sequential = [&]() {
    ExperimentOptions seq_options;
    seq_options.jobs = 1;
    seq_options.use_caches = false;
    Experiment sequential(seq_options);
    sequential.build_test_set();
    const auto t0 = std::chrono::steady_clock::now();
    sequential.run();
    const auto t1 = std::chrono::steady_clock::now();
    keep_best(sequential_ms, elapsed_ms(t0, t1));
    if (sequential_dump.empty()) {
      migrations = sequential.results().size();
      sequential_dump = records_dump(sequential.results());
      for (const auto& result : sequential.results()) {
        baseline_by_pair[pair_key(result)] =
            to_run_record(result).to_json().dump();
      }
    }
  };
  double parallel_ms = 0.0;
  std::string pooled_dump;
  CacheStats pooled_caches;
  const auto run_pooled = [&]() {
    Experiment pooled(par_options);
    pooled.build_test_set();
    const auto t2 = std::chrono::steady_clock::now();
    pooled.run();
    const auto t3 = std::chrono::steady_clock::now();
    keep_best(parallel_ms, elapsed_ms(t2, t3));
    if (pooled_dump.empty()) {
      pooled_dump = records_dump(pooled.results());
      pooled_caches = CacheStats::of(pooled);
    }
  };
  run_sequential();
  run_pooled();
  run_sequential();
  run_pooled();

  // Speedup-vs-jobs sweep: the pooled configuration again at 1/2/4/8
  // workers (each with fresh caches, timed like leg 2, records checked
  // against the sequential dump). The main `--jobs` leg's time is reused
  // when the count matches, so the sweep adds at most three extra runs.
  std::map<int, double> sweep_ms;
  bool sweep_identical = true;
  for (const int sweep_jobs : {1, 2, 4, 8}) {
    if (sweep_jobs == jobs) {
      sweep_ms[sweep_jobs] = parallel_ms;
      continue;
    }
    ExperimentOptions sweep_options;
    sweep_options.jobs = sweep_jobs;
    sweep_options.use_caches = true;
    Experiment pooled(sweep_options);
    pooled.build_test_set();
    const auto t0 = std::chrono::steady_clock::now();
    pooled.run();
    const auto t1 = std::chrono::steady_clock::now();
    sweep_ms[sweep_jobs] = elapsed_ms(t0, t1);
    if (records_dump(pooled.results()) != sequential_dump) {
      sweep_identical = false;
    }
  }

  // The pooled speedup is two multiplicative components: work reduction
  // (caches, memoized source phases, zero-copy parsing — visible even on
  // one core) and parallel scaling, which is bounded by min(jobs,
  // hardware threads). The 8-job target therefore scales with the
  // machine: the full 6x is demanded only where 8 hardware threads
  // exist; smaller runners are held to what their core count can
  // express, down to the pure work-reduction floor on a single core.
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  const double speedup_jobs8 =
      sweep_ms[8] > 0 ? sequential_ms / sweep_ms[8] : 0.0;
  const double speedup_jobs8_target =
      hw_threads >= 8 ? 6.0 : hw_threads >= 4 ? 4.0 : hw_threads >= 2 ? 3.0
                                                                      : 1.7;
  const bool speedup_jobs8_target_met = speedup_jobs8 >= speedup_jobs8_target;

  // Leg 3 — robustness: the same matrix, sequential, with Vfs fault
  // injection at every site. Every pair must come back attributed (clean,
  // io, or parse), and the clean pairs must be bit-identical to the
  // fault-free baseline — faulted computations never enter the caches.
  double faulted_ms = 0.0;
  std::size_t faulted_total = 0;
  std::size_t clean_pairs = 0, io_pairs = 0, parse_pairs = 0;
  std::size_t unknown_attr = 0, clean_mismatches = 0;
  {
    ExperimentOptions fault_options;
    fault_options.jobs = 1;
    fault_options.use_caches = true;
    fault_options.vfs_fault_rate = fault_rate;
    Experiment faulted(fault_options);
    faulted.build_test_set();
    const auto t4 = std::chrono::steady_clock::now();
    faulted.run();
    const auto t5 = std::chrono::steady_clock::now();
    faulted_ms = elapsed_ms(t4, t5);
    faulted_total = faulted.results().size();
    for (const auto& result : faulted.results()) {
      if (result.failure_attribution == "io") {
        ++io_pairs;
      } else if (result.failure_attribution == "parse") {
        ++parse_pairs;
      } else if (!result.failure_attribution.empty()) {
        ++unknown_attr;
      } else {
        ++clean_pairs;
        const auto it = baseline_by_pair.find(pair_key(result));
        if (it == baseline_by_pair.end() ||
            it->second != to_run_record(result).to_json().dump()) {
          ++clean_mismatches;
        }
      }
    }
  }
  // With a positive rate over ~800 migrations some pairs must fault; all
  // attributions must be io/parse; no clean pair may drift from baseline.
  const bool fault_ok =
      clean_mismatches == 0 && unknown_attr == 0 &&
      (fault_rate <= 0.0 || io_pairs + parse_pairs > 0);

  // Leg 4 — profiled: the pooled configuration with the span collector
  // and metric registry live, against a fresh uninstrumented reference.
  // Three rounds, interleaved so warm-up favours neither side; wall times
  // are reported best-of-three, while the overhead gate compares
  // best-of-three *process CPU time* (see process_cpu_ms). Only run()
  // sits in the timed window (collection enabled right before it), so the
  // comparison isolates what observability costs.
  double ref_ms = 0.0;
  double ref_cpu_ms = 0.0;
  double profiled_ms = 0.0;
  double profiled_cpu_ms = 0.0;
  double profiled_wall_ms = 0.0;  // wall of the run the metrics belong to
  std::string profiled_dump;
  std::vector<obs::SpanRecord> profile_spans;
  std::map<std::string, obs::HistogramSnapshot> profiled_hists;
  CacheStats profiled_caches;
  std::size_t profile_events = 0;
  const auto best = [](double& slot, double value) {
    slot = slot == 0.0 ? value : std::min(slot, value);
  };
  const auto run_reference = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    const double cpu0 = process_cpu_ms();
    const auto a = std::chrono::steady_clock::now();
    e.run();
    const auto b = std::chrono::steady_clock::now();
    best(ref_ms, elapsed_ms(a, b));
    best(ref_cpu_ms, process_cpu_ms() - cpu0);
  };
  const auto run_instrumented = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    obs::metrics().reset_values();
    obs::collector().clear();
    obs::collector().set_enabled(true);
    const double cpu0 = process_cpu_ms();
    const auto a = std::chrono::steady_clock::now();
    e.run();
    const auto b = std::chrono::steady_clock::now();
    obs::collector().set_enabled(false);
    const double ms = elapsed_ms(a, b);
    best(profiled_ms, ms);
    best(profiled_cpu_ms, process_cpu_ms() - cpu0);
    profiled_wall_ms = ms;
    profile_spans = obs::collector().spans();
    profile_events = obs::collector().events().size();
    profiled_hists = obs::metrics().histogram_snapshots();
    profiled_dump = records_dump(e.results());
    profiled_caches = CacheStats::of(e);
  };
  run_reference();
  run_instrumented();
  run_instrumented();
  run_reference();
  run_reference();
  run_instrumented();

  // Leg 5 — sampled: the pooled configuration with the timeseries sampler
  // live. Only run() sits in the timed window; the sampler thread starts
  // just before it and is stopped (final flush) just after, so the
  // comparison isolates what live streaming costs while workers are hot.
  // The retained stream is the faster run's — the one the overhead number
  // describes.
  double sampled_ms = 0.0;
  double sampled_cpu_ms = 0.0;
  double sampled_ref_ms = 0.0;
  double sampled_ref_cpu_ms = 0.0;
  bool sampled_identical = true;
  std::string sampled_stream;
  const auto run_sampled_reference = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    const double cpu0 = process_cpu_ms();
    const auto a = std::chrono::steady_clock::now();
    e.run();
    const auto b = std::chrono::steady_clock::now();
    best(sampled_ref_ms, elapsed_ms(a, b));
    best(sampled_ref_cpu_ms, process_cpu_ms() - cpu0);
  };
  const auto run_sampled = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    obs::metrics().reset_values();
    std::mutex stream_mutex;
    std::string stream;
    obs::TimeseriesSampler::Options sampler_options;
    sampler_options.interval_ms =
        static_cast<std::uint64_t>(timeseries_interval_ms);
    sampler_options.source =
        "bench/parallel_matrix --jobs " + std::to_string(jobs);
    std::chrono::steady_clock::time_point a, b;
    double cpu0 = 0.0, cpu1 = 0.0;
    {
      obs::TimeseriesSampler sampler(
          obs::metrics(), sampler_options, [&](const std::string& line) {
            const std::lock_guard<std::mutex> lock(stream_mutex);
            stream += line;
          });
      cpu0 = process_cpu_ms();
      a = std::chrono::steady_clock::now();
      e.run();
      b = std::chrono::steady_clock::now();
      cpu1 = process_cpu_ms();
      sampler.stop();
    }
    const double ms = elapsed_ms(a, b);
    if (sampled_ms == 0.0 || ms < sampled_ms) {
      sampled_ms = ms;
      sampled_stream = std::move(stream);
    }
    best(sampled_cpu_ms, cpu1 - cpu0);
    if (records_dump(e.results()) != pooled_dump) sampled_identical = false;
  };
  run_sampled_reference();
  run_sampled();
  run_sampled();
  run_sampled_reference();
  run_sampled_reference();
  run_sampled();

  // Leg 6 — memory: the pooled configuration with only the tracking
  // allocator armed (no collector, no sampler). Every allocation pays a
  // relaxed load and a thread-local bump; each span pop flushes four
  // counters. The gate bounds exactly that cost against a fresh
  // uninstrumented reference (interleaved best-of-three CPU time — the
  // delta being bounded is ~1%, under wall-clock noise on a shared box),
  // and the records must stay bit-identical — attribution observes,
  // never perturbs.
  double mem_ref_ms = 0.0;
  double mem_ref_cpu_ms = 0.0;
  double tracked_ms = 0.0;
  double tracked_cpu_ms = 0.0;
  bool tracked_identical = true;
  const auto run_mem_reference = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    const double cpu0 = process_cpu_ms();
    const auto a = std::chrono::steady_clock::now();
    e.run();
    const auto b = std::chrono::steady_clock::now();
    best(mem_ref_ms, elapsed_ms(a, b));
    best(mem_ref_cpu_ms, process_cpu_ms() - cpu0);
  };
  const auto run_tracked = [&]() {
    Experiment e(par_options);
    e.build_test_set();
    obs::set_alloc_tracking(true);
    const double cpu0 = process_cpu_ms();
    const auto a = std::chrono::steady_clock::now();
    e.run();
    const auto b = std::chrono::steady_clock::now();
    obs::set_alloc_tracking(false);
    best(tracked_ms, elapsed_ms(a, b));
    best(tracked_cpu_ms, process_cpu_ms() - cpu0);
    if (records_dump(e.results()) != pooled_dump) tracked_identical = false;
  };
  run_mem_reference();
  run_tracked();
  run_tracked();
  run_mem_reference();
  run_mem_reference();
  run_tracked();

  // Measurement pass, untimed: tracking + collector on to capture the
  // allocation flamegraph, gross allocation volume, and the per-cache
  // cache.bytes footprints — read while the Experiment (and so its
  // caches) is still alive, after a registry reset so the gauge peaks
  // describe this pass alone.
  std::vector<obs::SpanRecord> mem_spans;
  std::map<std::string, obs::GaugeValue> mem_gauges;
  std::uint64_t alloc_bytes_total = 0;
  std::uint64_t alloc_count_total = 0;
  {
    obs::metrics().reset_values();
    obs::collector().clear();
    Experiment e(par_options);
    e.build_test_set();
    obs::collector().set_enabled(true);
    obs::set_alloc_tracking(true);
    e.run();
    obs::set_alloc_tracking(false);
    obs::collector().set_enabled(false);
    mem_spans = obs::collector().spans();
    mem_gauges = obs::metrics().gauge_values();
    const auto counters = obs::metrics().counter_values();
    const auto counter_of = [&](const char* name) {
      const auto it = counters.find(name);
      return it == counters.end() ? std::uint64_t{0} : it->second;
    };
    alloc_bytes_total = counter_of("mem.alloc_bytes");
    alloc_count_total = counter_of("mem.alloc_count");
  }
  const std::uint64_t peak_rss = obs::read_rss_peak_bytes();
  const double mem_overhead =
      mem_ref_cpu_ms > 0.0
          ? std::max(0.0, (tracked_cpu_ms - mem_ref_cpu_ms) / mem_ref_cpu_ms)
          : 0.0;
  // Same per-unit discipline as the sampler gate: the tracking
  // allocator's cost is a constant handful of ns per allocation, so
  // that — not its share of a shrinking total — is what the gate bounds.
  const double alloc_tracking_ns_per_alloc =
      alloc_count_total > 0
          ? std::max(0.0, tracked_cpu_ms - mem_ref_cpu_ms) * 1e6 /
                static_cast<double>(alloc_count_total)
          : 0.0;
  const double bytes_per_migration =
      migrations > 0 ? static_cast<double>(alloc_bytes_total) /
                           static_cast<double>(migrations)
                     : 0.0;
  const auto cache_peak_bytes = [&](const char* label) {
    const auto it =
        mem_gauges.find(std::string("cache.bytes{cache=") + label + "}");
    return it == mem_gauges.end() ? std::uint64_t{0} : it->second.peak;
  };

  // Steady-state view of the retained stream: skip the first quarter
  // (cold caches), exclude the final flush sample, and read the metrics
  // the way `feam top` / the trend gate would.
  const report::Timeseries timeseries =
      report::parse_timeseries(sampled_stream);
  const bool timeseries_consistent = timeseries.saw_final &&
                                     timeseries.malformed_lines == 0 &&
                                     timeseries.consistency_issues().empty();
  std::size_t steady_end = timeseries.samples.size();
  if (steady_end > 0 && timeseries.samples[steady_end - 1].final_sample) {
    --steady_end;
  }
  const std::size_t steady_head = steady_end / 4;
  const double steady_s = timeseries.span_seconds(steady_head, steady_end);
  const double steady_rate =
      steady_s > 0.0
          ? static_cast<double>(timeseries.counter_delta_sum(
                "phase.target_runs", steady_head, steady_end)) /
                steady_s
          : 0.0;
  const auto steady_caches =
      report::cache_windows(timeseries, steady_head, steady_end);
  const auto steady_cache_rate = [&](const char* name) {
    const auto it = steady_caches.find(name);
    return it == steady_caches.end() ? 0.0 : it->second.rate();
  };
  const auto steady_lease =
      timeseries.merged_histogram("lease.wait_ns", steady_head, steady_end);
  const double sampler_overhead =
      sampled_ref_cpu_ms > 0.0
          ? std::max(0.0, (sampled_cpu_ms - sampled_ref_cpu_ms) /
                              sampled_ref_cpu_ms)
          : 0.0;
  // Gate the sampler on what a snapshot costs, not on the overhead
  // ratio: the ratio's denominator is the workload itself, so every
  // hot-path win inflates it without the sampler regressing (this pass
  // cut the pooled run ~2x, which alone doubles the ratio). Cost per
  // sample is invariant to how fast the workload underneath it got.
  const double sampler_cpu_ms_per_sample =
      !timeseries.samples.empty()
          ? std::max(0.0, sampled_cpu_ms - sampled_ref_cpu_ms) /
                static_cast<double>(timeseries.samples.size())
          : 0.0;

  const obs::Profile profile = obs::build_profile(profile_spans);
  const auto hist_of = [&](const char* name) {
    const auto it = profiled_hists.find(name);
    return it == profiled_hists.end() ? obs::HistogramSnapshot{} : it->second;
  };

  // Idle share of the pool: 1 − (worker busy time / worker capacity).
  // The mean submit→start wait is useless here — a submit-all-upfront
  // FIFO queue makes every task "wait" for most of the run by design —
  // so the gated number is how much of jobs × wall the workers spent
  // NOT running tasks.
  const obs::HistogramSnapshot task_run = hist_of("pool.task_run_ns");
  const obs::HistogramSnapshot queue_wait = hist_of("pool.queue_wait_ns");
  const obs::HistogramSnapshot lease_wait = hist_of("lease.wait_ns");
  const double capacity_ns = profiled_wall_ms * 1e6 * jobs;
  const double queue_wait_share =
      capacity_ns > 0.0
          ? std::max(0.0, (capacity_ns - static_cast<double>(task_run.sum)) /
                              capacity_ns)
          : 0.0;
  const double profile_overhead =
      ref_cpu_ms > 0.0
          ? std::max(0.0, (profiled_cpu_ms - ref_cpu_ms) / ref_cpu_ms)
          : 0.0;
  const bool profiled_identical = profiled_dump == pooled_dump;
  const double p_bdc_rate =
      rate(profiled_caches.bdc_hits, profiled_caches.bdc_misses);
  const double p_edc_rate =
      rate(profiled_caches.edc_hits, profiled_caches.edc_misses);
  const double p_resolver_rate =
      rate(profiled_caches.resolver_hits, profiled_caches.resolver_misses);

  const bool identical = sequential_dump == pooled_dump;
  const double speedup = parallel_ms > 0 ? sequential_ms / parallel_ms : 0.0;
  const double bdc_rate = rate(pooled_caches.bdc_hits, pooled_caches.bdc_misses);
  const double edc_rate = rate(pooled_caches.edc_hits, pooled_caches.edc_misses);
  const double resolver_rate =
      rate(pooled_caches.resolver_hits, pooled_caches.resolver_misses);

  std::printf("Full matrix: %zu migrations\n", migrations);
  std::printf("  sequential (jobs=1, no caches): %9.1f ms\n", sequential_ms);
  std::printf("  pooled     (jobs=%d, caches):   %9.1f ms\n", jobs,
              parallel_ms);
  std::printf("  speedup: %.2fx\n", speedup);
  std::printf("  BDC cache:    %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(pooled_caches.bdc_hits),
              static_cast<unsigned long long>(pooled_caches.bdc_misses),
              100.0 * bdc_rate);
  std::printf("  EDC memo:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(pooled_caches.edc_hits),
              static_cast<unsigned long long>(pooled_caches.edc_misses),
              100.0 * edc_rate);
  std::printf("  resolver:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(pooled_caches.resolver_hits),
              static_cast<unsigned long long>(pooled_caches.resolver_misses),
              100.0 * resolver_rate);
  std::printf("  source phase: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(pooled_caches.source_hits),
              static_cast<unsigned long long>(pooled_caches.source_misses));
  std::printf("  results bit-identical to sequential run: %s\n",
              identical ? "yes" : "NO");
  std::printf("  speedup vs jobs:");
  for (const auto& [sweep_jobs, ms] : sweep_ms) {
    std::printf("  %dx%.2f", sweep_jobs, ms > 0 ? sequential_ms / ms : 0.0);
  }
  std::printf("  (sweep records identical: %s)\n",
              sweep_identical ? "yes" : "NO");
  std::printf("  8-job target: %.1fx on %u hardware thread%s: %s "
              "(measured %.2fx)\n",
              speedup_jobs8_target, hw_threads, hw_threads == 1 ? "" : "s",
              speedup_jobs8_target_met ? "met" : "MISSED", speedup_jobs8);
  std::printf("Faulted leg (sequential, %.1f%% Vfs faults): %9.1f ms\n",
              100.0 * fault_rate, faulted_ms);
  std::printf("  pairs: %zu clean / %zu io / %zu parse (of %zu)\n",
              clean_pairs, io_pairs, parse_pairs, faulted_total);
  std::printf("  clean pairs identical to baseline: %s (%zu mismatches)\n",
              clean_mismatches == 0 ? "yes" : "NO", clean_mismatches);
  std::printf("Profiled leg (jobs=%d, collector + metrics on): %9.1f ms vs "
              "%9.1f ms reference (cpu overhead %.1f%%: %.0f vs %.0f ms)\n",
              jobs, profiled_ms, ref_ms, 100.0 * profile_overhead,
              profiled_cpu_ms, ref_cpu_ms);
  std::printf("  spans: %zu, events: %zu; critical path: %.1f ms "
              "(%.0f%% of wall)\n",
              profile_spans.size(), profile_events,
              static_cast<double>(profile.critical_path_ns()) / 1e6,
              profile.wall_ns > 0
                  ? 100.0 * static_cast<double>(profile.critical_path_ns()) /
                        static_cast<double>(profile.wall_ns)
                  : 0.0);
  std::printf("  pool: %llu tasks, idle share %.2f, queue wait p99 %.1f ms\n",
              static_cast<unsigned long long>(task_run.count),
              queue_wait_share,
              static_cast<double>(queue_wait.percentile(0.99)) / 1e6);
  std::printf("  lease waits: %llu acquisitions, mean %.1f us, max %.1f ms\n",
              static_cast<unsigned long long>(lease_wait.count),
              lease_wait.mean() / 1e3,
              static_cast<double>(lease_wait.max) / 1e6);
  std::printf("  results bit-identical to pooled run: %s\n",
              profiled_identical ? "yes" : "NO");
  std::printf("Sampled leg (jobs=%d, %dms timeseries sampler): %9.1f ms vs "
              "%9.1f ms reference (cpu overhead %.2f%%: %.0f vs %.0f ms)\n",
              jobs, timeseries_interval_ms, sampled_ms, sampled_ref_ms,
              100.0 * sampler_overhead, sampled_cpu_ms, sampled_ref_cpu_ms);
  std::printf("  stream: %zu samples at %.2f cpu-ms each, %s\n",
              timeseries.samples.size(), sampler_cpu_ms_per_sample,
              timeseries_consistent
                  ? "deltas telescope to final totals"
                  : "INCONSISTENT (telescoping broken or no final sample)");
  std::printf("  steady state (samples %zu..%zu, %.2fs): %.1f target/s, "
              "BDC %.0f%% / EDC %.0f%% / resolver.ldd %.0f%% hit rate, "
              "lease wait p99 %.1f us\n",
              steady_head, steady_end, steady_s, steady_rate,
              100.0 * steady_cache_rate("bdc"),
              100.0 * steady_cache_rate("edc"),
              100.0 * steady_cache_rate("resolver.ldd"),
              static_cast<double>(steady_lease.percentile(0.99)) / 1e3);
  std::printf("  results bit-identical to pooled run: %s\n",
              sampled_identical ? "yes" : "NO");
  std::printf("Memory leg (jobs=%d, tracking allocator %s): %9.1f ms vs "
              "%9.1f ms reference (cpu overhead %.2f%%: %.0f vs %.0f ms)\n",
              jobs,
              obs::alloc_tracking_compiled() ? "armed" : "NOT COMPILED IN",
              tracked_ms, mem_ref_ms, 100.0 * mem_overhead, tracked_cpu_ms,
              mem_ref_cpu_ms);
  std::printf("  allocations: %.1f MB gross / %llu allocs "
              "(%.1f KB per migration, tracking cost %.1f ns/alloc)\n",
              static_cast<double>(alloc_bytes_total) / 1e6,
              static_cast<unsigned long long>(alloc_count_total),
              bytes_per_migration / 1e3, alloc_tracking_ns_per_alloc);
  std::printf("  cache footprint peaks: bdc %.1f MB, edc %.1f KB, resolver "
              "search/ldd/parse %.1f/%.1f/%.1f MB, source %.1f MB\n",
              static_cast<double>(cache_peak_bytes("bdc")) / 1e6,
              static_cast<double>(cache_peak_bytes("edc")) / 1e3,
              static_cast<double>(cache_peak_bytes("resolver.search")) / 1e6,
              static_cast<double>(cache_peak_bytes("resolver.ldd")) / 1e6,
              static_cast<double>(cache_peak_bytes("resolver.parse")) / 1e6,
              static_cast<double>(cache_peak_bytes("source")) / 1e6);
  std::printf("  process peak RSS: %.1f MB\n",
              static_cast<double>(peak_rss) / 1e6);
  std::printf("  results bit-identical to pooled run: %s\n",
              tracked_identical ? "yes" : "NO");

  std::map<std::string, double> metrics;
  metrics["bench.jobs"] = jobs;
  metrics["bench.migrations"] = static_cast<double>(migrations);
  metrics["bench.sequential_ms"] = sequential_ms;
  metrics["bench.parallel_ms"] = parallel_ms;
  metrics["bench.speedup"] = speedup;
  metrics["bench.identical"] = identical ? 1 : 0;
  for (const auto& [sweep_jobs, ms] : sweep_ms) {
    metrics["bench.speedup_jobs" + std::to_string(sweep_jobs)] =
        ms > 0 ? sequential_ms / ms : 0.0;
    metrics["bench.parallel_ms_jobs" + std::to_string(sweep_jobs)] = ms;
  }
  metrics["bench.sweep_identical"] = sweep_identical ? 1 : 0;
  metrics["bench.hw_threads"] = static_cast<double>(hw_threads);
  metrics["bench.speedup_jobs8_target"] = speedup_jobs8_target;
  metrics["bench.speedup_jobs8_target_met"] = speedup_jobs8_target_met ? 1 : 0;
  metrics["bench.bdc_hits"] = static_cast<double>(pooled_caches.bdc_hits);
  metrics["bench.bdc_misses"] = static_cast<double>(pooled_caches.bdc_misses);
  metrics["bench.bdc_hit_rate"] = bdc_rate;
  metrics["bench.edc_hits"] = static_cast<double>(pooled_caches.edc_hits);
  metrics["bench.edc_misses"] = static_cast<double>(pooled_caches.edc_misses);
  metrics["bench.edc_hit_rate"] = edc_rate;
  metrics["bench.resolver_hits"] =
      static_cast<double>(pooled_caches.resolver_hits);
  metrics["bench.resolver_misses"] =
      static_cast<double>(pooled_caches.resolver_misses);
  metrics["bench.resolver_hit_rate"] = resolver_rate;
  metrics["bench.source_phase_hits"] =
      static_cast<double>(pooled_caches.source_hits);
  metrics["bench.source_phase_misses"] =
      static_cast<double>(pooled_caches.source_misses);
  metrics["bench.fault_rate"] = fault_rate;
  metrics["bench.fault_leg_ms"] = faulted_ms;
  metrics["bench.fault_clean_pairs"] = static_cast<double>(clean_pairs);
  metrics["bench.fault_io_pairs"] = static_cast<double>(io_pairs);
  metrics["bench.fault_parse_pairs"] = static_cast<double>(parse_pairs);
  metrics["bench.fault_clean_mismatches"] =
      static_cast<double>(clean_mismatches);
  metrics["bench.fault_ok"] = fault_ok ? 1 : 0;
  metrics["bench.profiled_ms"] = profiled_ms;
  metrics["bench.profile_ref_ms"] = ref_ms;
  metrics["bench.profiled_cpu_ms"] = profiled_cpu_ms;
  metrics["bench.profile_ref_cpu_ms"] = ref_cpu_ms;
  metrics["bench.profile_overhead"] = profile_overhead;
  metrics["bench.profile_spans"] = static_cast<double>(profile_spans.size());
  metrics["bench.profiled_identical"] = profiled_identical ? 1 : 0;
  metrics["bench.critical_path_ns"] =
      static_cast<double>(profile.critical_path_ns());
  metrics["bench.queue_wait_share"] = queue_wait_share;
  metrics["bench.pool_tasks"] = static_cast<double>(task_run.count);
  metrics["bench.lease_waits"] = static_cast<double>(lease_wait.count);
  metrics["bench.lease_wait_mean_ns"] = lease_wait.mean();
  metrics["bench.lease_wait_max_ns"] = static_cast<double>(lease_wait.max);
  metrics["bench.lease_wait_p99_ns"] =
      static_cast<double>(lease_wait.percentile(0.99));
  metrics["bench.profiled_bdc_hit_rate"] = p_bdc_rate;
  metrics["bench.profiled_edc_hit_rate"] = p_edc_rate;
  metrics["bench.profiled_resolver_hit_rate"] = p_resolver_rate;
  metrics["bench.sampled_ms"] = sampled_ms;
  metrics["bench.sampled_ref_ms"] = sampled_ref_ms;
  metrics["bench.sampled_cpu_ms"] = sampled_cpu_ms;
  metrics["bench.sampled_ref_cpu_ms"] = sampled_ref_cpu_ms;
  metrics["bench.sampler_overhead"] = sampler_overhead;
  metrics["bench.sampler_cpu_ms_per_sample"] = sampler_cpu_ms_per_sample;
  metrics["bench.sampled_identical"] = sampled_identical ? 1 : 0;
  metrics["bench.timeseries_samples"] =
      static_cast<double>(timeseries.samples.size());
  metrics["bench.timeseries_consistent"] = timeseries_consistent ? 1 : 0;
  metrics["bench.steady_samples"] =
      static_cast<double>(steady_end - steady_head);
  metrics["bench.steady_target_rate"] = steady_rate;
  metrics["bench.steady_bdc_hit_rate"] = steady_cache_rate("bdc");
  metrics["bench.steady_edc_hit_rate"] = steady_cache_rate("edc");
  metrics["bench.steady_lease_p99_ns"] =
      static_cast<double>(steady_lease.percentile(0.99));
  metrics["bench.mem_ref_ms"] = mem_ref_ms;
  metrics["bench.tracked_ms"] = tracked_ms;
  metrics["bench.mem_ref_cpu_ms"] = mem_ref_cpu_ms;
  metrics["bench.tracked_cpu_ms"] = tracked_cpu_ms;
  metrics["bench.mem_overhead"] = mem_overhead;
  metrics["bench.alloc_tracking_ns_per_alloc"] = alloc_tracking_ns_per_alloc;
  metrics["bench.tracked_identical"] = tracked_identical ? 1 : 0;
  metrics["bench.alloc_tracking_compiled"] =
      obs::alloc_tracking_compiled() ? 1 : 0;
  metrics["bench.alloc_bytes"] = static_cast<double>(alloc_bytes_total);
  metrics["bench.alloc_count"] = static_cast<double>(alloc_count_total);
  metrics["bench.alloc_bytes_per_migration"] = bytes_per_migration;
  metrics["bench.peak_rss_bytes"] = static_cast<double>(peak_rss);
  metrics["bench.cache_peak_bytes_bdc"] =
      static_cast<double>(cache_peak_bytes("bdc"));
  metrics["bench.cache_peak_bytes_edc"] =
      static_cast<double>(cache_peak_bytes("edc"));
  metrics["bench.cache_peak_bytes_resolver_search"] =
      static_cast<double>(cache_peak_bytes("resolver.search"));
  metrics["bench.cache_peak_bytes_resolver_ldd"] =
      static_cast<double>(cache_peak_bytes("resolver.ldd"));
  metrics["bench.cache_peak_bytes_resolver_parse"] =
      static_cast<double>(cache_peak_bytes("resolver.parse"));
  metrics["bench.cache_peak_bytes_source"] =
      static_cast<double>(cache_peak_bytes("source"));

  report::GateResult gate;
  const report::GateResult* gate_ptr = nullptr;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto baseline = support::Json::parse(buffer.str());
    if (!in || !baseline) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    auto result = report::run_gate(metrics, *baseline);
    if (!result.ok()) {
      std::fprintf(stderr, "gate error: %s\n", result.error().c_str());
      return 1;
    }
    gate = std::move(result).take();
    gate_ptr = &gate;
    std::printf("\n%s", gate.render().c_str());
  }

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    out << report::bench_record(metrics, gate_ptr, pr_number).dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
  }
  if (!profile_table_out.empty() &&
      !write_file(profile_table_out, profile.render_table())) {
    return 1;
  }
  if (!folded_out.empty() && !write_file(folded_out, profile.folded_stacks())) {
    return 1;
  }
  if (!svg_out.empty() &&
      !write_file(svg_out, obs::render_flamegraph_svg(
                               profile.flame, "parallel matrix, profiled leg"))) {
    return 1;
  }
  if (!timeseries_out.empty() && !write_file(timeseries_out, sampled_stream)) {
    return 1;
  }
  if (!mem_folded_out.empty() || !mem_svg_out.empty()) {
    const obs::Profile mem_profile = obs::build_profile(mem_spans);
    if (!mem_folded_out.empty() &&
        !write_file(mem_folded_out,
                    mem_profile.folded_stacks(obs::FlameWeight::kAllocBytes))) {
      return 1;
    }
    if (!mem_svg_out.empty() &&
        !write_file(mem_svg_out,
                    obs::render_flamegraph_svg(
                        mem_profile.flame, "parallel matrix, allocated bytes",
                        obs::FlameWeight::kAllocBytes))) {
      return 1;
    }
  }

  const bool pass = identical && sweep_identical && speedup >= 1.7 &&
                    speedup_jobs8_target_met &&
                    bdc_rate > 0.5 && edc_rate > 0.8 &&
                    fault_ok && profiled_identical && profile_overhead < 0.02 &&
                    sampled_identical && sampler_cpu_ms_per_sample < 5.0 &&
                    timeseries_consistent && tracked_identical &&
                    alloc_tracking_ns_per_alloc < 100.0 &&
                    (gate_ptr == nullptr || gate.pass);
  std::printf(
      "Acceptance (identical at every sweep job count, 8-job speedup meets "
      "the hardware-scaled target, BDC hit rate > 50%%, EDC hit rate > "
      "80%%, faulted leg attributed + no cache poisoning, profiled leg "
      "identical with <2%% overhead, sampled leg identical + consistent at "
      "<5 cpu-ms per sample, memory leg identical at <100 ns per tracked "
      "allocation): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
