// Sequential-vs-pooled timing of the full migration matrix (the perf
// claim of the parallel migration engine): runs the NPB + SPEC matrix
// once the legacy way (jobs=1, no caches — exactly the pre-engine code
// path) and once pooled with the BDC/EDC/resolver/source-phase memoization on,
// asserts the run records are bit-identical, and reports wall times,
// speedup, and cache hit rates as a feam.bench/1 record (BENCH_3.json).
//
// A third, sequential leg repeats the matrix with 5% Vfs fault injection
// (the robustness claim): every pair must finish with a clean or io/parse
// attribution, and every *unfaulted* pair must serialize record-for-record
// identically to the fault-free sequential baseline — proof that faulted
// computations never poison the caches. This leg runs with jobs=1 because
// fault-count-delta attribution is exact only sequentially (parallel runs
// can over-attribute shared-site faults, see ARCHITECTURE.md).
//
// Flags:
//   --jobs N        worker threads for the pooled leg (default 4)
//   --fault-rate R  Vfs fault probability for the faulted leg (default 0.05)
//   --bench-out F   write the feam.bench/1 record to F
//   --baseline F    gate the metrics against a feam.report_baseline/1 file
//   --pr N          PR number stamped into the bench record (default 3)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/run_records.hpp"
#include "report/gate.hpp"
#include "support/json.hpp"

using namespace feam;
using namespace feam::eval;

namespace {

// Stable serialization of every migration outcome; equal strings mean the
// two runs agreed on every record, field for field.
std::string records_dump(const std::vector<MigrationResult>& results) {
  std::string out;
  for (const auto& record : to_run_records(results)) {
    out += record.to_json().dump();
    out += '\n';
  }
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  int pr_number = 3;
  double fault_rate = 0.05;
  std::string bench_out;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (flag == "--fault-rate" && i + 1 < argc) fault_rate = std::atof(argv[++i]);
    else if (flag == "--bench-out" && i + 1 < argc) bench_out = argv[++i];
    else if (flag == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    else if (flag == "--pr" && i + 1 < argc) pr_number = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 1;
    }
  }
  if (jobs < 1) jobs = 1;

  // Leg 1 — legacy: strictly sequential, no memoization. This is the
  // pre-engine behaviour the speedup is measured against.
  ExperimentOptions seq_options;
  seq_options.jobs = 1;
  seq_options.use_caches = false;
  Experiment sequential(seq_options);
  sequential.build_test_set();
  const auto t0 = std::chrono::steady_clock::now();
  sequential.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double sequential_ms = elapsed_ms(t0, t1);

  // Leg 2 — the parallel engine: pooled workers under site leases, with
  // the content-addressed BDC cache, the generation-keyed EDC memo, and
  // the per-binary source-phase memo.
  ExperimentOptions par_options;
  par_options.jobs = jobs;
  par_options.use_caches = true;
  Experiment pooled(par_options);
  pooled.build_test_set();
  const auto t2 = std::chrono::steady_clock::now();
  pooled.run();
  const auto t3 = std::chrono::steady_clock::now();
  const double parallel_ms = elapsed_ms(t2, t3);

  // Leg 3 — robustness: the same matrix, sequential, with Vfs fault
  // injection at every site. Every pair must come back attributed (clean,
  // io, or parse), and the clean pairs must be bit-identical to the
  // fault-free baseline — faulted computations never enter the caches.
  ExperimentOptions fault_options;
  fault_options.jobs = 1;
  fault_options.use_caches = true;
  fault_options.vfs_fault_rate = fault_rate;
  Experiment faulted(fault_options);
  faulted.build_test_set();
  const auto t4 = std::chrono::steady_clock::now();
  faulted.run();
  const auto t5 = std::chrono::steady_clock::now();
  const double faulted_ms = elapsed_ms(t4, t5);

  const auto pair_key = [](const MigrationResult& r) {
    return r.binary_name + "|" + r.home_site + "|" + r.target_site;
  };
  std::map<std::string, std::string> baseline_by_pair;
  for (const auto& result : sequential.results()) {
    baseline_by_pair[pair_key(result)] = to_run_record(result).to_json().dump();
  }
  std::size_t clean_pairs = 0, io_pairs = 0, parse_pairs = 0;
  std::size_t unknown_attr = 0, clean_mismatches = 0;
  for (const auto& result : faulted.results()) {
    if (result.failure_attribution == "io") {
      ++io_pairs;
    } else if (result.failure_attribution == "parse") {
      ++parse_pairs;
    } else if (!result.failure_attribution.empty()) {
      ++unknown_attr;
    } else {
      ++clean_pairs;
      const auto it = baseline_by_pair.find(pair_key(result));
      if (it == baseline_by_pair.end() ||
          it->second != to_run_record(result).to_json().dump()) {
        ++clean_mismatches;
      }
    }
  }
  // With a positive rate over ~800 migrations some pairs must fault; all
  // attributions must be io/parse; no clean pair may drift from baseline.
  const bool fault_ok =
      clean_mismatches == 0 && unknown_attr == 0 &&
      (fault_rate <= 0.0 || io_pairs + parse_pairs > 0);

  const bool identical =
      records_dump(sequential.results()) == records_dump(pooled.results());
  const double speedup = parallel_ms > 0 ? sequential_ms / parallel_ms : 0.0;
  const auto* caches = pooled.caches();
  const double bdc_rate = rate(caches->bdc.hits(), caches->bdc.misses());
  const double edc_rate = rate(caches->edc.hits(), caches->edc.misses());
  const double resolver_rate =
      rate(caches->resolver.hits(), caches->resolver.misses());

  std::printf("Full matrix: %zu migrations\n", pooled.results().size());
  std::printf("  sequential (jobs=1, no caches): %9.1f ms\n", sequential_ms);
  std::printf("  pooled     (jobs=%d, caches):   %9.1f ms\n", jobs,
              parallel_ms);
  std::printf("  speedup: %.2fx\n", speedup);
  std::printf("  BDC cache:    %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->bdc.hits()),
              static_cast<unsigned long long>(caches->bdc.misses()),
              100.0 * bdc_rate);
  std::printf("  EDC memo:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->edc.hits()),
              static_cast<unsigned long long>(caches->edc.misses()),
              100.0 * edc_rate);
  std::printf("  resolver:     %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(caches->resolver.hits()),
              static_cast<unsigned long long>(caches->resolver.misses()),
              100.0 * resolver_rate);
  std::printf("  source phase: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(pooled.source_phase_hits()),
              static_cast<unsigned long long>(pooled.source_phase_misses()));
  std::printf("  results bit-identical to sequential run: %s\n",
              identical ? "yes" : "NO");
  std::printf("Faulted leg (sequential, %.1f%% Vfs faults): %9.1f ms\n",
              100.0 * fault_rate, faulted_ms);
  std::printf("  pairs: %zu clean / %zu io / %zu parse (of %zu)\n",
              clean_pairs, io_pairs, parse_pairs, faulted.results().size());
  std::printf("  clean pairs identical to baseline: %s (%zu mismatches)\n",
              clean_mismatches == 0 ? "yes" : "NO", clean_mismatches);

  std::map<std::string, double> metrics;
  metrics["bench.jobs"] = jobs;
  metrics["bench.migrations"] = static_cast<double>(pooled.results().size());
  metrics["bench.sequential_ms"] = sequential_ms;
  metrics["bench.parallel_ms"] = parallel_ms;
  metrics["bench.speedup"] = speedup;
  metrics["bench.identical"] = identical ? 1 : 0;
  metrics["bench.bdc_hits"] = static_cast<double>(caches->bdc.hits());
  metrics["bench.bdc_misses"] = static_cast<double>(caches->bdc.misses());
  metrics["bench.bdc_hit_rate"] = bdc_rate;
  metrics["bench.edc_hits"] = static_cast<double>(caches->edc.hits());
  metrics["bench.edc_misses"] = static_cast<double>(caches->edc.misses());
  metrics["bench.edc_hit_rate"] = edc_rate;
  metrics["bench.resolver_hits"] =
      static_cast<double>(caches->resolver.hits());
  metrics["bench.resolver_misses"] =
      static_cast<double>(caches->resolver.misses());
  metrics["bench.resolver_hit_rate"] = resolver_rate;
  metrics["bench.source_phase_hits"] =
      static_cast<double>(pooled.source_phase_hits());
  metrics["bench.source_phase_misses"] =
      static_cast<double>(pooled.source_phase_misses());
  metrics["bench.fault_rate"] = fault_rate;
  metrics["bench.fault_leg_ms"] = faulted_ms;
  metrics["bench.fault_clean_pairs"] = static_cast<double>(clean_pairs);
  metrics["bench.fault_io_pairs"] = static_cast<double>(io_pairs);
  metrics["bench.fault_parse_pairs"] = static_cast<double>(parse_pairs);
  metrics["bench.fault_clean_mismatches"] =
      static_cast<double>(clean_mismatches);
  metrics["bench.fault_ok"] = fault_ok ? 1 : 0;

  report::GateResult gate;
  const report::GateResult* gate_ptr = nullptr;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto baseline = support::Json::parse(buffer.str());
    if (!in || !baseline) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    auto result = report::run_gate(metrics, *baseline);
    if (!result.ok()) {
      std::fprintf(stderr, "gate error: %s\n", result.error().c_str());
      return 1;
    }
    gate = std::move(result).take();
    gate_ptr = &gate;
    std::printf("\n%s", gate.render().c_str());
  }

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    out << report::bench_record(metrics, gate_ptr, pr_number).dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
  }

  const bool pass = identical && speedup >= 2.0 && bdc_rate > 0.5 &&
                    fault_ok && (gate_ptr == nullptr || gate.pass);
  std::printf(
      "Acceptance (identical, >=2x, BDC hit rate > 50%%, faulted leg "
      "attributed + no cache poisoning): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
