// Table IV: impact of the resolution model. Same evaluation matrix as
// Table III; compares actual execution success when the user only matches
// the MPI implementation (before) against following FEAM's generated
// configuration with resolved library copies (after).
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"
#include "support/table.hpp"

using namespace feam::eval;

int main() {
  ExperimentOptions options;
  options.fault_seed = 20130613;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();

  const auto t4 = compute_table4(experiment.results());
  std::printf("%s\n", render_table4(t4).c_str());
  std::printf("Paper reference: NAS 58%% -> 78%% (+33%%); "
              "SPEC 47%% -> 66%% (+39%%).\n\n");

  // The paper's companion claims.
  int missing_failures = 0, missing_fixed = 0, failures_before = 0;
  for (const auto& r : experiment.results()) {
    if (!r.success_before_resolution) ++failures_before;
    if (r.status_before == feam::toolchain::RunStatus::kMissingLibrary) {
      ++missing_failures;
      missing_fixed += r.success_after_resolution;
    }
  }
  std::printf("Missing shared libraries caused %d of %d failures (%s — "
              "paper: more than half)\n",
              missing_failures, failures_before,
              feam::support::percent(missing_failures, failures_before).c_str());
  std::printf("Resolution enabled %d of those %d (%s — paper: about half)\n",
              missing_fixed, missing_failures,
              feam::support::percent(missing_fixed, missing_failures).c_str());

  const bool shape_holds =
      t4.nas.before_percent() > 35 && t4.nas.before_percent() < 65 &&
      t4.spec.before_percent() > 35 && t4.spec.before_percent() < 65 &&
      t4.nas.after_percent() > t4.nas.before_percent() &&
      t4.spec.after_percent() > t4.spec.before_percent() &&
      t4.nas.increase_percent() > 15 && t4.spec.increase_percent() > 15 &&
      2 * missing_failures > failures_before;
  std::printf("\nShape check (about half succeed before; resolution lifts "
              "both suites by a quarter or more;\nmissing libraries are the "
              "majority failure cause): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
