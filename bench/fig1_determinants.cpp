// Figure 1 companion: the four prediction-model determinants in action.
// The paper's Figure 1 is a diagram of the determinants and the
// information gathered for each; this bench quantifies them over the full
// evaluation — how often each determinant fails, and what the actual
// execution failure causes were.
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"

using namespace feam::eval;

int main() {
  std::printf("FIGURE 1. PREDICTION MODEL DETERMINANTS\n\n");
  std::printf("1) Does a compatible ISA exist?\n"
              "2) Is there a compatible MPI stack functioning?\n"
              "3) Are the application's C library requirements met?\n"
              "4) Are the correct versions of the shared libraries "
              "available?\n\n");

  ExperimentOptions options;
  options.fault_seed = 20130613;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();

  const auto d = compute_determinants(experiment.results());
  std::printf("%s\n", render_determinants(d).c_str());
  std::printf("Paper's qualitative account (VI.C): of the failing jobs more\n"
              "than half were missing shared libraries; the remainder failed\n"
              "due to C library version requirements, floating point\n"
              "exceptions, and system errors. System errors are the only\n"
              "cause the model cannot predict.\n");
  return 0;
}
