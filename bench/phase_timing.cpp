// Section VI.C companion: resource usage of FEAM itself.
//
// The paper reports that both phases always completed in under five
// minutes (debug-queue friendly) and that a source-phase bundle covering
// all test binaries at one site averaged ~45M. This harness times every
// FEAM operation with google-benchmark and reports the aggregate bundle
// size for each site.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "binutils/resolver.hpp"
#include "elf/builder.hpp"
#include "elf/file.hpp"
#include "feam/bdc.hpp"
#include "feam/phases.hpp"
#include "obs/metrics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"
#include "workloads/benchmarks.hpp"

using namespace feam;

namespace {

struct Scenario {
  std::unique_ptr<site::Site> home;
  std::unique_ptr<site::Site> target;
  std::string binary_path;
  SourcePhaseOutput source;
};

Scenario& scenario() {
  static Scenario s = [] {
    Scenario out;
    out.home = toolchain::make_site("india");
    out.target = toolchain::make_site("fir");
    const auto* stack = out.home->find_stack(site::MpiImpl::kOpenMpi,
                                             site::CompilerFamily::kGnu);
    toolchain::ProgramSource cg;
    cg.name = "cg.B";
    cg.language = toolchain::Language::kFortran;
    cg.libc_features = {"base", "stdio", "math", "affinity"};
    out.binary_path = toolchain::compile_mpi_program(*out.home, cg, *stack,
                                                     "/home/user/apps/cg.B")
                          .value();
    out.home->load_module("openmpi/1.4-gnu");
    out.source = run_source_phase(*out.home, out.binary_path).take();
    out.target->vfs.write_file("/home/user/migrated/cg.B",
                               *out.home->vfs.read(out.binary_path));
    return out;
  }();
  return s;
}

void BM_ProvisionSite(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(toolchain::make_site("fir"));
  }
}
BENCHMARK(BM_ProvisionSite)->Unit(benchmark::kMillisecond);

void BM_BdcDescribe(benchmark::State& state) {
  Scenario& s = scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bdc::describe(*s.home, s.binary_path));
  }
}
BENCHMARK(BM_BdcDescribe)->Unit(benchmark::kMicrosecond);

void BM_EdcDiscover(benchmark::State& state) {
  Scenario& s = scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Edc::discover(*s.target));
  }
}
BENCHMARK(BM_EdcDiscover)->Unit(benchmark::kMicrosecond);

void BM_SourcePhase(benchmark::State& state) {
  Scenario& s = scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_source_phase(*s.home, s.binary_path));
  }
  state.counters["bundle_bytes"] =
      static_cast<double>(s.source.bundle.total_bytes());
}
BENCHMARK(BM_SourcePhase)->Unit(benchmark::kMillisecond);

void BM_TargetPhaseBasic(benchmark::State& state) {
  Scenario& s = scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_target_phase(*s.target, "/home/user/migrated/cg.B"));
  }
}
BENCHMARK(BM_TargetPhaseBasic)->Unit(benchmark::kMillisecond);

void BM_TargetPhaseExtended(benchmark::State& state) {
  Scenario& s = scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_target_phase(
        *s.target, "/home/user/migrated/cg.B", &s.source));
  }
}
BENCHMARK(BM_TargetPhaseExtended)->Unit(benchmark::kMillisecond);

// Resolver scalability: the loader-view resolution must stay fast on
// dependency graphs far beyond anything a real MPI application has.
site::Site& scale_site(std::size_t depth, std::size_t width) {
  static std::map<std::pair<std::size_t, std::size_t>, std::unique_ptr<site::Site>>
      cache;
  auto& slot = cache[{depth, width}];
  if (slot) return *slot;
  slot = std::make_unique<site::Site>();
  site::Site& s = *slot;
  s.name = "scale";
  s.isa = elf::Isa::kX86_64;

  const auto lib = [&](const std::string& soname,
                       std::vector<std::string> needed) {
    elf::ElfSpec spec;
    spec.isa = elf::Isa::kX86_64;
    spec.kind = elf::FileKind::kSharedObject;
    spec.soname = soname;
    spec.needed = std::move(needed);
    spec.text_size = 64;
    s.vfs.write_file("/lib64/" + soname, elf::build_image(spec));
  };
  // A chain libd0 -> libd1 -> ... and a fan of independent libraries.
  for (std::size_t i = depth; i-- > 0;) {
    lib("libchain" + std::to_string(i) + ".so",
        i + 1 < depth ? std::vector<std::string>{"libchain" +
                                                 std::to_string(i + 1) + ".so"}
                      : std::vector<std::string>{});
  }
  std::vector<std::string> fan;
  for (std::size_t i = 0; i < width; ++i) {
    const std::string soname = "libfan" + std::to_string(i) + ".so";
    lib(soname, {});
    fan.push_back(soname);
  }
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = std::move(fan);
  if (depth > 0) app.needed.push_back("libchain0.so");
  app.text_size = 64;
  s.vfs.write_file("/app", elf::build_image(app));
  return s;
}

void BM_ResolveDeepChain(benchmark::State& state) {
  site::Site& s = scale_site(static_cast<std::size_t>(state.range(0)), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(binutils::resolve_libraries(s, "/app"));
  }
}
BENCHMARK(BM_ResolveDeepChain)->Arg(16)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_ResolveWideFan(benchmark::State& state) {
  site::Site& s = scale_site(0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(binutils::resolve_libraries(s, "/app"));
  }
}
BENCHMARK(BM_ResolveWideFan)->Arg(16)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// The paper's 45M figure: one bundle holding the union of all shared
// libraries required by all test binaries at a site.
void report_site_bundle_sizes() {
  std::printf("\nPer-site union bundles (all shared libraries required by "
              "all test binaries,\nC library excluded) — paper reports an "
              "average of ~45M:\n");
  for (const auto& name : toolchain::testbed_site_names()) {
    auto s = toolchain::make_site(name);
    std::set<std::string> copied_paths;
    std::size_t bytes = 0;
    for (const auto& stack : s->stacks) {
      for (const auto& workload : workloads::all_workloads()) {
        if (!workloads::combination_viable(workload.program, workload.suite,
                                           stack, name)) {
          continue;
        }
        const std::string path =
            "/tmp/bundle_probe_" + workload.program.name + "." + stack.slug();
        const auto compiled = toolchain::compile_mpi_program(
            *s, workload.program, stack, path);
        if (!compiled.ok()) continue;
        s->unload_all_modules();
        s->load_module(std::string(site::mpi_impl_slug(stack.impl)) + "/" +
                       stack.version.str() + "-" +
                       site::compiler_slug(stack.compiler));
        const auto parsed = elf::ElfFile::parse(*s->vfs.read(path));
        if (!parsed.ok()) continue;
        const std::vector<std::string> needed(parsed.value().needed().begin(),
                                              parsed.value().needed().end());
        const auto located = Bdc::locate_libraries(*s, path, needed);
        for (const auto& [lib_name, location] : located) {
          if (!location || support::starts_with(lib_name, "libc.so")) continue;
          if (copied_paths.insert(*location).second) {
            if (const auto* data = s->vfs.read(*location)) {
              bytes += data->size();
            }
          }
        }
        s->vfs.remove(path);
      }
    }
    std::printf("  %-11s %4zu libraries, %s\n", name.c_str(),
                copied_paths.size(), support::human_size(bytes).c_str());
  }
  std::printf("\n");
}

// Aggregate latency distributions collected by the obs histograms while
// the benchmarks above ran — the same steady-clock spans `feam ...
// --trace-out` exports, so these numbers line up with trace timelines.
void report_obs_histograms() {
  static const char* kInteresting[] = {
      "phase.source_ns",  "phase.target_ns",   "bdc.parse_ns",
      "edc.discover_ns",  "tec.evaluate_ns",   "tec.resolution_ns",
      "bundle.pack_ns",   "bundle.unpack_ns",
  };
  std::printf("\nPhase latency histograms (obs subsystem; same clock as "
              "`feam --trace-out` spans):\n");
  support::TextTable table({"Histogram", "Count", "Mean", "p50", "p95"});
  const auto us = [](double ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f us", ns / 1000.0);
    return std::string(buf);
  };
  for (const char* name : kInteresting) {
    obs::Histogram& h = obs::histogram(name);
    if (h.count() == 0) continue;
    table.add_row({name, std::to_string(h.count()), us(h.mean()),
                   us(static_cast<double>(h.percentile(0.50))),
                   us(static_cast<double>(h.percentile(0.95)))});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("SECTION VI.C COMPANION: FEAM resource usage\n");
  report_site_bundle_sizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_obs_histograms();
  std::printf("\nPaper claim: both phases < 5 minutes on 2011-era debug "
              "queues;\nevery phase above runs in milliseconds in this "
              "simulation.\n");
  return 0;
}
