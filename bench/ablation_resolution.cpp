// Ablation 3 (DESIGN.md §4): the resolution model recursively applies the
// prediction model to each library copy before installing it (paper IV).
// Compares three variants on the full evaluation:
//   * full resolution with recursive copy validation (the paper's design),
//   * blind copying (no validation) — copies that need newer C libraries
//     or miss their own dependencies get installed and fail at run time,
//   * no resolution at all (the Table IV "before" baseline).
#include <cstdio>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"
#include "support/table.hpp"

using namespace feam::eval;

namespace {

struct Row {
  const char* label;
  double success_after = 0;
  double extended_accuracy = 0;
};

Row run_variant(const char* label, bool recursive_validation,
                bool apply_resolution) {
  ExperimentOptions options;
  options.fault_seed = 20130613;
  options.recursive_copy_validation = recursive_validation;
  options.apply_resolution = apply_resolution;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();
  int success = 0, correct = 0;
  for (const auto& r : experiment.results()) {
    success += r.success_after_resolution;
    correct += r.extended_correct();
  }
  const double n = static_cast<double>(experiment.results().size());
  return {label, 100.0 * success / n, 100.0 * correct / n};
}

}  // namespace

int main() {
  std::printf("ABLATION: recursive validation of library copies (paper IV)\n\n");

  const Row full = run_variant("recursive validation (paper)", true, true);
  const Row blind = run_variant("blind copying (ablated)", false, true);
  const Row none = run_variant("no resolution (baseline)", true, false);

  feam::support::TextTable table(
      {"Variant", "Executions successful", "Extended prediction accuracy"});
  char buf[32];
  for (const Row& row : {full, blind, none}) {
    std::string success, accuracy;
    std::snprintf(buf, sizeof buf, "%.0f%%", row.success_after);
    success = buf;
    std::snprintf(buf, sizeof buf, "%.0f%%", row.extended_accuracy);
    accuracy = buf;
    table.add_row({row.label, success, accuracy});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Resolution lifts success by ~a third over the no-resolution baseline\n"
      "(the Table IV effect). Blind copying matches full resolution on this\n"
      "testbed — but only because FEAM has defense in depth: bad copies that\n"
      "recursive validation would reject (e.g. Forge-built libraries that\n"
      "reference GLIBC_2.12 installed at a 2.3.4 site) are still caught at\n"
      "prediction time by the guaranteed-environment hello-world runs, which\n"
      "load the same copies and hit the same version errors. Disable both\n"
      "(no bundle hello worlds) and blind copies turn into run-time failures\n"
      "behind READY predictions. The unit test\n"
      "Tec.CopyRejectedWhenItNeedsNewerClib pins the static-rejection path.\n");
  // Shape: full >= blind on accuracy, full > none on success.
  const bool shape = full.extended_accuracy >= blind.extended_accuracy &&
                     full.success_after > none.success_after + 5;
  std::printf("Shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
