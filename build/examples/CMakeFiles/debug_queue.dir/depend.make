# Empty dependencies file for debug_queue.
# This may be replaced when dependencies are built.
