file(REMOVE_RECURSE
  "CMakeFiles/debug_queue.dir/debug_queue.cpp.o"
  "CMakeFiles/debug_queue.dir/debug_queue.cpp.o.d"
  "debug_queue"
  "debug_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
