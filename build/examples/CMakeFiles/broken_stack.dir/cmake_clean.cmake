file(REMOVE_RECURSE
  "CMakeFiles/broken_stack.dir/broken_stack.cpp.o"
  "CMakeFiles/broken_stack.dir/broken_stack.cpp.o.d"
  "broken_stack"
  "broken_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broken_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
