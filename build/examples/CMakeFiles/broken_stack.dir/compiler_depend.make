# Empty compiler generated dependencies file for broken_stack.
# This may be replaced when dependencies are built.
