# Empty compiler generated dependencies file for migrate_npb.
# This may be replaced when dependencies are built.
