file(REMOVE_RECURSE
  "CMakeFiles/migrate_npb.dir/migrate_npb.cpp.o"
  "CMakeFiles/migrate_npb.dir/migrate_npb.cpp.o.d"
  "migrate_npb"
  "migrate_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
