file(REMOVE_RECURSE
  "CMakeFiles/feam.dir/main.cpp.o"
  "CMakeFiles/feam.dir/main.cpp.o.d"
  "feam"
  "feam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
