# Empty compiler generated dependencies file for feam.
# This may be replaced when dependencies are built.
