file(REMOVE_RECURSE
  "CMakeFiles/feam_cli_options.dir/options.cpp.o"
  "CMakeFiles/feam_cli_options.dir/options.cpp.o.d"
  "libfeam_cli_options.a"
  "libfeam_cli_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_cli_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
