file(REMOVE_RECURSE
  "libfeam_cli_options.a"
)
