# Empty compiler generated dependencies file for feam_cli_options.
# This may be replaced when dependencies are built.
