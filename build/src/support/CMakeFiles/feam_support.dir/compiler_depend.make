# Empty compiler generated dependencies file for feam_support.
# This may be replaced when dependencies are built.
