file(REMOVE_RECURSE
  "libfeam_support.a"
)
