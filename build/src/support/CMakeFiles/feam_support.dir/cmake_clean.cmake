file(REMOVE_RECURSE
  "CMakeFiles/feam_support.dir/byte_io.cpp.o"
  "CMakeFiles/feam_support.dir/byte_io.cpp.o.d"
  "CMakeFiles/feam_support.dir/json.cpp.o"
  "CMakeFiles/feam_support.dir/json.cpp.o.d"
  "CMakeFiles/feam_support.dir/rng.cpp.o"
  "CMakeFiles/feam_support.dir/rng.cpp.o.d"
  "CMakeFiles/feam_support.dir/strings.cpp.o"
  "CMakeFiles/feam_support.dir/strings.cpp.o.d"
  "CMakeFiles/feam_support.dir/table.cpp.o"
  "CMakeFiles/feam_support.dir/table.cpp.o.d"
  "CMakeFiles/feam_support.dir/version.cpp.o"
  "CMakeFiles/feam_support.dir/version.cpp.o.d"
  "libfeam_support.a"
  "libfeam_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
