file(REMOVE_RECURSE
  "CMakeFiles/feam_toolchain.dir/compiler.cpp.o"
  "CMakeFiles/feam_toolchain.dir/compiler.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/glibc.cpp.o"
  "CMakeFiles/feam_toolchain.dir/glibc.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/launcher.cpp.o"
  "CMakeFiles/feam_toolchain.dir/launcher.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/linker.cpp.o"
  "CMakeFiles/feam_toolchain.dir/linker.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/loader.cpp.o"
  "CMakeFiles/feam_toolchain.dir/loader.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/packages.cpp.o"
  "CMakeFiles/feam_toolchain.dir/packages.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/provision.cpp.o"
  "CMakeFiles/feam_toolchain.dir/provision.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/shell.cpp.o"
  "CMakeFiles/feam_toolchain.dir/shell.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/site_spec.cpp.o"
  "CMakeFiles/feam_toolchain.dir/site_spec.cpp.o.d"
  "CMakeFiles/feam_toolchain.dir/testbed.cpp.o"
  "CMakeFiles/feam_toolchain.dir/testbed.cpp.o.d"
  "libfeam_toolchain.a"
  "libfeam_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
