# Empty compiler generated dependencies file for feam_toolchain.
# This may be replaced when dependencies are built.
