file(REMOVE_RECURSE
  "libfeam_toolchain.a"
)
