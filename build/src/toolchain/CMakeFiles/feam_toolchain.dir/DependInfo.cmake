
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/compiler.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/compiler.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/compiler.cpp.o.d"
  "/root/repo/src/toolchain/glibc.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/glibc.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/glibc.cpp.o.d"
  "/root/repo/src/toolchain/launcher.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/launcher.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/launcher.cpp.o.d"
  "/root/repo/src/toolchain/linker.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/linker.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/linker.cpp.o.d"
  "/root/repo/src/toolchain/loader.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/loader.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/loader.cpp.o.d"
  "/root/repo/src/toolchain/packages.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/packages.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/packages.cpp.o.d"
  "/root/repo/src/toolchain/provision.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/provision.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/provision.cpp.o.d"
  "/root/repo/src/toolchain/shell.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/shell.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/shell.cpp.o.d"
  "/root/repo/src/toolchain/site_spec.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/site_spec.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/site_spec.cpp.o.d"
  "/root/repo/src/toolchain/testbed.cpp" "src/toolchain/CMakeFiles/feam_toolchain.dir/testbed.cpp.o" "gcc" "src/toolchain/CMakeFiles/feam_toolchain.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/feam_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/feam_site.dir/DependInfo.cmake"
  "/root/repo/build/src/binutils/CMakeFiles/feam_binutils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
