file(REMOVE_RECURSE
  "libfeam_site.a"
)
