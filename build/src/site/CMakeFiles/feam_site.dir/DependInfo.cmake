
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/site/batch.cpp" "src/site/CMakeFiles/feam_site.dir/batch.cpp.o" "gcc" "src/site/CMakeFiles/feam_site.dir/batch.cpp.o.d"
  "/root/repo/src/site/environment.cpp" "src/site/CMakeFiles/feam_site.dir/environment.cpp.o" "gcc" "src/site/CMakeFiles/feam_site.dir/environment.cpp.o.d"
  "/root/repo/src/site/ids.cpp" "src/site/CMakeFiles/feam_site.dir/ids.cpp.o" "gcc" "src/site/CMakeFiles/feam_site.dir/ids.cpp.o.d"
  "/root/repo/src/site/site.cpp" "src/site/CMakeFiles/feam_site.dir/site.cpp.o" "gcc" "src/site/CMakeFiles/feam_site.dir/site.cpp.o.d"
  "/root/repo/src/site/vfs.cpp" "src/site/CMakeFiles/feam_site.dir/vfs.cpp.o" "gcc" "src/site/CMakeFiles/feam_site.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/feam_elf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
