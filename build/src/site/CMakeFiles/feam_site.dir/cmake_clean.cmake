file(REMOVE_RECURSE
  "CMakeFiles/feam_site.dir/batch.cpp.o"
  "CMakeFiles/feam_site.dir/batch.cpp.o.d"
  "CMakeFiles/feam_site.dir/environment.cpp.o"
  "CMakeFiles/feam_site.dir/environment.cpp.o.d"
  "CMakeFiles/feam_site.dir/ids.cpp.o"
  "CMakeFiles/feam_site.dir/ids.cpp.o.d"
  "CMakeFiles/feam_site.dir/site.cpp.o"
  "CMakeFiles/feam_site.dir/site.cpp.o.d"
  "CMakeFiles/feam_site.dir/vfs.cpp.o"
  "CMakeFiles/feam_site.dir/vfs.cpp.o.d"
  "libfeam_site.a"
  "libfeam_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
