# Empty compiler generated dependencies file for feam_site.
# This may be replaced when dependencies are built.
