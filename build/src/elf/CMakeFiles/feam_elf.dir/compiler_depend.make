# Empty compiler generated dependencies file for feam_elf.
# This may be replaced when dependencies are built.
