file(REMOVE_RECURSE
  "libfeam_elf.a"
)
