file(REMOVE_RECURSE
  "CMakeFiles/feam_elf.dir/builder.cpp.o"
  "CMakeFiles/feam_elf.dir/builder.cpp.o.d"
  "CMakeFiles/feam_elf.dir/file.cpp.o"
  "CMakeFiles/feam_elf.dir/file.cpp.o.d"
  "CMakeFiles/feam_elf.dir/hash.cpp.o"
  "CMakeFiles/feam_elf.dir/hash.cpp.o.d"
  "CMakeFiles/feam_elf.dir/spec.cpp.o"
  "CMakeFiles/feam_elf.dir/spec.cpp.o.d"
  "libfeam_elf.a"
  "libfeam_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
