
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elf/builder.cpp" "src/elf/CMakeFiles/feam_elf.dir/builder.cpp.o" "gcc" "src/elf/CMakeFiles/feam_elf.dir/builder.cpp.o.d"
  "/root/repo/src/elf/file.cpp" "src/elf/CMakeFiles/feam_elf.dir/file.cpp.o" "gcc" "src/elf/CMakeFiles/feam_elf.dir/file.cpp.o.d"
  "/root/repo/src/elf/hash.cpp" "src/elf/CMakeFiles/feam_elf.dir/hash.cpp.o" "gcc" "src/elf/CMakeFiles/feam_elf.dir/hash.cpp.o.d"
  "/root/repo/src/elf/spec.cpp" "src/elf/CMakeFiles/feam_elf.dir/spec.cpp.o" "gcc" "src/elf/CMakeFiles/feam_elf.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
