file(REMOVE_RECURSE
  "libfeam_eval.a"
)
