file(REMOVE_RECURSE
  "CMakeFiles/feam_eval.dir/experiment.cpp.o"
  "CMakeFiles/feam_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/feam_eval.dir/tables.cpp.o"
  "CMakeFiles/feam_eval.dir/tables.cpp.o.d"
  "libfeam_eval.a"
  "libfeam_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
