# Empty compiler generated dependencies file for feam_eval.
# This may be replaced when dependencies are built.
