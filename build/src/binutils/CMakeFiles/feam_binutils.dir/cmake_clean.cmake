file(REMOVE_RECURSE
  "CMakeFiles/feam_binutils.dir/file_cmd.cpp.o"
  "CMakeFiles/feam_binutils.dir/file_cmd.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/ldd.cpp.o"
  "CMakeFiles/feam_binutils.dir/ldd.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/nm.cpp.o"
  "CMakeFiles/feam_binutils.dir/nm.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/objdump.cpp.o"
  "CMakeFiles/feam_binutils.dir/objdump.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/readelf.cpp.o"
  "CMakeFiles/feam_binutils.dir/readelf.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/resolver.cpp.o"
  "CMakeFiles/feam_binutils.dir/resolver.cpp.o.d"
  "CMakeFiles/feam_binutils.dir/uname.cpp.o"
  "CMakeFiles/feam_binutils.dir/uname.cpp.o.d"
  "libfeam_binutils.a"
  "libfeam_binutils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_binutils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
