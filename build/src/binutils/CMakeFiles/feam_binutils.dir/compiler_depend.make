# Empty compiler generated dependencies file for feam_binutils.
# This may be replaced when dependencies are built.
