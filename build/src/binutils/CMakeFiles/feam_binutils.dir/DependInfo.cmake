
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binutils/file_cmd.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/file_cmd.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/file_cmd.cpp.o.d"
  "/root/repo/src/binutils/ldd.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/ldd.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/ldd.cpp.o.d"
  "/root/repo/src/binutils/nm.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/nm.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/nm.cpp.o.d"
  "/root/repo/src/binutils/objdump.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/objdump.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/objdump.cpp.o.d"
  "/root/repo/src/binutils/readelf.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/readelf.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/readelf.cpp.o.d"
  "/root/repo/src/binutils/resolver.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/resolver.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/resolver.cpp.o.d"
  "/root/repo/src/binutils/uname.cpp" "src/binutils/CMakeFiles/feam_binutils.dir/uname.cpp.o" "gcc" "src/binutils/CMakeFiles/feam_binutils.dir/uname.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/feam_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/feam_site.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
