file(REMOVE_RECURSE
  "libfeam_binutils.a"
)
