# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("elf")
subdirs("site")
subdirs("binutils")
subdirs("toolchain")
subdirs("workloads")
subdirs("feam")
subdirs("eval")
subdirs("cli")
