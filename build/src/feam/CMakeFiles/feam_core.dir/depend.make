# Empty dependencies file for feam_core.
# This may be replaced when dependencies are built.
