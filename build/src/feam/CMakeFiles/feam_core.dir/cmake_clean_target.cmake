file(REMOVE_RECURSE
  "libfeam_core.a"
)
