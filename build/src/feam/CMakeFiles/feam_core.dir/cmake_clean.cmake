file(REMOVE_RECURSE
  "CMakeFiles/feam_core.dir/bdc.cpp.o"
  "CMakeFiles/feam_core.dir/bdc.cpp.o.d"
  "CMakeFiles/feam_core.dir/bundle.cpp.o"
  "CMakeFiles/feam_core.dir/bundle.cpp.o.d"
  "CMakeFiles/feam_core.dir/bundle_archive.cpp.o"
  "CMakeFiles/feam_core.dir/bundle_archive.cpp.o.d"
  "CMakeFiles/feam_core.dir/config.cpp.o"
  "CMakeFiles/feam_core.dir/config.cpp.o.d"
  "CMakeFiles/feam_core.dir/description.cpp.o"
  "CMakeFiles/feam_core.dir/description.cpp.o.d"
  "CMakeFiles/feam_core.dir/edc.cpp.o"
  "CMakeFiles/feam_core.dir/edc.cpp.o.d"
  "CMakeFiles/feam_core.dir/identify.cpp.o"
  "CMakeFiles/feam_core.dir/identify.cpp.o.d"
  "CMakeFiles/feam_core.dir/phases.cpp.o"
  "CMakeFiles/feam_core.dir/phases.cpp.o.d"
  "CMakeFiles/feam_core.dir/report.cpp.o"
  "CMakeFiles/feam_core.dir/report.cpp.o.d"
  "CMakeFiles/feam_core.dir/survey.cpp.o"
  "CMakeFiles/feam_core.dir/survey.cpp.o.d"
  "CMakeFiles/feam_core.dir/tec.cpp.o"
  "CMakeFiles/feam_core.dir/tec.cpp.o.d"
  "libfeam_core.a"
  "libfeam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
