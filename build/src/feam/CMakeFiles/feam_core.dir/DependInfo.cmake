
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feam/bdc.cpp" "src/feam/CMakeFiles/feam_core.dir/bdc.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/bdc.cpp.o.d"
  "/root/repo/src/feam/bundle.cpp" "src/feam/CMakeFiles/feam_core.dir/bundle.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/bundle.cpp.o.d"
  "/root/repo/src/feam/bundle_archive.cpp" "src/feam/CMakeFiles/feam_core.dir/bundle_archive.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/bundle_archive.cpp.o.d"
  "/root/repo/src/feam/config.cpp" "src/feam/CMakeFiles/feam_core.dir/config.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/config.cpp.o.d"
  "/root/repo/src/feam/description.cpp" "src/feam/CMakeFiles/feam_core.dir/description.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/description.cpp.o.d"
  "/root/repo/src/feam/edc.cpp" "src/feam/CMakeFiles/feam_core.dir/edc.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/edc.cpp.o.d"
  "/root/repo/src/feam/identify.cpp" "src/feam/CMakeFiles/feam_core.dir/identify.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/identify.cpp.o.d"
  "/root/repo/src/feam/phases.cpp" "src/feam/CMakeFiles/feam_core.dir/phases.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/phases.cpp.o.d"
  "/root/repo/src/feam/report.cpp" "src/feam/CMakeFiles/feam_core.dir/report.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/report.cpp.o.d"
  "/root/repo/src/feam/survey.cpp" "src/feam/CMakeFiles/feam_core.dir/survey.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/survey.cpp.o.d"
  "/root/repo/src/feam/tec.cpp" "src/feam/CMakeFiles/feam_core.dir/tec.cpp.o" "gcc" "src/feam/CMakeFiles/feam_core.dir/tec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/feam_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/feam_site.dir/DependInfo.cmake"
  "/root/repo/build/src/binutils/CMakeFiles/feam_binutils.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/feam_toolchain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
