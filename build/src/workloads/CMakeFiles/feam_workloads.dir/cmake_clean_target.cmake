file(REMOVE_RECURSE
  "libfeam_workloads.a"
)
