file(REMOVE_RECURSE
  "CMakeFiles/feam_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/feam_workloads.dir/benchmarks.cpp.o.d"
  "libfeam_workloads.a"
  "libfeam_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
