# Empty dependencies file for feam_workloads.
# This may be replaced when dependencies are built.
