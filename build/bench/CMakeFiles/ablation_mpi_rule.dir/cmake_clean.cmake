file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpi_rule.dir/ablation_mpi_rule.cpp.o"
  "CMakeFiles/ablation_mpi_rule.dir/ablation_mpi_rule.cpp.o.d"
  "ablation_mpi_rule"
  "ablation_mpi_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpi_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
