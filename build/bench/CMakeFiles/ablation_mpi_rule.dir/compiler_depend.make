# Empty compiler generated dependencies file for ablation_mpi_rule.
# This may be replaced when dependencies are built.
