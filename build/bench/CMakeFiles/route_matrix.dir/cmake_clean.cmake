file(REMOVE_RECURSE
  "CMakeFiles/route_matrix.dir/route_matrix.cpp.o"
  "CMakeFiles/route_matrix.dir/route_matrix.cpp.o.d"
  "route_matrix"
  "route_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
