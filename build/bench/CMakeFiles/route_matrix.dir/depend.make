# Empty dependencies file for route_matrix.
# This may be replaced when dependencies are built.
