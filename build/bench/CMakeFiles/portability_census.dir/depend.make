# Empty dependencies file for portability_census.
# This may be replaced when dependencies are built.
