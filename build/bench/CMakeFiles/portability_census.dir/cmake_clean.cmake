file(REMOVE_RECURSE
  "CMakeFiles/portability_census.dir/portability_census.cpp.o"
  "CMakeFiles/portability_census.dir/portability_census.cpp.o.d"
  "portability_census"
  "portability_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
