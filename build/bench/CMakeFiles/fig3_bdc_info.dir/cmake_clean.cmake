file(REMOVE_RECURSE
  "CMakeFiles/fig3_bdc_info.dir/fig3_bdc_info.cpp.o"
  "CMakeFiles/fig3_bdc_info.dir/fig3_bdc_info.cpp.o.d"
  "fig3_bdc_info"
  "fig3_bdc_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bdc_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
