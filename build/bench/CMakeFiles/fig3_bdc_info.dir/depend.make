# Empty dependencies file for fig3_bdc_info.
# This may be replaced when dependencies are built.
