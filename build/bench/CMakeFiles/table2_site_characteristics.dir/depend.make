# Empty dependencies file for table2_site_characteristics.
# This may be replaced when dependencies are built.
