# Empty compiler generated dependencies file for phase_timing.
# This may be replaced when dependencies are built.
