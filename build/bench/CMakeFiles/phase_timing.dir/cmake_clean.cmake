file(REMOVE_RECURSE
  "CMakeFiles/phase_timing.dir/phase_timing.cpp.o"
  "CMakeFiles/phase_timing.dir/phase_timing.cpp.o.d"
  "phase_timing"
  "phase_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
