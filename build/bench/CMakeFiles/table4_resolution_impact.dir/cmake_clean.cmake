file(REMOVE_RECURSE
  "CMakeFiles/table4_resolution_impact.dir/table4_resolution_impact.cpp.o"
  "CMakeFiles/table4_resolution_impact.dir/table4_resolution_impact.cpp.o.d"
  "table4_resolution_impact"
  "table4_resolution_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_resolution_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
