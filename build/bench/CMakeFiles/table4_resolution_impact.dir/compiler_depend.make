# Empty compiler generated dependencies file for table4_resolution_impact.
# This may be replaced when dependencies are built.
