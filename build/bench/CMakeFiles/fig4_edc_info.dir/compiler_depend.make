# Empty compiler generated dependencies file for fig4_edc_info.
# This may be replaced when dependencies are built.
