file(REMOVE_RECURSE
  "CMakeFiles/fig4_edc_info.dir/fig4_edc_info.cpp.o"
  "CMakeFiles/fig4_edc_info.dir/fig4_edc_info.cpp.o.d"
  "fig4_edc_info"
  "fig4_edc_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_edc_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
