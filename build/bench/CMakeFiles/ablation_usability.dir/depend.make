# Empty dependencies file for ablation_usability.
# This may be replaced when dependencies are built.
