file(REMOVE_RECURSE
  "CMakeFiles/ablation_usability.dir/ablation_usability.cpp.o"
  "CMakeFiles/ablation_usability.dir/ablation_usability.cpp.o.d"
  "ablation_usability"
  "ablation_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
