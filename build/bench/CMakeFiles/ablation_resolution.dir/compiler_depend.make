# Empty compiler generated dependencies file for ablation_resolution.
# This may be replaced when dependencies are built.
