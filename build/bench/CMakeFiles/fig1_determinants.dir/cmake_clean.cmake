file(REMOVE_RECURSE
  "CMakeFiles/fig1_determinants.dir/fig1_determinants.cpp.o"
  "CMakeFiles/fig1_determinants.dir/fig1_determinants.cpp.o.d"
  "fig1_determinants"
  "fig1_determinants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_determinants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
