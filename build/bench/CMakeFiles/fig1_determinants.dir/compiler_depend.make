# Empty compiler generated dependencies file for fig1_determinants.
# This may be replaced when dependencies are built.
