# Empty dependencies file for table3_prediction_accuracy.
# This may be replaced when dependencies are built.
