file(REMOVE_RECURSE
  "CMakeFiles/table1_mpi_identification.dir/table1_mpi_identification.cpp.o"
  "CMakeFiles/table1_mpi_identification.dir/table1_mpi_identification.cpp.o.d"
  "table1_mpi_identification"
  "table1_mpi_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mpi_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
