# Empty compiler generated dependencies file for ablation_clib_rule.
# This may be replaced when dependencies are built.
