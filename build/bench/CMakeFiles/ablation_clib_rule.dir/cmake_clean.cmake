file(REMOVE_RECURSE
  "CMakeFiles/ablation_clib_rule.dir/ablation_clib_rule.cpp.o"
  "CMakeFiles/ablation_clib_rule.dir/ablation_clib_rule.cpp.o.d"
  "ablation_clib_rule"
  "ablation_clib_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clib_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
