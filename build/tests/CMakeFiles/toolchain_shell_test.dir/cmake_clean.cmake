file(REMOVE_RECURSE
  "CMakeFiles/toolchain_shell_test.dir/toolchain/shell_test.cpp.o"
  "CMakeFiles/toolchain_shell_test.dir/toolchain/shell_test.cpp.o.d"
  "toolchain_shell_test"
  "toolchain_shell_test.pdb"
  "toolchain_shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
