# Empty dependencies file for toolchain_shell_test.
# This may be replaced when dependencies are built.
