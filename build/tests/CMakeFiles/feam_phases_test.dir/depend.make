# Empty dependencies file for feam_phases_test.
# This may be replaced when dependencies are built.
