file(REMOVE_RECURSE
  "CMakeFiles/feam_phases_test.dir/feam/phases_test.cpp.o"
  "CMakeFiles/feam_phases_test.dir/feam/phases_test.cpp.o.d"
  "feam_phases_test"
  "feam_phases_test.pdb"
  "feam_phases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_phases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
