file(REMOVE_RECURSE
  "CMakeFiles/cli_options_test.dir/cli/options_test.cpp.o"
  "CMakeFiles/cli_options_test.dir/cli/options_test.cpp.o.d"
  "cli_options_test"
  "cli_options_test.pdb"
  "cli_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
