file(REMOVE_RECURSE
  "CMakeFiles/site_batch_test.dir/site/batch_test.cpp.o"
  "CMakeFiles/site_batch_test.dir/site/batch_test.cpp.o.d"
  "site_batch_test"
  "site_batch_test.pdb"
  "site_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
