# Empty compiler generated dependencies file for site_batch_test.
# This may be replaced when dependencies are built.
