file(REMOVE_RECURSE
  "CMakeFiles/toolchain_isa_heterogeneity_test.dir/toolchain/isa_heterogeneity_test.cpp.o"
  "CMakeFiles/toolchain_isa_heterogeneity_test.dir/toolchain/isa_heterogeneity_test.cpp.o.d"
  "toolchain_isa_heterogeneity_test"
  "toolchain_isa_heterogeneity_test.pdb"
  "toolchain_isa_heterogeneity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_isa_heterogeneity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
