# Empty dependencies file for toolchain_isa_heterogeneity_test.
# This may be replaced when dependencies are built.
