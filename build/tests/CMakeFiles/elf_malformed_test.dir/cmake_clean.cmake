file(REMOVE_RECURSE
  "CMakeFiles/elf_malformed_test.dir/elf/malformed_test.cpp.o"
  "CMakeFiles/elf_malformed_test.dir/elf/malformed_test.cpp.o.d"
  "elf_malformed_test"
  "elf_malformed_test.pdb"
  "elf_malformed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elf_malformed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
