# Empty compiler generated dependencies file for elf_malformed_test.
# This may be replaced when dependencies are built.
