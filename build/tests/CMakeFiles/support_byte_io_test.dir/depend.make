# Empty dependencies file for support_byte_io_test.
# This may be replaced when dependencies are built.
