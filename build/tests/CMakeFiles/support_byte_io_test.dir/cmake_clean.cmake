file(REMOVE_RECURSE
  "CMakeFiles/support_byte_io_test.dir/support/byte_io_test.cpp.o"
  "CMakeFiles/support_byte_io_test.dir/support/byte_io_test.cpp.o.d"
  "support_byte_io_test"
  "support_byte_io_test.pdb"
  "support_byte_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_byte_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
