file(REMOVE_RECURSE
  "CMakeFiles/toolchain_site_spec_test.dir/toolchain/site_spec_test.cpp.o"
  "CMakeFiles/toolchain_site_spec_test.dir/toolchain/site_spec_test.cpp.o.d"
  "toolchain_site_spec_test"
  "toolchain_site_spec_test.pdb"
  "toolchain_site_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_site_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
