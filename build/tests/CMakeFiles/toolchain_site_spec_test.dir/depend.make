# Empty dependencies file for toolchain_site_spec_test.
# This may be replaced when dependencies are built.
