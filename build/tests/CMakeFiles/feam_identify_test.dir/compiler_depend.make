# Empty compiler generated dependencies file for feam_identify_test.
# This may be replaced when dependencies are built.
