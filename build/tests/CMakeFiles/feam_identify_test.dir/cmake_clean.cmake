file(REMOVE_RECURSE
  "CMakeFiles/feam_identify_test.dir/feam/identify_test.cpp.o"
  "CMakeFiles/feam_identify_test.dir/feam/identify_test.cpp.o.d"
  "feam_identify_test"
  "feam_identify_test.pdb"
  "feam_identify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_identify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
