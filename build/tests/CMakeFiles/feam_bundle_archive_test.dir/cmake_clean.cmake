file(REMOVE_RECURSE
  "CMakeFiles/feam_bundle_archive_test.dir/feam/bundle_archive_test.cpp.o"
  "CMakeFiles/feam_bundle_archive_test.dir/feam/bundle_archive_test.cpp.o.d"
  "feam_bundle_archive_test"
  "feam_bundle_archive_test.pdb"
  "feam_bundle_archive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_bundle_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
