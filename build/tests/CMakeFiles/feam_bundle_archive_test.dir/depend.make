# Empty dependencies file for feam_bundle_archive_test.
# This may be replaced when dependencies are built.
