# Empty dependencies file for toolchain_linker_test.
# This may be replaced when dependencies are built.
