file(REMOVE_RECURSE
  "CMakeFiles/toolchain_linker_test.dir/toolchain/linker_test.cpp.o"
  "CMakeFiles/toolchain_linker_test.dir/toolchain/linker_test.cpp.o.d"
  "toolchain_linker_test"
  "toolchain_linker_test.pdb"
  "toolchain_linker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_linker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
