# Empty dependencies file for binutils_objdump_test.
# This may be replaced when dependencies are built.
