file(REMOVE_RECURSE
  "CMakeFiles/binutils_objdump_test.dir/binutils/objdump_test.cpp.o"
  "CMakeFiles/binutils_objdump_test.dir/binutils/objdump_test.cpp.o.d"
  "binutils_objdump_test"
  "binutils_objdump_test.pdb"
  "binutils_objdump_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_objdump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
