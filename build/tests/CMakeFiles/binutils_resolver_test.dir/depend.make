# Empty dependencies file for binutils_resolver_test.
# This may be replaced when dependencies are built.
