file(REMOVE_RECURSE
  "CMakeFiles/binutils_resolver_test.dir/binutils/resolver_test.cpp.o"
  "CMakeFiles/binutils_resolver_test.dir/binutils/resolver_test.cpp.o.d"
  "binutils_resolver_test"
  "binutils_resolver_test.pdb"
  "binutils_resolver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_resolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
