# Empty compiler generated dependencies file for elf_roundtrip_test.
# This may be replaced when dependencies are built.
