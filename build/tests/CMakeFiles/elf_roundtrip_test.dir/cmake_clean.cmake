file(REMOVE_RECURSE
  "CMakeFiles/elf_roundtrip_test.dir/elf/roundtrip_test.cpp.o"
  "CMakeFiles/elf_roundtrip_test.dir/elf/roundtrip_test.cpp.o.d"
  "elf_roundtrip_test"
  "elf_roundtrip_test.pdb"
  "elf_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elf_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
