file(REMOVE_RECURSE
  "CMakeFiles/toolchain_testbed_test.dir/toolchain/testbed_test.cpp.o"
  "CMakeFiles/toolchain_testbed_test.dir/toolchain/testbed_test.cpp.o.d"
  "toolchain_testbed_test"
  "toolchain_testbed_test.pdb"
  "toolchain_testbed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
