# Empty compiler generated dependencies file for toolchain_testbed_test.
# This may be replaced when dependencies are built.
