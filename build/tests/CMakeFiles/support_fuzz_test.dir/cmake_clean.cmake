file(REMOVE_RECURSE
  "CMakeFiles/support_fuzz_test.dir/support/fuzz_test.cpp.o"
  "CMakeFiles/support_fuzz_test.dir/support/fuzz_test.cpp.o.d"
  "support_fuzz_test"
  "support_fuzz_test.pdb"
  "support_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
