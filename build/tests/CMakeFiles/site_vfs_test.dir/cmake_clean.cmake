file(REMOVE_RECURSE
  "CMakeFiles/site_vfs_test.dir/site/vfs_test.cpp.o"
  "CMakeFiles/site_vfs_test.dir/site/vfs_test.cpp.o.d"
  "site_vfs_test"
  "site_vfs_test.pdb"
  "site_vfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_vfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
