# Empty dependencies file for site_vfs_test.
# This may be replaced when dependencies are built.
