# Empty dependencies file for binutils_ldd_test.
# This may be replaced when dependencies are built.
