file(REMOVE_RECURSE
  "CMakeFiles/binutils_ldd_test.dir/binutils/ldd_test.cpp.o"
  "CMakeFiles/binutils_ldd_test.dir/binutils/ldd_test.cpp.o.d"
  "binutils_ldd_test"
  "binutils_ldd_test.pdb"
  "binutils_ldd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_ldd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
