file(REMOVE_RECURSE
  "CMakeFiles/eval_csv_test.dir/eval/csv_test.cpp.o"
  "CMakeFiles/eval_csv_test.dir/eval/csv_test.cpp.o.d"
  "eval_csv_test"
  "eval_csv_test.pdb"
  "eval_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
