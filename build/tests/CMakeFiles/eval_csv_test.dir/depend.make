# Empty dependencies file for eval_csv_test.
# This may be replaced when dependencies are built.
