file(REMOVE_RECURSE
  "CMakeFiles/site_environment_test.dir/site/environment_test.cpp.o"
  "CMakeFiles/site_environment_test.dir/site/environment_test.cpp.o.d"
  "site_environment_test"
  "site_environment_test.pdb"
  "site_environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
