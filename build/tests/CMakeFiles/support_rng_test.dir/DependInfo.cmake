
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/rng_test.cpp" "tests/CMakeFiles/support_rng_test.dir/support/rng_test.cpp.o" "gcc" "tests/CMakeFiles/support_rng_test.dir/support/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/feam_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/feam/CMakeFiles/feam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/feam_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/feam_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/binutils/CMakeFiles/feam_binutils.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/feam_site.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/feam_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/feam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
