file(REMOVE_RECURSE
  "CMakeFiles/binutils_nm_test.dir/binutils/nm_test.cpp.o"
  "CMakeFiles/binutils_nm_test.dir/binutils/nm_test.cpp.o.d"
  "binutils_nm_test"
  "binutils_nm_test.pdb"
  "binutils_nm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_nm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
