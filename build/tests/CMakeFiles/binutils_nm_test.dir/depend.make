# Empty dependencies file for binutils_nm_test.
# This may be replaced when dependencies are built.
