# Empty dependencies file for toolchain_launcher_test.
# This may be replaced when dependencies are built.
