file(REMOVE_RECURSE
  "CMakeFiles/toolchain_launcher_test.dir/toolchain/launcher_test.cpp.o"
  "CMakeFiles/toolchain_launcher_test.dir/toolchain/launcher_test.cpp.o.d"
  "toolchain_launcher_test"
  "toolchain_launcher_test.pdb"
  "toolchain_launcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_launcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
