# Empty dependencies file for toolchain_packages_test.
# This may be replaced when dependencies are built.
