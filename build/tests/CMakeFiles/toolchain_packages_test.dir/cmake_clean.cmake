file(REMOVE_RECURSE
  "CMakeFiles/toolchain_packages_test.dir/toolchain/packages_test.cpp.o"
  "CMakeFiles/toolchain_packages_test.dir/toolchain/packages_test.cpp.o.d"
  "toolchain_packages_test"
  "toolchain_packages_test.pdb"
  "toolchain_packages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_packages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
