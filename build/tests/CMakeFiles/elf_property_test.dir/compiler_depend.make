# Empty compiler generated dependencies file for elf_property_test.
# This may be replaced when dependencies are built.
