file(REMOVE_RECURSE
  "CMakeFiles/elf_property_test.dir/elf/property_test.cpp.o"
  "CMakeFiles/elf_property_test.dir/elf/property_test.cpp.o.d"
  "elf_property_test"
  "elf_property_test.pdb"
  "elf_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
