# Empty dependencies file for eval_seed_sweep_test.
# This may be replaced when dependencies are built.
