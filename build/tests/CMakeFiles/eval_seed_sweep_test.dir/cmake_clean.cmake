file(REMOVE_RECURSE
  "CMakeFiles/eval_seed_sweep_test.dir/eval/seed_sweep_test.cpp.o"
  "CMakeFiles/eval_seed_sweep_test.dir/eval/seed_sweep_test.cpp.o.d"
  "eval_seed_sweep_test"
  "eval_seed_sweep_test.pdb"
  "eval_seed_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_seed_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
