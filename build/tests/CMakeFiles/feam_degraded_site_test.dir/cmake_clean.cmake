file(REMOVE_RECURSE
  "CMakeFiles/feam_degraded_site_test.dir/feam/degraded_site_test.cpp.o"
  "CMakeFiles/feam_degraded_site_test.dir/feam/degraded_site_test.cpp.o.d"
  "feam_degraded_site_test"
  "feam_degraded_site_test.pdb"
  "feam_degraded_site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_degraded_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
