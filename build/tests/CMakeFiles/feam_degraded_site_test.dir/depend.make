# Empty dependencies file for feam_degraded_site_test.
# This may be replaced when dependencies are built.
