# Empty dependencies file for workloads_benchmarks_test.
# This may be replaced when dependencies are built.
