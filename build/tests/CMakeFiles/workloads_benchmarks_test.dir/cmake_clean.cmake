file(REMOVE_RECURSE
  "CMakeFiles/workloads_benchmarks_test.dir/workloads/benchmarks_test.cpp.o"
  "CMakeFiles/workloads_benchmarks_test.dir/workloads/benchmarks_test.cpp.o.d"
  "workloads_benchmarks_test"
  "workloads_benchmarks_test.pdb"
  "workloads_benchmarks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_benchmarks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
