file(REMOVE_RECURSE
  "CMakeFiles/feam_survey_test.dir/feam/survey_test.cpp.o"
  "CMakeFiles/feam_survey_test.dir/feam/survey_test.cpp.o.d"
  "feam_survey_test"
  "feam_survey_test.pdb"
  "feam_survey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_survey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
