# Empty dependencies file for feam_survey_test.
# This may be replaced when dependencies are built.
