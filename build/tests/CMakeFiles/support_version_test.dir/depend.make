# Empty dependencies file for support_version_test.
# This may be replaced when dependencies are built.
