file(REMOVE_RECURSE
  "CMakeFiles/support_version_test.dir/support/version_test.cpp.o"
  "CMakeFiles/support_version_test.dir/support/version_test.cpp.o.d"
  "support_version_test"
  "support_version_test.pdb"
  "support_version_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_version_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
