# Empty dependencies file for binutils_readelf_test.
# This may be replaced when dependencies are built.
