file(REMOVE_RECURSE
  "CMakeFiles/binutils_readelf_test.dir/binutils/readelf_test.cpp.o"
  "CMakeFiles/binutils_readelf_test.dir/binutils/readelf_test.cpp.o.d"
  "binutils_readelf_test"
  "binutils_readelf_test.pdb"
  "binutils_readelf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_readelf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
