file(REMOVE_RECURSE
  "CMakeFiles/eval_tables_test.dir/eval/tables_test.cpp.o"
  "CMakeFiles/eval_tables_test.dir/eval/tables_test.cpp.o.d"
  "eval_tables_test"
  "eval_tables_test.pdb"
  "eval_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
