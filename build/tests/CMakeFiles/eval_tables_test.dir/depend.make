# Empty dependencies file for eval_tables_test.
# This may be replaced when dependencies are built.
