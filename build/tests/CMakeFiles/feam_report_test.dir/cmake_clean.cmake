file(REMOVE_RECURSE
  "CMakeFiles/feam_report_test.dir/feam/report_test.cpp.o"
  "CMakeFiles/feam_report_test.dir/feam/report_test.cpp.o.d"
  "feam_report_test"
  "feam_report_test.pdb"
  "feam_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
