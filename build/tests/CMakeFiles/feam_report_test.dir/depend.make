# Empty dependencies file for feam_report_test.
# This may be replaced when dependencies are built.
