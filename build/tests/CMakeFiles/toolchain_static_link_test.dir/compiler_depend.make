# Empty compiler generated dependencies file for toolchain_static_link_test.
# This may be replaced when dependencies are built.
