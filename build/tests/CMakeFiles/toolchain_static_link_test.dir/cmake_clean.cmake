file(REMOVE_RECURSE
  "CMakeFiles/toolchain_static_link_test.dir/toolchain/static_link_test.cpp.o"
  "CMakeFiles/toolchain_static_link_test.dir/toolchain/static_link_test.cpp.o.d"
  "toolchain_static_link_test"
  "toolchain_static_link_test.pdb"
  "toolchain_static_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_static_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
