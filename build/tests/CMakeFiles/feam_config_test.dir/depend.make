# Empty dependencies file for feam_config_test.
# This may be replaced when dependencies are built.
