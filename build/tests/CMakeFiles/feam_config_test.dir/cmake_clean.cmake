file(REMOVE_RECURSE
  "CMakeFiles/feam_config_test.dir/feam/config_test.cpp.o"
  "CMakeFiles/feam_config_test.dir/feam/config_test.cpp.o.d"
  "feam_config_test"
  "feam_config_test.pdb"
  "feam_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
