# Empty dependencies file for feam_bdc_test.
# This may be replaced when dependencies are built.
