file(REMOVE_RECURSE
  "CMakeFiles/feam_bdc_test.dir/feam/bdc_test.cpp.o"
  "CMakeFiles/feam_bdc_test.dir/feam/bdc_test.cpp.o.d"
  "feam_bdc_test"
  "feam_bdc_test.pdb"
  "feam_bdc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_bdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
