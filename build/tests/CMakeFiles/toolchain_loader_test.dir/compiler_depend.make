# Empty compiler generated dependencies file for toolchain_loader_test.
# This may be replaced when dependencies are built.
