file(REMOVE_RECURSE
  "CMakeFiles/toolchain_loader_test.dir/toolchain/loader_test.cpp.o"
  "CMakeFiles/toolchain_loader_test.dir/toolchain/loader_test.cpp.o.d"
  "toolchain_loader_test"
  "toolchain_loader_test.pdb"
  "toolchain_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
