file(REMOVE_RECURSE
  "CMakeFiles/feam_tec_test.dir/feam/tec_test.cpp.o"
  "CMakeFiles/feam_tec_test.dir/feam/tec_test.cpp.o.d"
  "feam_tec_test"
  "feam_tec_test.pdb"
  "feam_tec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_tec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
