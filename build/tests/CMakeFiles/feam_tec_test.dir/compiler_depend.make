# Empty compiler generated dependencies file for feam_tec_test.
# This may be replaced when dependencies are built.
