file(REMOVE_RECURSE
  "CMakeFiles/site_site_test.dir/site/site_test.cpp.o"
  "CMakeFiles/site_site_test.dir/site/site_test.cpp.o.d"
  "site_site_test"
  "site_site_test.pdb"
  "site_site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
