# Empty dependencies file for site_site_test.
# This may be replaced when dependencies are built.
