# Empty dependencies file for feam_description_test.
# This may be replaced when dependencies are built.
