file(REMOVE_RECURSE
  "CMakeFiles/feam_description_test.dir/feam/description_test.cpp.o"
  "CMakeFiles/feam_description_test.dir/feam/description_test.cpp.o.d"
  "feam_description_test"
  "feam_description_test.pdb"
  "feam_description_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_description_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
