file(REMOVE_RECURSE
  "CMakeFiles/toolchain_glibc_test.dir/toolchain/glibc_test.cpp.o"
  "CMakeFiles/toolchain_glibc_test.dir/toolchain/glibc_test.cpp.o.d"
  "toolchain_glibc_test"
  "toolchain_glibc_test.pdb"
  "toolchain_glibc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_glibc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
