# Empty compiler generated dependencies file for toolchain_glibc_test.
# This may be replaced when dependencies are built.
