# Empty dependencies file for binutils_file_cmd_test.
# This may be replaced when dependencies are built.
