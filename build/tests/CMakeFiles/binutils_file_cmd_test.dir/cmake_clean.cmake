file(REMOVE_RECURSE
  "CMakeFiles/binutils_file_cmd_test.dir/binutils/file_cmd_test.cpp.o"
  "CMakeFiles/binutils_file_cmd_test.dir/binutils/file_cmd_test.cpp.o.d"
  "binutils_file_cmd_test"
  "binutils_file_cmd_test.pdb"
  "binutils_file_cmd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binutils_file_cmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
