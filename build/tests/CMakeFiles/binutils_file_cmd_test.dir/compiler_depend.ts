# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for binutils_file_cmd_test.
