file(REMOVE_RECURSE
  "CMakeFiles/toolchain_compiler_test.dir/toolchain/compiler_test.cpp.o"
  "CMakeFiles/toolchain_compiler_test.dir/toolchain/compiler_test.cpp.o.d"
  "toolchain_compiler_test"
  "toolchain_compiler_test.pdb"
  "toolchain_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
