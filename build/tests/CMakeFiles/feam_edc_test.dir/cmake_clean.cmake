file(REMOVE_RECURSE
  "CMakeFiles/feam_edc_test.dir/feam/edc_test.cpp.o"
  "CMakeFiles/feam_edc_test.dir/feam/edc_test.cpp.o.d"
  "feam_edc_test"
  "feam_edc_test.pdb"
  "feam_edc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feam_edc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
