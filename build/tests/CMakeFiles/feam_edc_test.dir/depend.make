# Empty dependencies file for feam_edc_test.
# This may be replaced when dependencies are built.
